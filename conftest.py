"""Repo-root pytest configuration.

Command-line options must be declared in an *initial* conftest --
pytest only honours :func:`pytest_addoption` from conftests of the
invocation roots, so the flag lives here rather than in ``tests/``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/*.json expected-metrics fixtures "
        "from the current code instead of comparing against them",
    )
