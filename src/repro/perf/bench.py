"""Perf-tracking harness behind ``scout-repro bench``.

Times the system's hot paths and writes one ``BENCH_<rev>.json`` per
git revision, so the repository accumulates a measured performance
trajectory alongside its correctness tests.  Nine suites:

* **index_build** -- bulk-load time of the three index types, plus the
  scalar-path FLAT build (whose adjacency preprocessing runs the
  pre-vectorization one-probe-at-a-time traversal) as the baseline;
* **region_query** -- region-probe throughput of the packed R-tree
  directory: the scalar reference path, the vectorized single-region
  path, and the batched ``pages_for_regions`` path that the simulator's
  plan execution actually uses;
* **prediction** -- SCOUT's per-query prediction wall time
  (observe + plan over a guided sequence) and the crossing-extraction
  kernel, vectorized vs the scalar reference;
* **fig13a** -- wall-clock of a small Fig-13 panel-a sweep (jobs=1),
  simulated once over the vectorized index and once over the scalar
  reference index, with the metrics of both runs required to be
  bit-identical;
* **serving** -- multi-client serving throughput: a Zipf-hotspot fleet
  stepped once by the reference round-robin scheduler and once by the
  vectorized lockstep scheduler, with both full serve reports required
  to be bit-identical before any timing counts;
* **fault_layer** -- the fault-injection wrapper's no-op cost: the
  serving fleet on a bare disk vs a disabled
  :class:`~repro.storage.faults.FaultPlan`, reports required identical,
  throughput ratio gated by the ``fault_layer_overhead`` budget floor;
* **storage_tiers** -- the tiered-storage wrapper's pass-through cost:
  the serving fleet on a bare disk vs a disabled
  :class:`~repro.storage.tiered.TieredStore`, reports required
  identical, throughput ratio gated by the ``storage_tiers_overhead``
  budget floor (an active combined-miss-path tier is timed for the
  record);
* **sharded_serving** -- the sharded cache's pass-through cost (a
  one-shard :class:`~repro.storage.sharded.ShardSpec` vs the bare
  shared cache, reports required *fully* bit-identical, throughput
  ratio gated by the ``sharded_routing_overhead`` budget floor) and
  the hot-shard scale-out gain (a thrashing Zipf fleet resharded to
  K = 8 with rebalancing must beat the single cache on simulated
  throughput, gated by the ``sharded_hot_qps`` budget floor); the
  suite pins its own workload size so both gates hold at every bench
  scale;
* **serving_daemon** -- end-to-end throughput of the real asyncio
  serving surface (:mod:`repro.serve`): an in-process daemon on an
  ephemeral port driven by the seeded open-loop load generator at a
  rate far above service capacity, so the achieved q/s measures the
  daemon's drain rate (protocol framing + admission queue + session
  stepping), gated by the ``serving_daemon_qps`` budget floor.

Every suite compares against the scalar reference implementations kept
in :mod:`repro.index.scalar_ref` and
:func:`repro.graph.traversal.region_crossings_reference`, so the
recorded speedups measure the vectorized hot path against the
pre-change baseline on the same machine and the same run.

The JSON schema (``BENCH_SCHEMA``) is documented in ROADMAP.md under
"Performance tracking"; :func:`check_budget` compares a report against
a checked-in floor file (``benchmarks/perf/budget.json``) and is what
CI uses to fail on throughput regressions.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.baselines import EWMAPrefetcher
from repro.core import ScoutConfig, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.geometry.aabb import AABB
from repro.graph.traversal import region_crossings, region_crossings_reference
from repro.index import FlatIndex, GridIndex, STRTree
from repro.index.scalar_ref import ScalarFlatIndex
from repro.sim import run_experiment
from repro.sim.engine import SimulationConfig
from repro.sim.serve import ServingSimulator
from repro.storage.faults import FaultPlan
from repro.workload.multiclient import multiclient_sessions
from repro.workload.sequence import generate_sequences

__all__ = ["BENCH_SCHEMA", "BenchReport", "check_budget", "render_report", "run_bench"]

#: Bump when the report layout changes.
BENCH_SCHEMA = 1


@dataclass
class BenchReport:
    """One bench run: environment header plus per-suite results."""

    rev: str
    quick: bool
    results: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "rev": self.rev,
            "quick": self.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "results": self.results,
        }

    def write(self, out_dir: str | Path) -> Path:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{self.rev}.json"
        path.write_text(json.dumps(self.to_record(), indent=2, sort_keys=True) + "\n")
        return path


def git_rev() -> str:
    """Short git revision of the working tree (``local`` when unknown)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall time of ``repeats`` runs (classic min-of-n timing)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _probe_regions(dataset, n_probes: int, seed: int = 23) -> list[AABB]:
    """A realistic probe mix: prefetch-region-sized boxes on the data."""
    rng = np.random.default_rng(seed)
    probes = []
    for _ in range(n_probes):
        anchor = dataset.centroids[rng.integers(dataset.n_objects)]
        side = rng.uniform(5.0, 60.0)
        probes.append(AABB.from_center_extent(anchor + rng.normal(scale=5.0, size=3), side))
    return probes


def bench_index_build(dataset, fanout: int, repeats: int) -> dict[str, Any]:
    build_seconds = {
        "rtree": _best_of(lambda: STRTree(dataset, fanout=fanout), repeats),
        "grid": _best_of(lambda: GridIndex(dataset, fanout=fanout), repeats),
        "flat": _best_of(lambda: FlatIndex(dataset, fanout=fanout), repeats),
        "flat_scalar_baseline": _best_of(
            lambda: ScalarFlatIndex(dataset, fanout=fanout), repeats
        ),
    }
    return {
        "n_objects": dataset.n_objects,
        "fanout": fanout,
        "build_seconds": build_seconds,
        "flat_build_speedup": build_seconds["flat_scalar_baseline"] / build_seconds["flat"],
    }


def bench_region_query(dataset, fanout: int, n_probes: int, repeats: int) -> dict[str, Any]:
    vector = FlatIndex(dataset, fanout=fanout)
    scalar = ScalarFlatIndex(dataset, fanout=fanout)
    probes = _probe_regions(dataset, n_probes)

    # The two paths must agree before their timings mean anything.
    batched = vector.pages_for_regions(probes)
    for probe, pages in zip(probes, batched):
        if not np.array_equal(scalar.pages_for_region(probe), pages):
            raise AssertionError("scalar and vectorized page sets diverged")

    def run_scalar():
        for probe in probes:
            scalar.pages_for_region(probe)

    def run_vector_single():
        for probe in probes:
            vector.pages_for_region(probe)

    scalar_s = _best_of(run_scalar, repeats)
    single_s = _best_of(run_vector_single, repeats)
    batched_s = _best_of(lambda: vector.pages_for_regions(probes), repeats)
    return {
        "n_probes": n_probes,
        "n_pages": vector.n_pages,
        "scalar_qps": n_probes / scalar_s,
        "vector_single_qps": n_probes / single_s,
        "vector_batched_qps": n_probes / batched_s,
        "single_speedup": scalar_s / single_s,
        # The headline number: the batched path is what the simulator's
        # plan execution and adjacency preprocessing actually call.
        "batched_speedup": scalar_s / batched_s,
    }


def bench_prediction(dataset, index, n_queries: int, repeats: int) -> dict[str, Any]:
    sequences = generate_sequences(
        dataset, n_sequences=1, seed=31, n_queries=n_queries, volume=60_000.0
    )
    queries = sequences[0].queries
    observed = [index.query(q.bounds) for q in queries]

    def run_prediction():
        from repro.baselines.base import ObservedQuery

        prefetcher = ScoutPrefetcher(dataset, ScoutConfig())
        prefetcher.begin_sequence()
        for i, (query, result) in enumerate(zip(queries, observed)):
            prefetcher.observe(
                ObservedQuery(index=i, bounds=query.bounds, result_object_ids=result.object_ids)
            )
            prefetcher.plan()

    prediction_s = _best_of(run_prediction, repeats)

    # The crossing-extraction kernel, vectorized vs scalar reference, on
    # the largest observed result set.
    richest = max(observed, key=lambda r: r.n_objects)
    region = queries[int(np.argmax([r.n_objects for r in observed]))].bounds
    ids = richest.object_ids
    crossings_vector_s = _best_of(lambda: region_crossings(dataset, ids, region), repeats)
    crossings_scalar_s = _best_of(
        lambda: region_crossings_reference(dataset, ids, region), repeats
    )
    return {
        "n_queries": n_queries,
        "observe_plan_seconds": prediction_s,
        "observe_plan_ms_per_query": 1e3 * prediction_s / n_queries,
        "crossings_n_objects": int(len(ids)),
        "crossings_scalar_seconds": crossings_scalar_s,
        "crossings_vector_seconds": crossings_vector_s,
        "crossings_speedup": crossings_scalar_s / crossings_vector_s,
    }


def bench_fig13a(
    dataset, fanout: int, volumes: list[float], n_sequences: int, n_queries: int
) -> dict[str, Any]:
    """A small Fig-13 panel-a sweep (jobs=1), scalar vs vectorized index.

    Datasets, indexes and sequences are built outside the timed region,
    so the wall clocks cover simulation only -- the part the index and
    prediction hot paths dominate.  Both runs must produce bit-identical
    metrics; a mismatch fails the bench.
    """
    vector = FlatIndex(dataset, fanout=fanout)
    scalar = ScalarFlatIndex(dataset, fanout=fanout)
    cells = [
        (
            volume,
            generate_sequences(
                dataset,
                n_sequences=n_sequences,
                seed=13,
                n_queries=n_queries,
                volume=volume,
            ),
        )
        for volume in volumes
    ]

    def sweep(index):
        outcomes = []
        started = time.perf_counter()
        for _, sequences in cells:
            prefetcher = ScoutPrefetcher(dataset, ScoutConfig())
            outcomes.append(run_experiment(index, sequences, prefetcher))
        return time.perf_counter() - started, outcomes

    vector_s, vector_outcomes = sweep(vector)
    scalar_s, scalar_outcomes = sweep(scalar)
    for a, b in zip(vector_outcomes, scalar_outcomes):
        if asdict(a.metrics) != asdict(b.metrics):
            raise AssertionError("scalar and vectorized sweep metrics diverged")
    return {
        "volumes": volumes,
        "n_sequences": n_sequences,
        "n_queries": n_queries,
        "jobs": 1,
        "scalar_seconds": scalar_s,
        "vector_seconds": vector_s,
        "sweep_speedup": scalar_s / vector_s,
        "metrics_bit_identical": True,
        "hit_rates": [o.metrics.cache_hit_rate for o in vector_outcomes],
    }


def bench_serving(dataset, index, n_clients: int, n_queries: int, repeats: int) -> dict[str, Any]:
    """Lockstep vs round-robin serving throughput on a hotspot fleet.

    ``n_clients`` EWMA sessions follow a Zipf-popular pool of eight hot
    walks through one shared cache -- the contention regime the serving
    layer exists for.  The fleet, index and workload are built outside
    the timed region; each timed run gets fresh prefetcher state.  The
    two schedulers' full :class:`~repro.sim.metrics.ServeReport`\\ s
    (every per-query record, every contention counter) must compare
    equal *before* any timing counts -- a speedup over a divergent
    computation would be meaningless.
    """
    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=30_000.0,
        mode="hotspot",
        stagger=0,
        hot_pool=8,
    )
    sim = ServingSimulator(index)

    def fleet():
        return [EWMAPrefetcher(lam=0.3) for _ in clients]

    reference = sim.run(clients, fleet(), lockstep=False)
    vectorized = sim.run(clients, fleet(), lockstep=True)
    if asdict(reference) != asdict(vectorized):
        raise AssertionError("round-robin and lockstep serve reports diverged")

    rr_s = _best_of(lambda: sim.run(clients, fleet(), lockstep=False), repeats)
    ls_s = _best_of(lambda: sim.run(clients, fleet(), lockstep=True), repeats)
    n_total = n_clients * n_queries
    return {
        "n_clients": n_clients,
        "n_queries_per_client": n_queries,
        "mode": "hotspot",
        "hot_pool": 8,
        "round_robin_seconds": rr_s,
        "lockstep_seconds": ls_s,
        "round_robin_qps": n_total / rr_s,
        "lockstep_qps": n_total / ls_s,
        "lockstep_speedup": rr_s / ls_s,
        "reports_bit_identical": True,
    }


def bench_fault_overhead(
    dataset, index, n_clients: int, n_queries: int, repeats: int
) -> dict[str, Any]:
    """Cost of the fault-injection layer when every fault rate is zero.

    Runs the serving fleet twice under the lockstep scheduler: once on
    the bare :class:`~repro.storage.disk.DiskModel` and once wrapped in
    a :class:`~repro.storage.faults.FaultyDiskModel` compiled from a
    no-op :class:`~repro.storage.faults.FaultPlan`.  Plan sharing is
    off on both sides (a fault plan disables it, so the bare baseline
    must match), which isolates the wrapper's per-read dispatch cost.
    Both reports must be bit-identical apart from the ``faults_active``
    flag before any timing counts; ``overhead_ratio`` is the faulty
    side's throughput as a fraction of the plain side's (1.0 = free),
    gated by the ``fault_layer_overhead`` budget floor.
    """
    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=30_000.0,
        mode="hotspot",
        stagger=0,
        hot_pool=8,
    )
    plain_sim = ServingSimulator(index)
    faulty_sim = ServingSimulator(index, SimulationConfig(faults=FaultPlan()))

    def fleet():
        return [EWMAPrefetcher(lam=0.3) for _ in clients]

    def run_plain():
        return plain_sim.run(clients, fleet(), lockstep=True, share_plans=False)

    def run_faulty():
        return faulty_sim.run(clients, fleet(), lockstep=True)

    plain_report = asdict(run_plain())
    faulty_report = asdict(run_faulty())
    plain_report.pop("faults_active")
    faulty_report.pop("faults_active")
    if plain_report != faulty_report:
        raise AssertionError("no-op fault plan changed the serve report")

    plain_s = _best_of(run_plain, repeats)
    faulty_s = _best_of(run_faulty, repeats)
    n_total = n_clients * n_queries
    return {
        "n_clients": n_clients,
        "n_queries_per_client": n_queries,
        "plain_seconds": plain_s,
        "faulty_seconds": faulty_s,
        "plain_qps": n_total / plain_s,
        "faulty_qps": n_total / faulty_s,
        "overhead_ratio": plain_s / faulty_s,
        "reports_bit_identical": True,
    }


def bench_storage_tiers(
    dataset, index, n_clients: int, n_queries: int, repeats: int
) -> dict[str, Any]:
    """Cost of the tiered-storage layer when tiering is disabled.

    Runs the serving fleet twice under the lockstep scheduler: once on
    the bare :class:`~repro.storage.disk.DiskModel` and once behind a
    :class:`~repro.storage.tiered.TieredStore` built from the default
    :class:`~repro.storage.tiered.StorageSpec` (no tier, no miss path)
    -- the pass-through configuration DESIGN.md §9 requires to be
    bit-identical to the bare disk.  Both reports must match apart from
    the ``tiers_active`` flag before any timing counts;
    ``overhead_ratio`` is the tiered side's throughput as a fraction of
    the plain side's (1.0 = free), gated by the
    ``storage_tiers_overhead`` budget floor.  An active configuration
    (combined miss path over a small tier) is also timed for the
    record, but not gated: its work depends on the workload's reuse.
    """
    from repro.storage.tiered import StorageSpec

    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=30_000.0,
        mode="hotspot",
        stagger=0,
        hot_pool=8,
    )
    plain_sim = ServingSimulator(index)
    tiered_sim = ServingSimulator(index, SimulationConfig(storage=StorageSpec()))
    active_sim = ServingSimulator(
        index,
        SimulationConfig(storage=StorageSpec(miss_path="combined", tier_pages=32)),
    )

    def fleet():
        return [EWMAPrefetcher(lam=0.3) for _ in clients]

    def run_plain():
        return plain_sim.run(clients, fleet(), lockstep=True)

    def run_tiered():
        return tiered_sim.run(clients, fleet(), lockstep=True)

    def run_active():
        return active_sim.run(clients, fleet(), lockstep=True)

    plain_report = asdict(run_plain())
    tiered_report = asdict(run_tiered())
    plain_report.pop("tiers_active")
    tiered_report.pop("tiers_active")
    if plain_report != tiered_report:
        raise AssertionError("disabled storage tier changed the serve report")

    plain_s = _best_of(run_plain, repeats)
    tiered_s = _best_of(run_tiered, repeats)
    active_s = _best_of(run_active, repeats)
    n_total = n_clients * n_queries
    return {
        "n_clients": n_clients,
        "n_queries_per_client": n_queries,
        "plain_seconds": plain_s,
        "tiered_seconds": tiered_s,
        "active_seconds": active_s,
        "plain_qps": n_total / plain_s,
        "tiered_qps": n_total / tiered_s,
        "active_qps": n_total / active_s,
        "overhead_ratio": plain_s / tiered_s,
        "reports_bit_identical": True,
    }


def bench_sharded_serving(repeats: int) -> dict[str, Any]:
    """Pass-through routing overhead and the hot-shard scale-out gain.

    Unlike the other serving suites this one builds its own fixed
    workload (16 neurons, 64 clients, 8 queries) in both quick and full
    modes: both gated quantities -- the pass-through ratio and the hot
    fleet's simulated q/s -- are meant to be invariants of the
    *mechanism*, and pinning the workload keeps their budget floors
    valid at every bench scale.

    Two measurements over the lockstep scheduler.  **Pass-through**
    (gated by the ``sharded_routing_overhead`` budget floor): the
    hotspot fleet runs on the bare shared cache and behind
    ``ShardSpec(n_shards=1)``.  A one-shard spec delegates every
    operation and leaves ``shards_active`` off, so the two serve
    reports must be *fully* bit-identical -- no flag popping -- before
    any timing counts; ``overhead_ratio`` is the sharded side's
    throughput as a fraction of the plain side's (1.0 = free).

    **Hot scale-out** (gated by the ``sharded_hot_qps`` budget floor): a
    Zipf-hot fleet over a deliberately tiny single cache thrashes --
    most touches miss and pay demand reads -- then re-runs over K = 8
    Hilbert shards with the same capacity *per shard* and rebalancing
    on: the scale-out story, where each shard is a node bringing its own
    memory arm.  The gain is measured where the simulation accounts
    I/O: queries per *simulated* response second, a deterministic
    quantity for a fixed workload, so the sharded fleet beating the
    single cache is asserted outright before the numbers count.
    Wall-clock seconds for both hot runs are recorded for the record
    but not gated -- python-level routing overhead against simulated
    I/O saved is not a machine-invariant ratio.
    """
    from repro.storage.sharded import ShardSpec

    n_clients, n_queries = 64, 8
    dataset = make_neuron_tissue(n_neurons=16, seed=7)
    index = FlatIndex(dataset, fanout=16)
    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=30_000.0,
        mode="hotspot",
        stagger=0,
        hot_pool=8,
    )
    plain_sim = ServingSimulator(index)
    one_sim = ServingSimulator(index, SimulationConfig(shards=ShardSpec(n_shards=1)))

    def fleet(workload):
        return [EWMAPrefetcher(lam=0.3) for _ in workload]

    def run_plain():
        return plain_sim.run(clients, fleet(clients), lockstep=True)

    def run_one():
        return one_sim.run(clients, fleet(clients), lockstep=True)

    if asdict(run_plain()) != asdict(run_one()):
        raise AssertionError("one-shard spec changed the serve report")

    plain_s = _best_of(run_plain, repeats)
    one_s = _best_of(run_one, repeats)

    hot_capacity = 64
    hot_clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=21,
        n_queries=n_queries,
        volume=240_000.0,
        mode="hotspot",
        stagger=0,
        hot_pool=8,
    )
    single_sim = ServingSimulator(
        index, SimulationConfig(cache_capacity_pages=hot_capacity)
    )
    sharded_sim = ServingSimulator(
        index,
        SimulationConfig(
            cache_capacity_pages=hot_capacity,
            shards=ShardSpec(
                n_shards=8, shard_cache_pages=hot_capacity, rebalance=True
            ),
        ),
    )

    def run_single():
        return single_sim.run(hot_clients, fleet(hot_clients), lockstep=True)

    def run_sharded():
        return sharded_sim.run(hot_clients, fleet(hot_clients), lockstep=True)

    single_report = run_single()
    sharded_report = run_sharded()
    if not (sharded_report.shard_rebalances or 0) > 0:
        raise AssertionError("hot fleet did not trigger a single rebalance")
    n_total = n_clients * n_queries
    single_sim_qps = n_total / single_report.to_aggregate().response_seconds
    sharded_sim_qps = n_total / sharded_report.to_aggregate().response_seconds
    if sharded_sim_qps <= single_sim_qps:
        raise AssertionError(
            f"sharded hot fleet must beat the single cache on simulated "
            f"throughput: {sharded_sim_qps:,.0f} <= {single_sim_qps:,.0f} q/s"
        )
    single_s = _best_of(run_single, repeats)
    sharded_s = _best_of(run_sharded, repeats)
    return {
        "n_clients": n_clients,
        "n_queries_per_client": n_queries,
        "plain_seconds": plain_s,
        "one_shard_seconds": one_s,
        "plain_qps": n_total / plain_s,
        "one_shard_qps": n_total / one_s,
        "overhead_ratio": plain_s / one_s,
        "reports_bit_identical": True,
        "hot_capacity_pages": hot_capacity,
        "hot_n_shards": 8,
        "hot_rebalances": sharded_report.shard_rebalances,
        "hot_pages_moved": sharded_report.shard_pages_moved,
        "hot_single_hit_rate": single_report.to_aggregate().cache_hit_rate,
        "hot_sharded_hit_rate": sharded_report.to_aggregate().cache_hit_rate,
        "hot_single_sim_qps": single_sim_qps,
        "hot_sharded_sim_qps": sharded_sim_qps,
        "hot_sim_speedup": sharded_sim_qps / single_sim_qps,
        "hot_single_seconds": single_s,
        "hot_sharded_seconds": sharded_s,
    }


def bench_serving_daemon(n_requests: int, n_neurons: int) -> dict[str, Any]:
    """End-to-end throughput of the asyncio serving daemon.

    Boots a :class:`~repro.serve.ServeDaemon` in-process on an ephemeral
    port and drives it with the seeded open-loop generator at an offered
    rate far above service capacity, with the admission queue sized to
    hold the whole backlog.  Nothing is shed, so ``achieved_qps`` is the
    daemon's drain rate: length-prefixed framing, admission queueing and
    synchronous session stepping, measured through real sockets.  The
    request count is deterministic (seeded fixed-count schedule); every
    request must be answered ``ok`` before the numbers count.
    """
    import asyncio

    from repro.serve import DaemonConfig, ServeDaemon, run_loadgen

    config = DaemonConfig(
        port=0,
        n_neurons=n_neurons,
        seed=21,
        session_pool=8,
        queries_per_session=16,
        max_queue=n_requests,
        report_interval=3600.0,
    )

    async def drive() -> dict[str, Any]:
        daemon = ServeDaemon(config)
        await daemon.start()
        try:
            return await run_loadgen(
                "127.0.0.1",
                daemon.port,
                connections=4,
                process="poisson",
                rate=1e6,
                requests=n_requests,
                seed=42,
                shutdown=True,
            )
        finally:
            await daemon.shutdown()

    client = asyncio.run(drive())
    if client["ok"] != n_requests or client["shed"] or client["errors"]:
        raise AssertionError(
            f"serving daemon bench expected {n_requests} ok replies, got "
            f"ok={client['ok']} shed={client['shed']} errors={client['errors']}"
        )
    latency = client["latency"]
    return {
        "n_requests": n_requests,
        "n_neurons": n_neurons,
        "connections": client["connections"],
        "offered_rate": client["offered_rate"],
        "achieved_qps": client["achieved_qps"],
        "p50_ms": latency["p50_ms"],
        "p99_ms": latency["p99_ms"],
        "p999_ms": latency["p999_ms"],
        "drained": bool(client["drained"]),
    }


def run_bench(quick: bool = False, rev: str | None = None) -> BenchReport:
    """Run every suite and assemble the report (does not write it)."""
    if quick:
        n_neurons, fanout = 16, 16
        n_probes, repeats = 200, 2
        volumes, n_sequences, n_queries = [10_000.0, 80_000.0], 2, 10
        n_serve_clients = 64
    else:
        n_neurons, fanout = 40, 16
        n_probes, repeats = 1000, 3
        volumes, n_sequences, n_queries = [10_000.0, 45_000.0, 80_000.0, 115_000.0], 4, 25
        n_serve_clients = 256

    dataset = make_neuron_tissue(n_neurons=n_neurons, seed=7)
    index = FlatIndex(dataset, fanout=fanout)

    report = BenchReport(rev=rev or git_rev(), quick=quick)
    report.results["index_build"] = bench_index_build(dataset, fanout, repeats)
    report.results["region_query"] = bench_region_query(dataset, fanout, n_probes, repeats)
    report.results["prediction"] = bench_prediction(dataset, index, min(n_queries, 15), repeats)
    report.results["fig13a"] = bench_fig13a(dataset, fanout, volumes, n_sequences, n_queries)
    report.results["serving"] = bench_serving(
        dataset, index, n_serve_clients, n_queries=8, repeats=repeats
    )
    report.results["fault_layer"] = bench_fault_overhead(
        dataset, index, n_serve_clients, n_queries=8, repeats=repeats
    )
    report.results["storage_tiers"] = bench_storage_tiers(
        dataset, index, n_serve_clients, n_queries=8, repeats=repeats
    )
    report.results["sharded_serving"] = bench_sharded_serving(repeats=repeats)
    report.results["serving_daemon"] = bench_serving_daemon(
        n_requests=400 if quick else 1500, n_neurons=8 if quick else 16
    )
    return report


def check_budget(report: BenchReport, budget_path: str | Path) -> list[str]:
    """Regression check against a checked-in throughput budget.

    The budget file holds conservative floor values (set well below a
    healthy run, so slower CI machines do not flap) and a tolerance; a
    measurement below ``floor * (1 - tolerance)`` is a failure.  Returns
    the list of violation messages (empty = pass).
    """
    budget = json.loads(Path(budget_path).read_text())
    tolerance = float(budget.get("tolerance", 0.30))
    region = report.results.get("region_query", {})
    serving = report.results.get("serving", {})
    fault_layer = report.results.get("fault_layer", {})
    storage_tiers = report.results.get("storage_tiers", {})
    sharded = report.results.get("sharded_serving", {})
    daemon = report.results.get("serving_daemon", {})
    measured = {
        # Speedup ratios are the primary gates: scalar baseline and
        # vectorized path run on the same machine in the same bench, so
        # the ratio is robust to CI runner speed.  The absolute q/s
        # floors are catastrophe backstops only.
        "region_query_batched_speedup": region.get("batched_speedup", 0.0),
        "region_query_single_speedup": region.get("single_speedup", 0.0),
        "region_query_batched_qps": region.get("vector_batched_qps", 0.0),
        "region_query_single_qps": region.get("vector_single_qps", 0.0),
        "serving_lockstep_speedup": serving.get("lockstep_speedup", 0.0),
        "serving_lockstep_qps": serving.get("lockstep_qps", 0.0),
        "fault_layer_overhead": fault_layer.get("overhead_ratio", 0.0),
        "storage_tiers_overhead": storage_tiers.get("overhead_ratio", 0.0),
        "sharded_routing_overhead": sharded.get("overhead_ratio", 0.0),
        "sharded_hot_qps": sharded.get("hot_sharded_sim_qps", 0.0),
        "serving_daemon_qps": daemon.get("achieved_qps", 0.0),
    }
    failures = []
    for name, floor in budget.get("floors", {}).items():
        # A floor is a bare number (gated with the global tolerance) or
        # a {"floor": x, "tolerance": y} object for gates that need a
        # tighter band than the global one -- the fault-layer overhead
        # ratio is ~1.0, so a 30 % band would never fire.
        if isinstance(floor, dict):
            floor_value = float(floor["floor"])
            floor_tolerance = float(floor.get("tolerance", tolerance))
        else:
            floor_value = float(floor)
            floor_tolerance = tolerance
        value = measured.get(name)
        if value is None:
            failures.append(f"budget names unknown metric {name!r}")
            continue
        limit = floor_value * (1.0 - floor_tolerance)
        if value < limit:
            failures.append(
                f"{name}: measured {_fmt(value)} < floor {_fmt(floor_value)} "
                f"* (1 - {floor_tolerance:.2f}) = {_fmt(limit)}"
            )
    return failures


def _fmt(value: float) -> str:
    """Budget-message number: thousands for rates, decimals for ratios."""
    return f"{value:,.0f}" if value >= 100 else f"{value:.3f}"


def render_report(report: BenchReport) -> str:
    """Human-readable summary printed by ``scout-repro bench``."""
    r = report.results
    lines = [f"bench rev={report.rev} quick={report.quick}"]
    if "index_build" in r:
        b = r["index_build"]
        secs = b["build_seconds"]
        lines.append(
            f"index build    : rtree {secs['rtree']:.3f}s  grid {secs['grid']:.3f}s  "
            f"flat {secs['flat']:.3f}s  (scalar flat {secs['flat_scalar_baseline']:.3f}s, "
            f"{b['flat_build_speedup']:.1f}x)"
        )
    if "region_query" in r:
        q = r["region_query"]
        lines.append(
            f"region queries : scalar {q['scalar_qps']:,.0f} q/s  "
            f"vector {q['vector_single_qps']:,.0f} q/s ({q['single_speedup']:.1f}x)  "
            f"batched {q['vector_batched_qps']:,.0f} q/s ({q['batched_speedup']:.1f}x)"
        )
    if "prediction" in r:
        p = r["prediction"]
        lines.append(
            f"prediction     : {p['observe_plan_ms_per_query']:.2f} ms/query  "
            f"crossings {p['crossings_speedup']:.1f}x vs scalar"
        )
    if "fig13a" in r:
        f = r["fig13a"]
        lines.append(
            f"fig13a sweep   : vector {f['vector_seconds']:.2f}s  "
            f"scalar {f['scalar_seconds']:.2f}s  ({f['sweep_speedup']:.1f}x, "
            f"metrics bit-identical)"
        )
    if "serving" in r:
        s = r["serving"]
        lines.append(
            f"serving        : {s['n_clients']} clients  "
            f"lockstep {s['lockstep_qps']:,.0f} q/s  "
            f"round-robin {s['round_robin_qps']:,.0f} q/s  "
            f"({s['lockstep_speedup']:.1f}x, reports bit-identical)"
        )
    if "fault_layer" in r:
        fl = r["fault_layer"]
        lines.append(
            f"fault layer    : no-op plan {fl['faulty_qps']:,.0f} q/s  "
            f"bare disk {fl['plain_qps']:,.0f} q/s  "
            f"(overhead ratio {fl['overhead_ratio']:.3f}, reports bit-identical)"
        )
    if "storage_tiers" in r:
        st = r["storage_tiers"]
        lines.append(
            f"storage tiers  : disabled {st['tiered_qps']:,.0f} q/s  "
            f"bare disk {st['plain_qps']:,.0f} q/s  "
            f"active {st['active_qps']:,.0f} q/s  "
            f"(overhead ratio {st['overhead_ratio']:.3f}, reports bit-identical)"
        )
    if "sharded_serving" in r:
        sh = r["sharded_serving"]
        lines.append(
            f"sharded cache  : one-shard {sh['one_shard_qps']:,.0f} q/s  "
            f"bare cache {sh['plain_qps']:,.0f} q/s  "
            f"(overhead ratio {sh['overhead_ratio']:.3f}, reports bit-identical)  "
            f"hot K=8 {sh['hot_sharded_sim_qps']:,.0f} sim-q/s vs "
            f"K=1 {sh['hot_single_sim_qps']:,.0f} "
            f"({sh['hot_sim_speedup']:.1f}x, {sh['hot_rebalances']} rebalances)"
        )
    if "serving_daemon" in r:
        d = r["serving_daemon"]
        lines.append(
            f"serving daemon : {d['achieved_qps']:,.0f} q/s drain over "
            f"{d['connections']} connections  p50 {d['p50_ms']:.2f}ms  "
            f"p99 {d['p99_ms']:.2f}ms  ({d['n_requests']} requests, drained)"
        )
    return "\n".join(lines)
