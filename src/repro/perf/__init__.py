"""Performance tracking: the ``scout-repro bench`` harness.

See :mod:`repro.perf.bench` for the timed suites and the
``BENCH_<rev>.json`` record format.
"""

from repro.perf.bench import BenchReport, check_budget, run_bench

__all__ = ["BenchReport", "check_budget", "run_bench"]
