"""Common interface of the spatial indexes.

An index partitions the dataset's objects into disk pages (4 KB, 87
objects in the paper's configuration) and answers axis-aligned range
queries with both the matching object ids and the page ids that must be
fetched to produce them.  The simulator charges I/O for the *pages*; the
prefetchers reason about the *objects*.

Alongside the single-region entry points, every index answers *batched*
probes -- :meth:`SpatialIndex.pages_for_regions` and
:meth:`SpatialIndex.query_many` -- so callers that fan one simulated
query into dozens of small region probes (the incremental prefetch
plan, FLAT adjacency preprocessing, gap traversal) can amortize the
traversal over one vectorized pass.  The batched results are defined to
be element-wise identical to the single-region calls; concrete indexes
may override them with faster implementations but not different ones.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.storage.page import PageTable

__all__ = ["QueryResult", "SpatialIndex", "PAGE_FANOUT"]

#: Objects per 4 KB page, as configured in §7.1.
PAGE_FANOUT = 87


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a range query.

    ``object_ids`` are the objects whose geometry intersects the query
    region; ``page_ids`` are all pages the index had to touch (a page
    may contribute no matching object but still costs a read).
    """

    object_ids: np.ndarray
    page_ids: np.ndarray

    @property
    def n_objects(self) -> int:
        return len(self.object_ids)

    @property
    def n_pages(self) -> int:
        return len(self.page_ids)


class SpatialIndex(abc.ABC):
    """Page-organized spatial index over a :class:`Dataset`."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.page_table: PageTable = self._build()

    @abc.abstractmethod
    def _build(self) -> PageTable:
        """Partition the dataset into pages and build search structures."""

    @abc.abstractmethod
    def pages_for_region(self, region: AABB) -> np.ndarray:
        """Sorted page ids whose bounds intersect ``region``."""

    @abc.abstractmethod
    def page_bounds(self, page_id: int) -> AABB:
        """The AABB of a page's contents."""

    # -- batched probes ------------------------------------------------------

    def pages_for_regions(self, regions: Sequence[AABB]) -> list[np.ndarray]:
        """Per-region sorted page ids for a batch of probe boxes.

        Element ``i`` equals ``pages_for_region(regions[i])``.  The base
        implementation is the naive per-region loop; array-backed
        indexes override it with a single vectorized pass.
        """
        return [self.pages_for_region(region) for region in regions]

    def query_many(self, regions: Sequence[AABB]) -> list[QueryResult]:
        """Batched exact range queries (element-wise equal to :meth:`query`)."""
        regions = list(regions)  # tolerate one-shot iterators
        page_lists = self.pages_for_regions(regions)
        return [
            self._result_for_pages(region, pages)
            for region, pages in zip(regions, page_lists)
        ]

    # -- shared query logic --------------------------------------------------

    def query(self, region: AABB) -> QueryResult:
        """Exact range query: pages touched plus objects intersecting."""
        return self._result_for_pages(region, self.pages_for_region(region))

    def _result_for_pages(self, region: AABB, pages: np.ndarray) -> QueryResult:
        """Refine a page-level probe into the exact object result."""
        if len(pages) == 0:
            return QueryResult(np.empty(0, dtype=np.int64), pages)
        candidates = self.page_table.objects_of_pages(pages)
        lo = self.dataset.obj_lo[candidates]
        hi = self.dataset.obj_hi[candidates]
        mask = np.all((lo <= region.hi) & (hi >= region.lo), axis=1)
        return QueryResult(np.sort(candidates[mask]), pages)

    @property
    def n_pages(self) -> int:
        return self.page_table.n_pages
