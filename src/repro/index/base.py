"""Common interface of the spatial indexes.

An index partitions the dataset's objects into disk pages (4 KB, 87
objects in the paper's configuration) and answers axis-aligned range
queries with both the matching object ids and the page ids that must be
fetched to produce them.  The simulator charges I/O for the *pages*; the
prefetchers reason about the *objects*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.storage.page import PageTable

__all__ = ["QueryResult", "SpatialIndex", "PAGE_FANOUT"]

#: Objects per 4 KB page, as configured in §7.1.
PAGE_FANOUT = 87


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a range query.

    ``object_ids`` are the objects whose geometry intersects the query
    region; ``page_ids`` are all pages the index had to touch (a page
    may contribute no matching object but still costs a read).
    """

    object_ids: np.ndarray
    page_ids: np.ndarray

    @property
    def n_objects(self) -> int:
        return len(self.object_ids)

    @property
    def n_pages(self) -> int:
        return len(self.page_ids)


class SpatialIndex(abc.ABC):
    """Page-organized spatial index over a :class:`Dataset`."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.page_table: PageTable = self._build()

    @abc.abstractmethod
    def _build(self) -> PageTable:
        """Partition the dataset into pages and build search structures."""

    @abc.abstractmethod
    def pages_for_region(self, region: AABB) -> np.ndarray:
        """Sorted page ids whose bounds intersect ``region``."""

    @abc.abstractmethod
    def page_bounds(self, page_id: int) -> AABB:
        """The AABB of a page's contents."""

    # -- shared query logic --------------------------------------------------

    def query(self, region: AABB) -> QueryResult:
        """Exact range query: pages touched plus objects intersecting."""
        pages = self.pages_for_region(region)
        if len(pages) == 0:
            return QueryResult(np.empty(0, dtype=np.int64), pages)
        candidates = np.concatenate([self.page_table.objects_of_page(int(p)) for p in pages])
        lo = self.dataset.obj_lo[candidates]
        hi = self.dataset.obj_hi[candidates]
        mask = np.all((lo <= region.hi) & (hi >= region.lo), axis=1)
        return QueryResult(np.sort(candidates[mask]), pages)

    @property
    def n_pages(self) -> int:
        return self.page_table.n_pages
