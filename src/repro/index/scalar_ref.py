"""Scalar (pre-vectorization) reference index paths.

The packed R-tree answers region probes with level-synchronous array
passes; this module preserves the original one-node-at-a-time traversal
-- a Python stack with a pair of tiny ``np.any``/``np.all`` reductions
per node -- over the *same* packed levels.  It exists for two reasons:

* **equivalence guarantees** -- the test suite proves the vectorized
  traversal returns bit-identical page sets, and that full simulations
  over a scalar-path index produce bit-identical metrics; and
* **perf trajectory** -- ``scout-repro bench`` times both paths, so
  every ``BENCH_<rev>.json`` records the measured speedup of the
  vectorized hot path over the pre-change baseline.

Nothing in the production system calls these classes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.index.flat import FlatIndex
from repro.index.rtree import STRTree

__all__ = ["ScalarFlatIndex", "ScalarSTRTree", "pages_for_region_scalar"]


def pages_for_region_scalar(tree: STRTree, region: AABB) -> np.ndarray:
    """Reference depth-first traversal, one node (and box test) at a time."""
    if not tree._levels:
        if len(tree._leaf_lo) and not (
            np.any(tree._leaf_lo[0] > region.hi) or np.any(tree._leaf_hi[0] < region.lo)
        ):
            return np.array([0], dtype=np.int64)
        return np.empty(0, dtype=np.int64)

    last_level = len(tree._levels) - 1
    result: list[int] = []
    stack: list[tuple[int, int]] = [(0, 0)]  # (level index, node id)
    while stack:
        level_index, node = stack.pop()
        level = tree._levels[level_index]
        if np.any(level.lo[node] > region.hi) or np.any(level.hi[node] < region.lo):
            continue
        children = level.children[level.child_start[node] : level.child_start[node + 1]]
        if level_index == last_level:
            for leaf in children:
                if np.all(tree._leaf_lo[leaf] <= region.hi) and np.all(
                    tree._leaf_hi[leaf] >= region.lo
                ):
                    result.append(int(leaf))
        else:
            stack.extend((level_index + 1, int(child)) for child in children)
    return np.array(sorted(result), dtype=np.int64)


class ScalarSTRTree(STRTree):
    """STR R-tree forced onto the scalar traversal and per-region probes."""

    def pages_for_region(self, region: AABB) -> np.ndarray:
        return pages_for_region_scalar(self, region)

    def pages_for_regions(self, regions) -> list[np.ndarray]:
        return [self.pages_for_region(region) for region in regions]


class ScalarFlatIndex(FlatIndex):
    """FLAT index forced onto the scalar traversal and per-region probes.

    Adjacency preprocessing runs through the (overridden) per-region
    loop as well, so index *build* timings also reflect the pre-change
    baseline.
    """

    def pages_for_region(self, region: AABB) -> np.ndarray:
        return pages_for_region_scalar(self, region)

    def pages_for_regions(self, regions) -> list[np.ndarray]:
        return [self.pages_for_region(region) for region in regions]
