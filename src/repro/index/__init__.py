"""Spatial indexes.

SCOUT is index-agnostic (§4: "Any spatial index can be used as long as
it can execute spatial range queries").  The baseline configuration in
the paper couples SCOUT with an STR bulk-loaded R-tree; SCOUT-OPT
requires an index with neighborhood information and ordered retrieval,
for which the authors use their FLAT index.  Both are implemented here
over the same simulated page layer, plus a uniform grid index used by
the Layered and Hilbert prefetching baselines.
"""

from repro.index.base import QueryResult, SpatialIndex
from repro.index.rtree import STRTree
from repro.index.flat import FlatIndex
from repro.index.gridindex import GridIndex
from repro.index.scalar_ref import ScalarFlatIndex, ScalarSTRTree

__all__ = [
    "FlatIndex",
    "GridIndex",
    "QueryResult",
    "STRTree",
    "ScalarFlatIndex",
    "ScalarSTRTree",
    "SpatialIndex",
]
