"""Uniform grid index.

Used by the Layered baseline [Zhang & You] -- which "segments the
spatial data into a grid and prefetches all surrounding grid cells" --
and by Hilbert-Prefetch [Park & Kim], which orders the same cells by
Hilbert value.  Each non-empty grid cell maps to one or more pages
(cells holding more than a page's worth of objects are split).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.geometry.grid import UniformGrid
from repro.index.base import PAGE_FANOUT, SpatialIndex
from repro.storage.page import PageTable

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    """Grid-bucketed pages with cell-id lookups for the baselines."""

    def __init__(
        self,
        dataset: Dataset,
        fanout: int = PAGE_FANOUT,
        cells_per_axis: int | None = None,
    ) -> None:
        self.fanout = fanout
        self._requested_cells_per_axis = cells_per_axis
        super().__init__(dataset)

    def _build(self) -> PageTable:
        dataset = self.dataset
        bounds = dataset.bounds.inflate(1e-6)
        if self._requested_cells_per_axis is None:
            # Aim for cells holding roughly one page worth of objects.
            n_cells_target = max(1, dataset.n_objects // self.fanout)
            grid = UniformGrid.with_cell_count(bounds, n_cells_target)
        else:
            k = self._requested_cells_per_axis
            shape = (k, k, 1) if dataset.dims == 2 else (k, k, k)
            grid = UniformGrid(bounds, shape)
        self.grid = grid

        cell_coords = grid.cells_of_points(dataset.centroids)
        flat = grid.flat_ids(cell_coords)
        order = np.argsort(flat, kind="stable")

        pages: list[np.ndarray] = []
        self._pages_of_cell: dict[int, list[int]] = {}
        self._cell_of_page: list[int] = []
        start = 0
        sorted_flat = flat[order]
        while start < len(order):
            end = start
            cell_id = int(sorted_flat[start])
            while end < len(order) and sorted_flat[end] == cell_id:
                end += 1
            members = order[start:end]
            for chunk_start in range(0, len(members), self.fanout):
                chunk = members[chunk_start : chunk_start + self.fanout]
                self._pages_of_cell.setdefault(cell_id, []).append(len(pages))
                self._cell_of_page.append(cell_id)
                pages.append(np.asarray(chunk, dtype=np.int64))
            start = end

        self._page_lo = np.array([dataset.obj_lo[p].min(axis=0) for p in pages])
        self._page_hi = np.array([dataset.obj_hi[p].max(axis=0) for p in pages])
        return PageTable(pages)

    # -- SpatialIndex API ------------------------------------------------------

    def pages_for_region(self, region: AABB) -> np.ndarray:
        hits = np.all((self._page_lo <= region.hi) & (self._page_hi >= region.lo), axis=1)
        return np.flatnonzero(hits).astype(np.int64)

    def page_bounds(self, page_id: int) -> AABB:
        return AABB(self._page_lo[page_id], self._page_hi[page_id])

    # -- cell-oriented API used by the baselines -----------------------------------

    def pages_of_cell(self, cell_coords: tuple[int, int, int]) -> list[int]:
        """Pages storing the objects of one grid cell (possibly empty)."""
        return list(self._pages_of_cell.get(self.grid.flat_id(cell_coords), []))

    def cell_of_page(self, page_id: int) -> tuple[int, int, int]:
        return self.grid.unflatten(self._cell_of_page[page_id])

    def occupied_cells(self) -> list[int]:
        """Flat ids of cells containing at least one object."""
        return sorted(self._pages_of_cell.keys())
