"""Uniform grid index.

Used by the Layered baseline [Zhang & You] -- which "segments the
spatial data into a grid and prefetches all surrounding grid cells" --
and by Hilbert-Prefetch [Park & Kim], which orders the same cells by
Hilbert value.  Each non-empty grid cell maps to one or more pages
(cells holding more than a page's worth of objects are split).

Page bounds live in packed ``(n, 3)`` corner arrays, so both the single
and the batched region probes are pure broadcast comparisons with no
per-page Python work.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.geometry.grid import UniformGrid
from repro.index.base import PAGE_FANOUT, SpatialIndex
from repro.storage.page import PageTable

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    """Grid-bucketed pages with cell-id lookups for the baselines."""

    def __init__(
        self,
        dataset: Dataset,
        fanout: int = PAGE_FANOUT,
        cells_per_axis: int | None = None,
    ) -> None:
        self.fanout = fanout
        self._requested_cells_per_axis = cells_per_axis
        super().__init__(dataset)

    def _build(self) -> PageTable:
        dataset = self.dataset
        bounds = dataset.bounds.inflate(1e-6)
        if self._requested_cells_per_axis is None:
            # Aim for cells holding roughly one page worth of objects.
            n_cells_target = max(1, dataset.n_objects // self.fanout)
            grid = UniformGrid.with_cell_count(bounds, n_cells_target)
        else:
            k = self._requested_cells_per_axis
            shape = (k, k, 1) if dataset.dims == 2 else (k, k, k)
            grid = UniformGrid(bounds, shape)
        self.grid = grid

        cell_coords = grid.cells_of_points(dataset.centroids)
        flat = grid.flat_ids(cell_coords)
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]

        # Runs of equal cell ids in the sorted order are the occupied
        # cells; each run is cut into fanout-sized page chunks.
        if len(sorted_flat):
            run_starts = np.flatnonzero(
                np.concatenate([[True], sorted_flat[1:] != sorted_flat[:-1]])
            )
        else:
            run_starts = np.empty(0, dtype=np.int64)
        run_ends = np.append(run_starts[1:], len(sorted_flat))

        pages: list[np.ndarray] = []
        self._pages_of_cell: dict[int, list[int]] = {}
        cell_of_page: list[int] = []
        for start, end in zip(run_starts, run_ends):
            cell_id = int(sorted_flat[start])
            members = order[start:end]
            for chunk_start in range(0, len(members), self.fanout):
                chunk = members[chunk_start : chunk_start + self.fanout]
                self._pages_of_cell.setdefault(cell_id, []).append(len(pages))
                cell_of_page.append(cell_id)
                pages.append(np.asarray(chunk, dtype=np.int64))
        self._cell_of_page = cell_of_page

        if pages:
            concat = np.concatenate(pages)
            offsets = np.concatenate(
                [[0], np.cumsum([len(p) for p in pages])[:-1]]
            ).astype(np.int64)
            self._page_lo = np.minimum.reduceat(dataset.obj_lo[concat], offsets, axis=0)
            self._page_hi = np.maximum.reduceat(dataset.obj_hi[concat], offsets, axis=0)
        else:
            self._page_lo = np.empty((0, 3))
            self._page_hi = np.empty((0, 3))
        return PageTable(pages)

    # -- SpatialIndex API ------------------------------------------------------

    def pages_for_region(self, region: AABB) -> np.ndarray:
        hits = np.all((self._page_lo <= region.hi) & (self._page_hi >= region.lo), axis=1)
        return np.flatnonzero(hits).astype(np.int64)

    def pages_for_regions(self, regions) -> list[np.ndarray]:
        if not len(regions):
            return []
        qlo = np.array([r.lo for r in regions])
        qhi = np.array([r.hi for r in regions])
        return self._pages_for_boxes(qlo, qhi)

    def _pages_for_boxes(self, qlo: np.ndarray, qhi: np.ndarray) -> list[np.ndarray]:
        """All-pairs broadcast test, chunked to bound temporary memory."""
        n_regions = len(qlo)
        if n_regions == 0:
            return []
        if not len(self._page_lo):
            return [np.empty(0, dtype=np.int64)] * n_regions
        out: list[np.ndarray] = []
        # ~32 MB of boolean temporaries per chunk at 3 bytes/page/region.
        chunk = max(1, int(4_000_000 // max(1, len(self._page_lo))))
        for start in range(0, n_regions, chunk):
            lo = qlo[start : start + chunk]
            hi = qhi[start : start + chunk]
            hits = np.all(
                (self._page_lo[None, :, :] <= hi[:, None, :])
                & (self._page_hi[None, :, :] >= lo[:, None, :]),
                axis=2,
            )
            rows, cols = np.nonzero(hits)
            cuts = np.searchsorted(rows, np.arange(len(lo) + 1))
            out.extend(cols[a:b].astype(np.int64) for a, b in zip(cuts[:-1], cuts[1:]))
        return out

    def page_bounds(self, page_id: int) -> AABB:
        return AABB(self._page_lo[page_id], self._page_hi[page_id])

    # -- cell-oriented API used by the baselines -----------------------------------

    def pages_of_cell(self, cell_coords: tuple[int, int, int]) -> list[int]:
        """Pages storing the objects of one grid cell (possibly empty)."""
        return list(self._pages_of_cell.get(self.grid.flat_id(cell_coords), []))

    def cell_of_page(self, page_id: int) -> tuple[int, int, int]:
        return self.grid.unflatten(self._cell_of_page[page_id])

    def occupied_cells(self) -> list[int]:
        """Flat ids of cells containing at least one object."""
        return sorted(self._pages_of_cell.keys())
