"""FLAT-style neighborhood index (Tauheed et al., ICDE 2012).

SCOUT-OPT (§6) needs an index with two extra capabilities over a plain
R-tree: (a) *ordered retrieval* -- control over the order in which
result pages come off the disk -- and (b) *neighborhood information* --
for any page, the spatially adjacent pages, so the crawl can continue
outside the query region during gap traversal.

Like the original FLAT, this implementation computes page neighborhood
links as a pre-processing step over an STR partitioning, and answers
queries in two phases: locate a seed page containing (or nearest to) the
query region, then recursively visit neighbor pages until no page
intersecting the region remains.  A tiny directory (the STR tree of its
page boxes) serves the seed lookup, as FLAT uses a reduced R-tree over
its partitions.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.index.base import PAGE_FANOUT
from repro.index.rtree import STRTree
from repro.storage.page import PageTable
from repro.util import row_norms

__all__ = ["FlatIndex"]


class FlatIndex(STRTree):
    """STR page layout plus precomputed page-adjacency links.

    Inherits the STR partitioning and directory from :class:`STRTree`
    (FLAT also keeps a small tree over its partitions for seed lookup)
    and adds the neighborhood structure plus crawl-based query methods.
    """

    def __init__(
        self,
        dataset: Dataset,
        fanout: int = PAGE_FANOUT,
        adjacency_epsilon: float | None = None,
    ) -> None:
        self._adjacency_epsilon = adjacency_epsilon
        super().__init__(dataset, fanout)
        self._build_adjacency()

    def _build(self) -> PageTable:
        table = super()._build()
        return table

    # -- neighborhood preprocessing -----------------------------------------------

    def _build_adjacency(self) -> None:
        """Link pages whose (slightly inflated) boxes touch.

        One batched directory (R-tree) probe resolves every page's
        touching set in a single level-synchronous pass -- the
        preprocessing step FLAT performs to record neighborhood
        information, issued through the vectorized index API.
        """
        n_pages = self.page_table.n_pages
        self._neighbors: list[set[int]] = [set() for _ in range(n_pages)]
        if n_pages <= 1:
            return

        lo, hi = self._leaf_lo, self._leaf_hi
        if self._adjacency_epsilon is None:
            # Inflate by a small fraction of the median page extent so
            # pages separated by bulkload seams still count as adjacent.
            self._adjacency_epsilon = float(np.median(hi - lo)) * 0.05 + 1e-9
        eps = self._adjacency_epsilon

        probes = [AABB(lo[page] - eps, hi[page] + eps) for page in range(n_pages)]
        for page, touching in enumerate(self.pages_for_regions(probes)):
            for other in touching:
                other = int(other)
                if other != page:
                    self._neighbors[page].add(other)
                    self._neighbors[other].add(page)

    # -- neighborhood API ----------------------------------------------------------

    def neighbors(self, page_id: int) -> list[int]:
        """Pages spatially adjacent to ``page_id`` (symmetric relation)."""
        return sorted(self._neighbors[page_id])

    def seed_page(self, point: np.ndarray) -> int:
        """Phase one of a FLAT query: a page at (or nearest to) ``point``."""
        leaf = self.leaf_page_for_point(np.asarray(point, dtype=np.float64))
        if leaf is None:
            raise RuntimeError("index has no pages")
        return leaf

    def crawl_pages(self, region: AABB, seed: int | None = None) -> list[int]:
        """Phase two: visit neighbors from the seed while inside ``region``.

        Returns pages in crawl (breadth-first) order.  The directory-based
        :meth:`pages_for_region` remains the ground truth for correctness;
        the crawl is used when retrieval *order* matters.
        """
        if self.page_table.n_pages == 0:
            return []
        if seed is None:
            seed = self.seed_page(region.center)
        visited = {seed}
        order = []
        queue = deque([seed])
        while queue:
            page = queue.popleft()
            box = self.page_bounds(page)
            if not box.intersects(region):
                continue
            order.append(page)
            for neighbor in self._neighbors[page]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        # Pages the crawl could not reach (disconnected adjacency within
        # the region) are appended directory-order; FLAT's guarantees
        # make this rare but the simulator must stay exact.
        remaining = [int(p) for p in self.pages_for_region(region) if p not in set(order)]
        return order + remaining

    def ordered_pages(self, region: AABB, start_points: np.ndarray) -> list[int]:
        """Result pages ordered by distance from the given start points.

        This is the §6.2 primitive: retrieve the pages at the previous
        query's exit locations first so graph construction and traversal
        can begin before the full result is loaded.
        """
        pages = self.pages_for_region(region)
        if len(pages) == 0:
            return []
        start_points = np.atleast_2d(np.asarray(start_points, dtype=np.float64))
        # (pages, starts, 3) clamp of every start point into every page
        # box; a page's key is its distance to the nearest start point.
        # row_norms keeps the floats bit-identical to the per-point
        # AABB.distance_to_point calls this replaced, so distance ties
        # (broken by page id, as the old heap did) resolve identically.
        lo = self._leaf_lo[pages][:, None, :]
        hi = self._leaf_hi[pages][:, None, :]
        clamped = np.clip(start_points[None, :, :], lo, hi)
        distances = row_norms(clamped - start_points[None, :, :]).min(axis=1)
        order = np.lexsort((pages, distances))
        return [int(p) for p in pages[order]]
