"""STR bulk-loaded R-tree (Leutenegger et al., ICDE 1997).

The paper's baseline index (§7.1): 4 KB pages, 87 objects per page,
bulk-loaded at 100 % fill with Sort-Tile-Recursive packing.  STR sorts
object centers by x, tiles into vertical slabs, sorts each slab by y,
tiles again, then sorts by z and cuts leaf pages -- producing leaves
that are spatially compact and, crucially for the disk model, laid out
on disk in a spatially coherent page order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.index.base import PAGE_FANOUT, SpatialIndex
from repro.storage.page import PageTable

__all__ = ["STRTree", "str_partition"]


def str_partition(centers: np.ndarray, fanout: int) -> list[np.ndarray]:
    """Sort-Tile-Recursive partition of points into runs of <= ``fanout``.

    Returns index arrays (into ``centers``) for each tile.  Operates on
    3D centers; 2D data simply has a constant third coordinate.
    """
    n = len(centers)
    if n == 0:
        return []
    ids = np.arange(n)
    n_leaves = math.ceil(n / fanout)
    s = math.ceil(n_leaves ** (1.0 / 3.0))

    tiles: list[np.ndarray] = []
    by_x = ids[np.argsort(centers[ids, 0], kind="stable")]
    slab_size_x = math.ceil(n / s)
    for x_start in range(0, n, slab_size_x):
        slab_x = by_x[x_start : x_start + slab_size_x]
        by_y = slab_x[np.argsort(centers[slab_x, 1], kind="stable")]
        slab_size_y = math.ceil(len(slab_x) / s)
        for y_start in range(0, len(slab_x), slab_size_y):
            slab_y = by_y[y_start : y_start + slab_size_y]
            by_z = slab_y[np.argsort(centers[slab_y, 2], kind="stable")]
            for z_start in range(0, len(slab_y), fanout):
                tiles.append(by_z[z_start : z_start + fanout])
    return tiles


@dataclass
class _Node:
    """Internal R-tree node: a box plus child node ids or leaf page ids."""

    lo: np.ndarray
    hi: np.ndarray
    children: list[int]
    is_leaf_parent: bool


class STRTree(SpatialIndex):
    """STR bulk-loaded R-tree; leaves are disk pages."""

    def __init__(self, dataset: Dataset, fanout: int = PAGE_FANOUT) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        super().__init__(dataset)

    def _build(self) -> PageTable:
        dataset = self.dataset
        tiles = str_partition(dataset.centroids, self.fanout)

        self._leaf_lo = np.array([dataset.obj_lo[tile].min(axis=0) for tile in tiles])
        self._leaf_hi = np.array([dataset.obj_hi[tile].max(axis=0) for tile in tiles])

        # Build internal levels bottom-up by re-applying STR to box centers.
        self._nodes: list[_Node] = []
        level_ids = list(range(len(tiles)))
        level_centers = (self._leaf_lo + self._leaf_hi) / 2.0
        level_lo, level_hi = self._leaf_lo, self._leaf_hi
        is_leaf_level = True
        while len(level_ids) > 1:
            groups = str_partition(level_centers, self.fanout)
            new_ids, new_lo, new_hi, new_centers = [], [], [], []
            for group in groups:
                children = [level_ids[i] for i in group]
                lo = level_lo[group].min(axis=0)
                hi = level_hi[group].max(axis=0)
                node_id = len(self._nodes)
                self._nodes.append(_Node(lo, hi, children, is_leaf_level))
                new_ids.append(node_id)
                new_lo.append(lo)
                new_hi.append(hi)
                new_centers.append((lo + hi) / 2.0)
            level_ids = new_ids
            level_lo = np.array(new_lo)
            level_hi = np.array(new_hi)
            level_centers = np.array(new_centers)
            is_leaf_level = False

        if self._nodes:
            self._root: int | None = level_ids[0]
            self._single_leaf_root = None
        else:
            # 0 or 1 leaves: no internal structure needed.
            self._root = None
            self._single_leaf_root = level_ids[0] if level_ids else None
        return PageTable(tiles)

    # -- queries --------------------------------------------------------------

    def pages_for_region(self, region: AABB) -> np.ndarray:
        if self._root is None:
            if self._single_leaf_root is None:
                return np.empty(0, dtype=np.int64)
            leaf = self._single_leaf_root
            box = AABB(self._leaf_lo[leaf], self._leaf_hi[leaf])
            if box.intersects(region):
                return np.array([leaf], dtype=np.int64)
            return np.empty(0, dtype=np.int64)

        result: list[int] = []
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            if np.any(node.lo > region.hi) or np.any(node.hi < region.lo):
                continue
            if node.is_leaf_parent:
                for leaf in node.children:
                    if np.all(self._leaf_lo[leaf] <= region.hi) and np.all(
                        self._leaf_hi[leaf] >= region.lo
                    ):
                        result.append(leaf)
            else:
                stack.extend(node.children)
        return np.array(sorted(result), dtype=np.int64)

    def page_bounds(self, page_id: int) -> AABB:
        return AABB(self._leaf_lo[page_id], self._leaf_hi[page_id])

    # -- introspection ----------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels above the leaves (0 for a single-leaf tree)."""
        if self._root is None:
            return 0
        height = 1
        node = self._nodes[self._root]
        while not node.is_leaf_parent:
            node = self._nodes[node.children[0]]
            height += 1
        return height

    def leaf_page_for_point(self, point: np.ndarray) -> int | None:
        """A leaf page whose box contains ``point`` (nearest box if none)."""
        point = np.asarray(point, dtype=np.float64)
        probe = AABB(point, point)
        pages = self.pages_for_region(probe)
        if len(pages):
            return int(pages[0])
        # Fall back to the leaf whose box is closest to the point.
        clamped = np.clip(point, self._leaf_lo, self._leaf_hi)
        distances = np.linalg.norm(clamped - point, axis=1)
        return int(np.argmin(distances))
