"""STR bulk-loaded R-tree (Leutenegger et al., ICDE 1997).

The paper's baseline index (§7.1): 4 KB pages, 87 objects per page,
bulk-loaded at 100 % fill with Sort-Tile-Recursive packing.  STR sorts
object centers by x, tiles into vertical slabs, sorts each slab by y,
tiles again, then sorts by z and cuts leaf pages -- producing leaves
that are spatially compact and, crucially for the disk model, laid out
on disk in a spatially coherent page order.

The tree is stored packed, structure-of-arrays: every level holds its
node boxes as contiguous ``(n, 3)`` corner arrays plus CSR child
offsets, and queries run level-synchronously -- the whole frontier of
surviving nodes is intersected against the probe box in one vectorized
operation per level instead of one Python stack pop (and a pair of tiny
``np.any``/``np.all`` reductions) per node.  Batched probes share the
same machinery with a ``(node, region)`` pair frontier, so dozens of
small prefetch regions cost a handful of array passes total.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.index.base import PAGE_FANOUT, SpatialIndex
from repro.storage.page import PageTable
from repro.util import csr_expand

__all__ = ["STRTree", "TreeLevel", "str_partition"]


def str_partition(centers: np.ndarray, fanout: int) -> list[np.ndarray]:
    """Sort-Tile-Recursive partition of points into runs of <= ``fanout``.

    Returns index arrays (into ``centers``) for each tile.  Operates on
    3D centers; 2D data simply has a constant third coordinate.
    """
    n = len(centers)
    if n == 0:
        return []
    ids = np.arange(n)
    n_leaves = math.ceil(n / fanout)
    s = math.ceil(n_leaves ** (1.0 / 3.0))

    tiles: list[np.ndarray] = []
    by_x = ids[np.argsort(centers[ids, 0], kind="stable")]
    slab_size_x = math.ceil(n / s)
    for x_start in range(0, n, slab_size_x):
        slab_x = by_x[x_start : x_start + slab_size_x]
        by_y = slab_x[np.argsort(centers[slab_x, 1], kind="stable")]
        slab_size_y = math.ceil(len(slab_x) / s)
        for y_start in range(0, len(slab_x), slab_size_y):
            slab_y = by_y[y_start : y_start + slab_size_y]
            by_z = slab_y[np.argsort(centers[slab_y, 2], kind="stable")]
            for z_start in range(0, len(slab_y), fanout):
                tiles.append(by_z[z_start : z_start + fanout])
    return tiles


class TreeLevel:
    """One packed tree level: node boxes plus CSR links to the level below.

    ``children`` holds node ids of the next level down (leaf page ids
    for the lowest internal level); node ``i``'s children are
    ``children[child_start[i]:child_start[i + 1]]``.
    """

    __slots__ = ("lo", "hi", "child_start", "children")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        child_start: np.ndarray,
        children: np.ndarray,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.child_start = child_start
        self.children = children

    @property
    def n_nodes(self) -> int:
        return len(self.lo)


def _group_bounds(
    groups: list[np.ndarray], lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Packed (lo, hi, child_start, children) of box groups, via reduceat."""
    children = np.concatenate(groups).astype(np.int64, copy=False)
    counts = np.fromiter((len(g) for g in groups), dtype=np.int64, count=len(groups))
    child_start = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    group_lo = np.minimum.reduceat(lo[children], child_start[:-1], axis=0)
    group_hi = np.maximum.reduceat(hi[children], child_start[:-1], axis=0)
    return group_lo, group_hi, child_start, children


class STRTree(SpatialIndex):
    """STR bulk-loaded R-tree; leaves are disk pages."""

    def __init__(self, dataset: Dataset, fanout: int = PAGE_FANOUT) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        super().__init__(dataset)

    def _build(self) -> PageTable:
        dataset = self.dataset
        tiles = str_partition(dataset.centroids, self.fanout)

        if tiles:
            lo, hi, _, _ = _group_bounds(tiles, dataset.obj_lo, dataset.obj_hi)
            self._leaf_lo, self._leaf_hi = lo, hi
        else:
            self._leaf_lo = np.empty((0, 3))
            self._leaf_hi = np.empty((0, 3))

        # Build internal levels bottom-up by re-applying STR to box
        # centers, then store them root-first for top-down traversal.
        levels: list[TreeLevel] = []
        level_lo, level_hi = self._leaf_lo, self._leaf_hi
        while len(level_lo) > 1:
            centers = (level_lo + level_hi) / 2.0
            groups = str_partition(centers, self.fanout)
            lo, hi, child_start, children = _group_bounds(groups, level_lo, level_hi)
            levels.append(TreeLevel(lo, hi, child_start, children))
            level_lo, level_hi = lo, hi
        levels.reverse()
        self._levels = levels
        return PageTable(tiles)

    # -- queries --------------------------------------------------------------

    def pages_for_region(self, region: AABB) -> np.ndarray:
        qlo, qhi = region.lo, region.hi
        if not self._levels:
            # 0 or 1 leaves: no internal structure to traverse.
            if len(self._leaf_lo) and bool(
                np.all(self._leaf_lo[0] <= qhi) and np.all(self._leaf_hi[0] >= qlo)
            ):
                return np.array([0], dtype=np.int64)
            return np.empty(0, dtype=np.int64)

        frontier = np.zeros(1, dtype=np.int64)  # the root node
        for level in self._levels:
            hit = np.all(
                (level.lo[frontier] <= qhi) & (level.hi[frontier] >= qlo), axis=1
            )
            survivors = frontier[hit]
            if not len(survivors):
                return np.empty(0, dtype=np.int64)
            starts = level.child_start[survivors]
            counts = level.child_start[survivors + 1] - starts
            frontier = level.children[csr_expand(starts, counts)]

        hit = np.all(
            (self._leaf_lo[frontier] <= qhi) & (self._leaf_hi[frontier] >= qlo), axis=1
        )
        return np.sort(frontier[hit])

    def pages_for_regions(self, regions) -> list[np.ndarray]:
        if not len(regions):
            return []
        qlo = np.array([r.lo for r in regions])
        qhi = np.array([r.hi for r in regions])
        return self._pages_for_boxes(qlo, qhi)

    def _pages_for_boxes(self, qlo: np.ndarray, qhi: np.ndarray) -> list[np.ndarray]:
        """Batched traversal over ``(n, 3)`` probe-corner arrays.

        The frontier is a set of (node, region) pairs; every level
        prunes and expands all pairs in one vectorized step.  Pairs stay
        grouped by region (expansion preserves order), so the final
        per-region split is a pair of ``searchsorted`` cuts.
        """
        n_regions = len(qlo)
        empty = np.empty(0, dtype=np.int64)
        if n_regions == 0:
            return []
        if not self._levels:
            if not len(self._leaf_lo):
                return [empty] * n_regions
            hits = np.all((qlo <= self._leaf_hi[0]) & (qhi >= self._leaf_lo[0]), axis=1)
            one = np.array([0], dtype=np.int64)
            return [one.copy() if h else empty for h in hits]

        node = np.zeros(n_regions, dtype=np.int64)
        region = np.arange(n_regions, dtype=np.int64)
        for level in self._levels:
            hit = np.all(
                (level.lo[node] <= qhi[region]) & (level.hi[node] >= qlo[region]), axis=1
            )
            node, region = node[hit], region[hit]
            if not len(node):
                return [empty] * n_regions
            starts = level.child_start[node]
            counts = level.child_start[node + 1] - starts
            node = level.children[csr_expand(starts, counts)]
            region = np.repeat(region, counts)

        hit = np.all(
            (self._leaf_lo[node] <= qhi[region]) & (self._leaf_hi[node] >= qlo[region]),
            axis=1,
        )
        node, region = node[hit], region[hit]
        cuts = np.searchsorted(region, np.arange(n_regions + 1))
        return [np.sort(node[a:b]) for a, b in zip(cuts[:-1], cuts[1:])]

    def page_bounds(self, page_id: int) -> AABB:
        return AABB(self._leaf_lo[page_id], self._leaf_hi[page_id])

    # -- introspection ----------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels above the leaves (0 for a single-leaf tree)."""
        return len(self._levels)

    def leaf_page_for_point(self, point: np.ndarray) -> int | None:
        """A leaf page whose box contains ``point`` (nearest box if none).

        Returns ``None`` for an index with no pages at all.
        """
        if not len(self._leaf_lo):
            return None
        point = np.asarray(point, dtype=np.float64)
        probe = AABB(point, point)
        pages = self.pages_for_region(probe)
        if len(pages):
            return int(pages[0])
        # Fall back to the leaf whose box is closest to the point.
        clamped = np.clip(point, self._leaf_lo, self._leaf_hi)
        distances = np.linalg.norm(clamped - point, axis=1)
        return int(np.argmin(distances))
