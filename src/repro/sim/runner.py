"""Parallel experiment orchestration over declarative cell grids.

The paper's evaluation (§7, Figs 10-17) is a grid of *experiment cells*
-- (dataset, index, workload, prefetcher, seed) -- that the seed repo
ran as hand-rolled serial loops.  This module makes the grid a value:

* :class:`DatasetSpec` / :class:`IndexSpec` / :class:`WorkloadSpec` /
  :class:`PrefetcherSpec` name one axis point each.  They are small
  picklable descriptions (kind + scalar params), **not** live objects:
  nothing heavy ever crosses a process boundary.
* :class:`CellSpec` combines one point per axis.  Its canonical-JSON
  SHA-256 (:meth:`CellSpec.key`) is the identity used by the persisted
  :class:`~repro.sim.results.ResultStore` for resume-from-store.
* :class:`ExperimentMatrix` is the cross product of axis lists and
  yields cells in a deterministic order.
* :class:`ParallelRunner` fans cells out over a ``concurrent.futures``
  process pool.  Workers rebuild dataset/index from the spec (with a
  small per-process memo so sibling cells share the build) and run
  :func:`repro.sim.experiment.run_experiment`, the single-cell
  primitive.

Determinism: a cell's metrics depend only on its spec -- the dataset
builder, sequence generator and prefetchers are all explicitly seeded
from spec fields, and cells share no mutable state -- so ``jobs=1`` and
``jobs=N`` produce bit-identical metrics, and a resumed run is
indistinguishable from a fresh one.

Fault tolerance: a sweep is only as strong as its weakest cell, so the
runner bounds every attempt.  ``timeout`` arms a wall-clock limit
around each cell (delivered via ``SIGALRM`` *inside* the process
running it, so it fires for serial and pooled cells alike), ``retries``
grants a bounded number of fresh attempts, and a cell that still fails
is recorded in the store as a ``status: failed`` / ``status: timeout``
envelope -- the sweep carries on, and the next resume retries exactly
the failed cells.  A worker that dies *hard* (OOM kill, segfault,
``os._exit``) breaks the whole process pool; the runner respawns the
executor, re-enqueues every in-flight cell with one attempt charged
(the culprit is indistinguishable from its siblings, and the charge is
what bounds a crash-looping cell), and counts the event in
:attr:`RunReport.pool_crashes`.
"""

from __future__ import annotations

import cProfile
import contextlib
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    LayeredPrefetcher,
    NoPrefetcher,
    OraclePrefetcher,
    PolynomialPrefetcher,
    StraightLinePrefetcher,
    VelocityPrefetcher,
)
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import (
    make_arterial_tree,
    make_lung_airways,
    make_neuron_tissue,
    make_road_network,
)
from repro.index import FlatIndex, GridIndex, STRTree
from repro.sim.engine import SimulationConfig
from repro.sim.experiment import run_experiment
from repro.sim.results import (
    STATUS_FAILED,
    STATUS_TIMEOUT,
    CellResult,
    ResultStore,
    canonical_json,
    cell_key,
)
from repro.storage.disk import DiskParameters
from repro.storage.faults import FAULT_PREFETCHER_BUILDERS, FaultPlan
from repro.storage.sharded import ShardSpec
from repro.storage.tiered import StorageSpec
from repro.workload.multiclient import multiclient_sessions
from repro.workload.sequence import generate_sequences

__all__ = [
    "CellSpec",
    "CellTimeoutError",
    "DatasetSpec",
    "ExperimentMatrix",
    "IndexSpec",
    "ParallelRunner",
    "PrefetcherSpec",
    "RunReport",
    "WorkloadSpec",
    "cached_dataset",
    "prepare_cell",
    "prepare_serving_cell",
    "profiled_run_cell",
    "run_cell",
    "run_serving_cell",
    "warm_cell_resources",
]


# -- axis specs --------------------------------------------------------------------

_DATASET_BUILDERS: dict[str, Callable[..., Any]] = {
    "neuron": make_neuron_tissue,
    "arterial": make_arterial_tree,
    "lung": make_lung_airways,
    "roads": make_road_network,
}

_INDEX_BUILDERS: dict[str, Callable[..., Any]] = {
    "flat": FlatIndex,
    "rtree": STRTree,
    "grid": GridIndex,
}

_PREFETCHER_BUILDERS: dict[str, Callable[..., Any]] = {
    "scout": lambda ds, ix, p: ScoutPrefetcher(ds, ScoutConfig(**p)),
    "scout-opt": lambda ds, ix, p: ScoutOptPrefetcher(ds, ix, ScoutConfig(**p)),
    "ewma": lambda ds, ix, p: EWMAPrefetcher(**p),
    "straight-line": lambda ds, ix, p: StraightLinePrefetcher(**p),
    "velocity": lambda ds, ix, p: VelocityPrefetcher(**p),
    "polynomial": lambda ds, ix, p: PolynomialPrefetcher(**p),
    "hilbert": lambda ds, ix, p: HilbertPrefetcher(ds, **p),
    "layered": lambda ds, ix, p: LayeredPrefetcher(ds, **p),
    "none": lambda ds, ix, p: NoPrefetcher(),
    "oracle": lambda ds, ix, p: OraclePrefetcher(),
    # Fault-injection kinds (``_sleep`` / ``_fail`` / ``_exit``) for the
    # orchestrator's own test surface, consolidated in the faults module
    # under their historical names.
    **FAULT_PREFETCHER_BUILDERS,
}


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset generator call: kind + scalar keyword params."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _DATASET_BUILDERS:
            known = ", ".join(sorted(_DATASET_BUILDERS))
            raise ValueError(f"unknown dataset kind {self.kind!r}; known: {known}")

    def build(self):
        return _DATASET_BUILDERS[self.kind](**dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}


@dataclass(frozen=True)
class IndexSpec:
    """A spatial-index build over the cell's dataset."""

    kind: str = "flat"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _INDEX_BUILDERS:
            known = ", ".join(sorted(_INDEX_BUILDERS))
            raise ValueError(f"unknown index kind {self.kind!r}; known: {known}")

    def build(self, dataset):
        return _INDEX_BUILDERS[self.kind](dataset, **dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}


@dataclass(frozen=True)
class WorkloadSpec:
    """Guided-sequence generation parameters (paper Fig 10 columns)."""

    n_sequences: int
    n_queries: int
    volume: float
    gap: float = 0.0
    aspect: str = "cube"
    window_ratio: float = 1.0

    def to_dict(self) -> dict[str, Any]:
        # Numeric coercion keeps the canonical JSON (and hence the cell
        # key) stable between e.g. volume=80000 and volume=80000.0.
        return {
            "n_sequences": int(self.n_sequences),
            "n_queries": int(self.n_queries),
            "volume": float(self.volume),
            "gap": float(self.gap),
            "aspect": self.aspect,
            "window_ratio": float(self.window_ratio),
        }


@dataclass(frozen=True)
class PrefetcherSpec:
    """A prefetcher construction: kind + constructor params.

    ``scout`` / ``scout-opt`` params are :class:`ScoutConfig` fields;
    baseline params are their constructor keywords (e.g. ``lam`` for
    ``ewma``).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _PREFETCHER_BUILDERS:
            known = ", ".join(sorted(_PREFETCHER_BUILDERS))
            raise ValueError(f"unknown prefetcher kind {self.kind!r}; known: {known}")

    def build(self, dataset, index):
        return _PREFETCHER_BUILDERS[self.kind](dataset, index, dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell, fully declarative and picklable.

    ``seed`` feeds :func:`generate_sequences`, which derives one child
    RNG per sequence -- per-cell seeding is therefore deterministic and
    independent of which worker runs the cell or in what order.
    ``sim`` holds :class:`SimulationConfig` overrides (with an optional
    nested ``"disk"`` dict of :class:`DiskParameters` fields).

    ``serve`` turns the cell into a *multi-client serving* cell: when
    non-empty, the cell runs N concurrent client sessions over one
    shared cache and disk (:class:`~repro.sim.serve.ServingSimulator`)
    instead of one prefetcher over independent sequences.  Recognized
    keys: ``n_clients`` (required), ``mode``
    (``independent``/``hotspot``), ``stagger``, ``hot_pool``,
    ``zipf_s`` -- see :func:`repro.workload.multiclient.multiclient_sessions`.
    Serialization omits an empty ``serve``, so every pre-existing cell
    keeps its content hash (and its stored results).

    ``faults`` holds :class:`~repro.storage.faults.FaultPlan` field
    overrides: when non-empty, the cell's disk is wrapped in a
    :class:`~repro.storage.faults.FaultyDiskModel` compiled from the
    plan.  Like ``serve``, an empty ``faults`` is omitted from
    serialization, so fault-free cells keep their content hash.

    ``storage`` holds :class:`~repro.storage.tiered.StorageSpec` field
    overrides: when non-empty, the cell's disk is wrapped in a
    :class:`~repro.storage.tiered.TieredStore` (DESIGN.md §9).  Like
    ``faults``, an empty ``storage`` is omitted from serialization, so
    tier-free cells keep their content hash.

    ``shards`` holds :class:`~repro.storage.sharded.ShardSpec` field
    overrides: when non-empty, the cell's prefetch cache is compiled
    into a :class:`~repro.storage.sharded.ShardedCache` (DESIGN.md
    §10).  Like ``storage``, an empty ``shards`` is omitted from
    serialization, so unsharded cells keep their content hash.
    """

    dataset: DatasetSpec
    index: IndexSpec
    workload: WorkloadSpec
    prefetcher: PrefetcherSpec
    seed: int = 0
    sim: Mapping[str, Any] = field(default_factory=dict)
    serve: Mapping[str, Any] = field(default_factory=dict)
    faults: Mapping[str, Any] = field(default_factory=dict)
    storage: Mapping[str, Any] = field(default_factory=dict)
    shards: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data = {
            "dataset": self.dataset.to_dict(),
            "index": self.index.to_dict(),
            "workload": self.workload.to_dict(),
            "prefetcher": self.prefetcher.to_dict(),
            "seed": int(self.seed),
            "sim": dict(self.sim),
        }
        if self.serve:
            data["serve"] = dict(self.serve)
        if self.faults:
            data["faults"] = dict(self.faults)
        if self.storage:
            data["storage"] = dict(self.storage)
        if self.shards:
            data["shards"] = dict(self.shards)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellSpec":
        return cls(
            dataset=DatasetSpec(data["dataset"]["kind"], dict(data["dataset"]["params"])),
            index=IndexSpec(data["index"]["kind"], dict(data["index"]["params"])),
            workload=WorkloadSpec(**data["workload"]),
            prefetcher=PrefetcherSpec(
                data["prefetcher"]["kind"], dict(data["prefetcher"]["params"])
            ),
            seed=int(data["seed"]),
            sim=dict(data.get("sim", {})),
            serve=dict(data.get("serve", {})),
            faults=dict(data.get("faults", {})),
            storage=dict(data.get("storage", {})),
            shards=dict(data.get("shards", {})),
        )

    def key(self) -> str:
        """Content hash identifying this cell in the result store."""
        return cell_key(self.to_dict())


@dataclass(frozen=True)
class ExperimentMatrix:
    """A declarative cell grid: the cross product of axis lists.

    Cells enumerate in a fixed nested order (dataset, index, workload,
    prefetcher, seed), so tables built from a matrix's results line up
    with its axes.  Matrices are cheap values; union several with
    ``list(m1) + list(m2)`` to express composite sweeps such as the
    Fig-13 panel collection.
    """

    datasets: tuple[DatasetSpec, ...]
    indexes: tuple[IndexSpec, ...]
    workloads: tuple[WorkloadSpec, ...]
    prefetchers: tuple[PrefetcherSpec, ...]
    seeds: tuple[int, ...] = (0,)
    sim: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("datasets", "indexes", "workloads", "prefetchers", "seeds"):
            if not getattr(self, name):
                raise ValueError(f"matrix axis {name!r} must not be empty")

    def cells(self) -> list[CellSpec]:
        grid = []
        for dataset in self.datasets:
            for index in self.indexes:
                for workload in self.workloads:
                    for prefetcher in self.prefetchers:
                        for seed in self.seeds:
                            grid.append(
                                CellSpec(
                                    dataset=dataset,
                                    index=index,
                                    workload=workload,
                                    prefetcher=prefetcher,
                                    seed=seed,
                                    sim=self.sim,
                                )
                            )
        return grid

    def __iter__(self) -> Iterator[CellSpec]:
        return iter(self.cells())

    def __len__(self) -> int:
        return (
            len(self.datasets)
            * len(self.indexes)
            * len(self.workloads)
            * len(self.prefetchers)
            * len(self.seeds)
        )


# -- wall-clock limits --------------------------------------------------------------


class CellTimeoutError(Exception):
    """A cell exceeded its per-attempt wall-clock budget."""


def _on_alarm(signum: int, frame: Any) -> None:
    raise CellTimeoutError("cell exceeded its wall-clock timeout")


@contextlib.contextmanager
def _wall_clock_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` in the block after ``seconds``.

    Enforced with ``SIGALRM``/``setitimer``, which interrupts Python
    bytecode and most blocking syscalls, so it catches hung cells --
    not just slow ones -- without any cooperation from the cell.  Only
    the main thread of a process can receive the signal; off-main-thread
    callers (and platforms without ``SIGALRM``) run unlimited, which is
    safe because pool workers and the serial runner both execute cells
    on their main thread.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    if seconds <= 0:
        raise ValueError(f"timeout must be positive, got {seconds}")
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _failure_result(
    spec: CellSpec, status: str, error: str, attempts: int, elapsed_seconds: float
) -> CellResult:
    """The persisted envelope for a cell that exhausted its attempts."""
    return CellResult(
        key=spec.key(),
        spec=spec.to_dict(),
        metrics=None,
        elapsed_seconds=elapsed_seconds,
        status=status,
        attempts=attempts,
        error=error,
    )


def _error_status(error: BaseException) -> tuple[str, str]:
    status = STATUS_TIMEOUT if isinstance(error, CellTimeoutError) else STATUS_FAILED
    return status, f"{type(error).__name__}: {error}"


#: Failure-envelope message for cells that exhausted their attempts on
#: crashed pools (the worker died without reporting its own error).
_POOL_CRASH_ERROR = "BrokenProcessPool: a worker process died while the cell was in flight"


# -- the single-cell primitive ------------------------------------------------------

#: Per-process memo of built datasets/indexes.  Sibling cells in one
#: worker (or a serial run) share heavy builds; entries are evicted
#: least-recently-built so long mixed sweeps stay bounded.
_MEMO_CAP = 8
_dataset_memo: OrderedDict[str, Any] = OrderedDict()
_index_memo: OrderedDict[str, Any] = OrderedDict()


def _memoized(memo: OrderedDict, key: str, build: Callable[[], Any]):
    if key in memo:
        memo.move_to_end(key)
        return memo[key]
    value = build()
    memo[key] = value
    while len(memo) > _MEMO_CAP:
        memo.popitem(last=False)
    return value


def _sim_config(
    sim: Mapping[str, Any],
    faults: Mapping[str, Any] = (),
    storage: Mapping[str, Any] = (),
    shards: Mapping[str, Any] = (),
) -> SimulationConfig | None:
    if not sim and not faults and not storage and not shards:
        return None
    kwargs = dict(sim)
    disk = kwargs.pop("disk", None)
    if disk is not None:
        kwargs["disk"] = DiskParameters(**disk)
    if faults:
        kwargs["faults"] = FaultPlan.from_dict(faults)
    if storage:
        kwargs["storage"] = StorageSpec.from_dict(storage)
    if shards:
        kwargs["shards"] = ShardSpec.from_dict(shards)
    return SimulationConfig(**kwargs)


def cached_dataset(spec: DatasetSpec):
    """Build (or reuse) a spec's dataset via the per-process memo.

    Shared by cell execution and grid builders that need a *built*
    dataset to size their workloads (Fig 17 derives each dataset's query
    volume from its extent and density), so sizing a grid and then
    running it in-process pays for one build.
    """
    return _memoized(_dataset_memo, canonical_json(spec.to_dict()), spec.build)


def _cached_index(dataset_spec: DatasetSpec, index_spec: IndexSpec):
    """Build (or reuse) an index over a memoized dataset.

    The memo key pairs dataset and index specs, so the same index kind
    over two datasets never collides.
    """
    key = canonical_json(dataset_spec.to_dict()) + "|" + canonical_json(index_spec.to_dict())
    dataset = cached_dataset(dataset_spec)
    return _memoized(_index_memo, key, lambda: index_spec.build(dataset))


def prepare_cell(spec: CellSpec):
    """Everything :func:`run_experiment` needs for one cell.

    Returns ``(index, sequences, prefetcher, sim_config)``, built from
    the spec with memoized dataset/index construction.  This is the
    single definition of how a spec becomes an executable cell --
    :func:`run_cell` and the golden-metrics suite both consume it, so a
    change to cell execution cannot diverge from the regression gate.
    """
    dataset = cached_dataset(spec.dataset)
    index = _cached_index(spec.dataset, spec.index)
    w = spec.workload
    sequences = generate_sequences(
        dataset,
        n_sequences=w.n_sequences,
        seed=spec.seed,
        n_queries=w.n_queries,
        volume=w.volume,
        gap=w.gap,
        aspect=w.aspect,
        window_ratio=w.window_ratio,
    )
    prefetcher = spec.prefetcher.build(dataset, index)
    return index, sequences, prefetcher, _sim_config(
        spec.sim, spec.faults, spec.storage, spec.shards
    )


def prepare_serving_cell(spec: CellSpec):
    """Everything a serving cell needs: (index, clients, prefetchers, config).

    The spec's ``serve`` mapping sizes the client fleet; the workload
    fields describe each client's single navigation session.  Every
    client gets its *own* prefetcher instance (prediction state is
    per-user) built from the same prefetcher spec.
    """
    serve = dict(spec.serve)
    try:
        n_clients = int(serve.pop("n_clients"))
    except KeyError:
        raise ValueError("serving cells require serve['n_clients']") from None
    known = {"mode", "stagger", "hot_pool", "zipf_s"}
    unknown = set(serve) - known
    if unknown:
        raise ValueError(f"unknown serve key(s) {sorted(unknown)}; known: {sorted(known)}")
    w = spec.workload
    if w.n_sequences != n_clients:
        # The serving path sizes the fleet from serve['n_clients'] and
        # gives every client exactly one session; a differing
        # n_sequences would silently fork the cell key while computing
        # the same thing.
        raise ValueError(
            f"serving cells need workload.n_sequences == serve['n_clients'] "
            f"(one session per client); got {w.n_sequences} != {n_clients}"
        )
    dataset = cached_dataset(spec.dataset)
    index = _cached_index(spec.dataset, spec.index)
    clients = multiclient_sessions(
        dataset,
        n_clients=n_clients,
        seed=spec.seed,
        n_queries=w.n_queries,
        volume=w.volume,
        gap=w.gap,
        aspect=w.aspect,
        window_ratio=w.window_ratio,
        **serve,
    )
    prefetchers = [spec.prefetcher.build(dataset, index) for _ in clients]
    return index, clients, prefetchers, _sim_config(
        spec.sim, spec.faults, spec.storage, spec.shards
    )


def run_serving_cell(
    spec: CellSpec,
    *,
    lockstep: bool | None = None,
    cache_backend: str | None = None,
) -> tuple[CellResult, "ServeReport"]:
    """Execute one multi-client serving cell; (result, full serve report).

    The persisted :class:`CellResult` carries the pooled
    :class:`AggregateMetrics` (clients stand in for sequences, so
    ``per_sequence_hit_rates`` holds the per-client hit rates) and flows
    through the ordinary result-store schema; the richer
    :class:`~repro.sim.metrics.ServeReport` (contention counters) is
    returned alongside for callers that hold the live object.

    ``lockstep`` selects the vectorized scheduler (``None`` defers to
    the ``REPRO_SERVE_LOCKSTEP`` environment toggle, which the CLI's
    ``--lockstep`` flag sets and sweep worker processes inherit, like
    ``REPRO_SCALE``).  Reports are bit-identical either way, so cell
    keys and stored results are scheduler-agnostic.
    """
    from repro.sim.serve import ServingSimulator

    started = time.perf_counter()
    index, clients, prefetchers, config = prepare_serving_cell(spec)
    report = ServingSimulator(index, config).run(
        clients, prefetchers, lockstep=lockstep, cache_backend=cache_backend
    )
    result = CellResult(
        key=spec.key(),
        spec=spec.to_dict(),
        metrics=report.to_aggregate(),
        elapsed_seconds=time.perf_counter() - started,
    )
    return result, report


def run_cell(spec: CellSpec) -> CellResult:
    """Execute one experiment cell from its declarative spec.

    This is the unit of work :class:`ParallelRunner` schedules; it
    rebuilds (memoized) dataset and index, generates the cell's guided
    sequences, and delegates to :func:`run_experiment` -- or, for cells
    carrying a ``serve`` mapping, to the multi-client
    :class:`~repro.sim.serve.ServingSimulator`.
    """
    if spec.serve:
        return run_serving_cell(spec)[0]
    started = time.perf_counter()
    index, sequences, prefetcher, config = prepare_cell(spec)
    outcome = run_experiment(index, sequences, prefetcher, config)
    return CellResult(
        key=spec.key(),
        spec=spec.to_dict(),
        metrics=outcome.metrics,
        elapsed_seconds=time.perf_counter() - started,
    )


def warm_cell_resources(cells: Iterable[CellSpec]) -> None:
    """Pre-build the cells' datasets and indexes into the process memo.

    Benchmarks call this before timing so the measured region covers
    simulation only, not dataset/index construction.
    """
    for spec in cells:
        _cached_index(spec.dataset, spec.index)


def profiled_run_cell(spec: CellSpec, profile_dir: str | Path) -> CellResult:
    """Run one cell under cProfile, dumping ``<cell key>.prof``.

    The profile file lands in ``profile_dir`` (created on demand) named
    by the first 16 hex digits of the cell's content hash, so profiles
    line up with result-store records.
    """
    profile_dir = Path(profile_dir)
    profile_dir.mkdir(parents=True, exist_ok=True)
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = run_cell(spec)
    finally:
        profile.disable()
    profile.dump_stats(str(profile_dir / f"{spec.key()[:16]}.prof"))
    return result


def _attempt_cell(
    spec: CellSpec, profile_dir: str | Path | None, timeout: float | None
) -> CellResult:
    """One timed attempt at a cell (raises on failure or timeout)."""
    with _wall_clock_limit(timeout):
        if profile_dir is not None:
            return profiled_run_cell(spec, profile_dir)
        return run_cell(spec)


#: Marker key of in-band worker error records (a dict key that cannot
#: clash with ``CellResult.to_record()`` fields).
_ERROR_KEY = "__cell_error__"


def _run_cell_record(
    spec_dict: dict, profile_dir: str | None = None, timeout: float | None = None
) -> dict:
    """Worker entry point: plain dicts in, plain dicts out.

    The wall-clock limit is armed here, inside the worker, so a hung
    cell interrupts *itself*.  Failures come back as an error record
    (under the ``_ERROR_KEY``) instead of a raised exception so the
    attempt's *execution* time travels with them -- the parent cannot
    tell queue wait from run time on its own.
    """
    spec = CellSpec.from_dict(spec_dict)
    started = time.perf_counter()
    try:
        return _attempt_cell(spec, profile_dir, timeout).to_record()
    except Exception as error:  # noqa: BLE001 - becomes a failure record
        status, message = _error_status(error)
        return {
            _ERROR_KEY: {
                "status": status,
                "error": message,
                "elapsed_seconds": time.perf_counter() - started,
            }
        }


# -- the runner ---------------------------------------------------------------------


@dataclass
class RunReport:
    """What a :meth:`ParallelRunner.run` call did.

    ``computed_keys`` are cells that produced metrics this run;
    ``failed_keys`` are cells recorded with a failure envelope after
    exhausting their attempts (their :class:`CellResult` entries in
    ``results`` carry ``metrics=None``); ``skipped_keys`` were reused
    from the store.  ``pool_crashes`` counts how many times the process
    pool broke (a worker died hard) and was respawned mid-sweep.
    """

    results: list[CellResult]
    computed_keys: list[str]
    skipped_keys: list[str]
    elapsed_seconds: float
    failed_keys: list[str] = field(default_factory=list)
    pool_crashes: int = 0

    @property
    def n_computed(self) -> int:
        return len(self.computed_keys)

    @property
    def n_skipped(self) -> int:
        return len(self.skipped_keys)

    @property
    def n_failed(self) -> int:
        return len(self.failed_keys)

    @property
    def ok_results(self) -> list[CellResult]:
        return [result for result in self.results if result.ok]


class ParallelRunner:
    """Fans experiment cells out over a process pool.

    ``jobs=1`` runs cells in-process (no pool, no pickling) -- the
    reference serial path.  ``jobs>1`` uses a
    :class:`~concurrent.futures.ProcessPoolExecutor`; only spec dicts
    and metric records cross process boundaries.  With a ``store``,
    finished cells are appended as soon as they complete and, when
    ``resume`` is on, cells whose key is already stored *with metrics*
    are skipped -- stored failure records are retried, so resuming a
    sweep converges on a fully-ok store.

    ``timeout`` bounds each attempt's wall-clock seconds; ``retries``
    is how many *extra* attempts a crashing or timed-out cell gets
    before it is recorded as a failure envelope and the sweep moves on.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | None = None,
        profile_dir: str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = int(jobs)
        self.store = store
        #: When set, every computed cell runs under cProfile and dumps a
        #: per-cell ``.prof`` file into this directory.
        self.profile_dir = None if profile_dir is None else Path(profile_dir)
        self.timeout = None if timeout is None else float(timeout)
        self.retries = int(retries)
        self._pool_crashes = 0

    def run(
        self,
        cells: ExperimentMatrix | Iterable[CellSpec],
        resume: bool = True,
        progress: Callable[[CellResult], None] | None = None,
    ) -> RunReport:
        """Run (or reuse) every cell; results come back in cell order.

        Duplicate cells (same key) are computed once and share one
        result.  Returns a :class:`RunReport` whose ``results`` list is
        parallel to the input cell list.
        """
        started = time.perf_counter()
        specs = list(cells.cells() if isinstance(cells, ExperimentMatrix) else cells)
        keys = [spec.key() for spec in specs]
        self._pool_crashes = 0

        done: dict[str, CellResult] = {}
        skipped: list[str] = []
        if resume and self.store is not None:
            stored = self.store.load(reload=True)
            for key in dict.fromkeys(keys):
                # Only successful records satisfy a resume; a stored
                # failure envelope means the cell still owes metrics.
                if key in stored and stored[key].ok:
                    done[key] = stored[key]
                    skipped.append(key)

        todo: list[CellSpec] = []
        seen: set[str] = set(done)
        for spec, key in zip(specs, keys):
            if key not in seen:
                seen.add(key)
                todo.append(spec)

        computed: list[str] = []
        failed: list[str] = []
        if todo:
            for result in self._compute(todo):
                done[result.key] = result
                (computed if result.ok else failed).append(result.key)
                if self.store is not None:
                    self.store.append(result)
                if progress is not None:
                    progress(result)
        if self.store is not None:
            self.store.flush()

        return RunReport(
            results=[done[key] for key in keys],
            computed_keys=computed,
            skipped_keys=skipped,
            elapsed_seconds=time.perf_counter() - started,
            failed_keys=failed,
            pool_crashes=self._pool_crashes,
        )

    @property
    def _attempts(self) -> int:
        return self.retries + 1

    def _compute(self, specs: list[CellSpec]) -> Iterator[CellResult]:
        # jobs>1 always pools, even for a single cell: the user asked
        # for process isolation, and a hard-crashing cell run in-process
        # would take the whole sweep down instead of a respawnable worker.
        if self.jobs == 1:
            yield from self._compute_serial(specs)
        else:
            yield from self._compute_pooled(specs)

    def _compute_serial(self, specs: list[CellSpec]) -> Iterator[CellResult]:
        for spec in specs:
            elapsed = 0.0
            for attempt in range(1, self._attempts + 1):
                started = time.perf_counter()
                try:
                    result = _attempt_cell(spec, self.profile_dir, self.timeout)
                except Exception as error:  # noqa: BLE001 - becomes a failure record
                    elapsed += time.perf_counter() - started
                    if attempt >= self._attempts:
                        status, message = _error_status(error)
                        yield _failure_result(spec, status, message, attempt, elapsed)
                else:
                    yield replace(result, attempts=attempt)
                    break

    def _compute_pooled(self, specs: list[CellSpec]) -> Iterator[CellResult]:
        profile_dir = None if self.profile_dir is None else str(self.profile_dir)
        # Work queue of (spec, attempt number, execution seconds already
        # spent in failed attempts -- worker-measured, so queue wait in
        # a busy pool never inflates a failure envelope).  Each pass of
        # the outer loop runs one batch through one executor; retries
        # and cells orphaned by a pool crash feed the next batch.
        backlog: list[tuple[CellSpec, int, float]] = [(spec, 1, 0.0) for spec in specs]
        while backlog:
            batch, backlog = backlog, []
            work = deque(batch)
            max_workers = min(self.jobs, len(batch))
            # Submissions are windowed at workers+1: enough to keep every
            # worker fed (the +1 buffers the gap between a worker going
            # idle and the next top-up), small enough that a pool crash
            # only charges an attempt to cells plausibly executing --
            # cells still waiting in `work` never ran, so they re-enter
            # the next batch uncharged.
            window = max_workers + 1
            pool = ProcessPoolExecutor(max_workers=max_workers)
            broken = False
            pending: dict[Future, tuple[CellSpec, int, float]] = {}

            def top_up() -> None:
                """Fill the submission window (the only submit call site)."""
                nonlocal broken
                while not broken and work and len(pending) < window:
                    entry = work.popleft()
                    try:
                        future = pool.submit(
                            _run_cell_record, entry[0].to_dict(), profile_dir, self.timeout
                        )
                    except BrokenProcessPool:
                        broken = True
                        work.appendleft(entry)
                        return
                    pending[future] = entry

            try:
                top_up()
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        spec, attempt, elapsed = pending.pop(future)
                        try:
                            record = future.result()
                        except BrokenProcessPool:
                            # A worker died hard and took the pool with
                            # it.  Which windowed cell killed it is
                            # unknowable, so each one is charged an
                            # attempt -- the charge is what bounds a
                            # crash-looping cell -- and re-enqueued for
                            # the respawned pool.
                            broken = True
                            if attempt < self._attempts:
                                backlog.append((spec, attempt + 1, elapsed))
                            else:
                                yield _failure_result(
                                    spec, STATUS_FAILED, _POOL_CRASH_ERROR, attempt, elapsed
                                )
                            continue
                        except Exception as error:  # noqa: BLE001 - failure record
                            # Out-of-band failure (e.g. a result that cannot
                            # unpickle); no worker timing available.
                            status, message = _error_status(error)
                            failure = (status, message, elapsed)
                        else:
                            worker_error = record.get(_ERROR_KEY)
                            if worker_error is None:
                                yield replace(
                                    CellResult.from_record(record), attempts=attempt
                                )
                                continue
                            failure = (
                                worker_error["status"],
                                worker_error["error"],
                                elapsed + worker_error["elapsed_seconds"],
                            )
                        status, message, elapsed = failure
                        if attempt >= self._attempts:
                            yield _failure_result(spec, status, message, attempt, elapsed)
                        else:
                            # Retry at the front of the queue: it runs as
                            # soon as a window slot frees (reusing the
                            # workers' warm dataset/index memos), or in
                            # the next batch if the pool broke.
                            work.appendleft((spec, attempt + 1, elapsed))
                    if broken:
                        self._pool_crashes += 1
                        # Drain what is left.  A future may have settled
                        # between the crash and this drain: completed
                        # results are yielded as usual, and a worker's
                        # own failure record keeps its true status and
                        # timing instead of being blamed on the crash.
                        for future, (spec, attempt, elapsed) in pending.items():
                            candidate = None
                            if future.done():
                                try:
                                    candidate = future.result()
                                except BaseException:  # noqa: BLE001 - broken future
                                    candidate = None
                            if isinstance(candidate, dict) and _ERROR_KEY not in candidate:
                                yield replace(
                                    CellResult.from_record(candidate), attempts=attempt
                                )
                                continue
                            if isinstance(candidate, dict):
                                worker_error = candidate[_ERROR_KEY]
                                status = worker_error["status"]
                                message = worker_error["error"]
                                elapsed += worker_error["elapsed_seconds"]
                            else:
                                status, message = STATUS_FAILED, _POOL_CRASH_ERROR
                            if attempt < self._attempts:
                                backlog.append((spec, attempt + 1, elapsed))
                            else:
                                yield _failure_result(spec, status, message, attempt, elapsed)
                        pending.clear()
                    else:
                        top_up()
                # Cells never submitted to the broken pool carry over
                # uncharged (work is empty after a healthy batch).
                backlog.extend(work)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            if backlog and self.store is not None:
                # The respawned pool forks from a parent whose async
                # writer thread is live by now; draining its queue parks
                # the thread in an idle wait (mutex released) so the
                # fork cannot copy a held lock into the new workers.
                self.store.flush()
