"""Multi-client serving simulator: N sessions, one cache, one disk.

The paper's experiments run one interactive client against a private
prefetch cache.  A deployment serves *many* concurrent users whose
prefetchers share the cache and the disk -- the shared-resource
pressure that decides whether prefetching still pays off at scale
(DESIGN.md §6).  :class:`ServingSimulator` models exactly that:

* every client is a :class:`~repro.sim.engine.QuerySession` -- the same
  resumable state machine the single-client engine drives -- so serving
  changes *scheduling*, never per-query semantics;
* all sessions share one prefetch cache and one
  :class:`~repro.storage.disk.DiskModel`; prefetched pages are
  owner-tagged, so hits can be attributed across clients and misses to
  eviction pressure;
* scheduling is deterministic round-robin at query granularity: each
  tick, every live (started, unfinished) client executes its next query
  in client order.  ``start_tick`` staggering delays arrivals.

Two schedulers produce **bit-identical reports** (pinned by
``tests/test_serving_lockstep.py``):

``round_robin`` (default)
    the reference loop above -- one client's full query at a time;
``lockstep``
    the vectorized plane for large fleets.  Each tick resolves every
    active client's query in one batched ``query_many`` pass, runs the
    sessions over an array-backed shared cache
    (:class:`~repro.storage.cache.ArrayCache`), and -- when every
    client runs the same position-only prefetcher -- lets clients that
    share a hot sequence replay their group leader's pure work (index
    result, prediction, plan with memoized probe streams) instead of
    recomputing it.  Only *pure* work is ever hoisted or shared; every
    cache touch, disk read and budget decision still executes in exact
    client order, which is why the reports match bit for bit.

With one client the shared cache and disk degenerate to private ones,
so ``ServingSimulator`` over a single session is bit-identical to
:meth:`~repro.sim.engine.SimulationEngine.run` -- pinned by the
property suite in ``tests/test_serving.py``.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.baselines.base import PositionOnlyPrefetcher, Prefetcher
from repro.index.base import SpatialIndex
from repro.sim.engine import QuerySession, SimulationConfig, SimulationEngine
from repro.sim.metrics import ClientMetrics, ServeReport
from repro.workload.multiclient import ClientWorkload

__all__ = ["ServingSimulator", "lockstep_from_env"]

#: Environment toggle for the lockstep scheduler (inherits into sweep
#: worker processes, like ``REPRO_SCALE``); set by the CLI's
#: ``--lockstep`` flag.
LOCKSTEP_ENV = "REPRO_SERVE_LOCKSTEP"


def lockstep_from_env() -> bool:
    """Whether the ``REPRO_SERVE_LOCKSTEP`` toggle is on."""
    return os.environ.get(LOCKSTEP_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def _plans_shareable(prefetchers: Sequence[Prefetcher]) -> bool:
    """Whether every client's prefetcher admits leader/follower sharing.

    Sharing replays the leader's observe/plan work, so it is only sound
    for prefetchers whose per-query work is a pure function of the
    observed sequence: the position-only family (their plans derive
    from observed centers alone, and they issue no gap I/O whose pulls
    could depend on cache state).  All clients must run the same
    configuration (type and name -- the name encodes the parameters) so
    that identical observations imply identical predictions.
    """
    first = prefetchers[0]
    if not isinstance(first, PositionOnlyPrefetcher):
        return False
    return all(
        type(p) is type(first) and p.name == first.name for p in prefetchers
    )


class ServingSimulator:
    """Multiplexes client sessions over one shared cache and disk."""

    def __init__(self, index: SpatialIndex, config: SimulationConfig | None = None) -> None:
        self.index = index
        self.config = config or SimulationConfig()
        self.engine = SimulationEngine(index, self.config)

    def run(
        self,
        clients: Sequence[ClientWorkload],
        prefetchers: Sequence[Prefetcher],
        *,
        lockstep: bool | None = None,
        cache_backend: str | None = None,
        share_plans: bool | None = None,
    ) -> ServeReport:
        """Serve every client to completion; returns the pooled report.

        ``prefetchers`` is parallel to ``clients``: each client owns its
        prefetcher instance (prediction state is per-user), while cache
        and disk are shared.  Deterministic: same clients + prefetchers
        in, same report out, regardless of wall-clock or scheduler.

        ``lockstep`` selects the vectorized scheduler (``None`` reads
        the ``REPRO_SERVE_LOCKSTEP`` environment toggle); the report is
        bit-identical either way.  ``cache_backend`` picks the shared
        cache implementation (``"dict"`` or ``"array"``; ``None`` keeps
        the dict cache for round-robin and the array cache for
        lockstep).  ``share_plans`` controls leader/follower plan
        sharing under lockstep: ``None`` enables it automatically when
        every client runs the same position-only prefetcher, ``False``
        disables it, ``True`` insists on it (raising if the prefetcher
        fleet cannot share soundly).
        """
        clients = list(clients)
        if not clients:
            raise ValueError("serving needs at least one client")
        if len(prefetchers) != len(clients):
            raise ValueError(
                f"got {len(prefetchers)} prefetchers for {len(clients)} clients; "
                "each client needs its own instance"
            )
        if lockstep is None:
            lockstep = lockstep_from_env()
        if cache_backend is None:
            cache_backend = "array" if lockstep else "dict"
        # A configured fault plan disables leader/follower plan sharing:
        # per-client breaker state diverges under failures, so a
        # follower's observe/plan work is no longer a pure replay of its
        # leader's.  Both schedulers still read from the shared faulty
        # disk in exact client order, so their reports (and the fault
        # RNG draw sequence) stay bit-identical.
        faulty = self.config.faults is not None
        if faulty and share_plans:
            raise ValueError("share_plans is unavailable under a fault plan")
        if faulty:
            share_plans = False
        # A storage tier never perturbs the pure observe/plan work (tier
        # state only decides which backing reads are charged), so plan
        # sharing stays available; the report just flags the tier so the
        # additive counters persist (DESIGN.md §9).
        tiered = self.config.storage is not None and self.config.storage.tiering_active
        # A sharded cache keeps plan sharing available for the same
        # reason: routing and rebalancing only redistribute which shard
        # absorbs a touch, and both schedulers feed the cache identical
        # batch sequences (DESIGN.md §10).
        sharded = self.config.shards is not None and self.config.shards.sharding_active
        cache = self.config.build_cache(self.index, cache_backend)
        disk = self.config.build_disk()
        sessions = [
            QuerySession(
                self.engine,
                client.sequence,
                prefetcher,
                cache=cache,
                disk=disk,
                client_id=client.client_id,
            )
            for client, prefetcher in zip(clients, prefetchers)
        ]

        if lockstep:
            n_ticks = self._run_lockstep(clients, sessions, prefetchers, share_plans)
        else:
            if share_plans:
                raise ValueError("share_plans requires the lockstep scheduler")
            n_ticks = self._run_round_robin(clients, sessions)

        return ServeReport(
            clients=[
                ClientMetrics(
                    client_id=client.client_id,
                    metrics=session.metrics,
                    shared_hits=session.shared_hits,
                    shared_misses=session.shared_misses,
                    cross_client_hits=session.cross_client_hits,
                    evicted_misses=session.evicted_misses,
                    failed_reads=session.failed_reads,
                    degraded_ticks=session.degraded_ticks,
                    breaker_opens=session.breaker_opens,
                    tier_hits=session.tier_hits,
                    miss_path_hits=session.miss_path_hits,
                    tier_fills=session.tier_fills,
                    tier_stall_seconds=session.tier_stall_seconds,
                    shard_hop_seconds=session.shard_hop_seconds,
                )
                for client, session in zip(clients, sessions)
            ],
            capacity_pages=cache.capacity_pages,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
            cache_insertions=cache.insertions,
            n_ticks=n_ticks,
            faults_active=faulty,
            tiers_active=tiered,
            shards_active=sharded,
            shard_requests=(
                [shard.hits + shard.misses for shard in cache.shards]
                if sharded
                else None
            ),
            shard_hits=(
                [shard.hits for shard in cache.shards] if sharded else None
            ),
            shard_rebalances=cache.rebalance_events if sharded else None,
            shard_pages_moved=cache.pages_moved if sharded else None,
        )

    # -- schedulers -----------------------------------------------------------

    def _run_round_robin(self, clients, sessions) -> int:
        """The reference loop: one client's full query at a time."""
        tick = 0
        while True:
            advanced = False
            waiting = False
            for client, session in zip(clients, sessions):
                if session.done:
                    continue
                if client.start_tick > tick:
                    waiting = True
                    continue
                session.step_query()
                advanced = True
            if not advanced and not waiting:
                break
            tick += 1
        return tick

    def _run_lockstep(self, clients, sessions, prefetchers, share_plans) -> int:
        """The vectorized plane: batch the tick's pure work, then step.

        Per tick: (1) resolve every active session's current query in
        one batched ``query_many`` pass and inject the results; (2) step
        every active session's full query *in client order* -- all cache
        and disk mutations happen here, exactly as round-robin
        interleaves them.  Plan-sharing groups (clients on the same
        sequence object with the same start tick, eligible prefetchers)
        additionally skip recomputing the leader's pure work: every
        active group member advances exactly one query per tick, so
        members stay bitwise-identical in their pure computations for
        the whole run and the leader's capture *is* the follower's own
        computation.
        """
        sharing = (
            _plans_shareable(prefetchers) if share_plans in (None, True) else False
        )
        if share_plans is True and not sharing:
            raise ValueError(
                "share_plans=True needs every client on the same "
                "position-only prefetcher configuration"
            )

        # Static sharing groups: same sequence object + same start tick
        # (hotspot workloads share sequence objects across followers).
        leader_of: dict[int, int] = {}
        group_size: dict[int, int] = {}
        if sharing:
            first_with_key: dict[tuple[int, int], int] = {}
            for i, client in enumerate(clients):
                key = (id(client.sequence), client.start_tick)
                leader = first_with_key.setdefault(key, i)
                leader_of[i] = leader
                group_size[leader] = group_size.get(leader, 0) + 1

        tick = 0
        while True:
            active = [
                i
                for i, (client, session) in enumerate(zip(clients, sessions))
                if not session.done and client.start_tick <= tick
            ]
            waiting = any(
                not session.done and client.start_tick > tick
                for client, session in zip(clients, sessions)
            )
            if not active and not waiting:
                break

            # One batched index pass per tick over the distinct queries
            # (a follower's query is its leader's query).
            owners = [i for i in active if leader_of.get(i, i) == i]
            if owners:
                bounds = [
                    sessions[i].sequence.queries[sessions[i].query_index].bounds
                    for i in owners
                ]
                for i, result in zip(owners, self.index.query_many(bounds)):
                    sessions[i].prime_result(result)

            bundles: dict[int, object] = {}
            for i in active:
                leader = leader_of.get(i, i)
                if leader == i:
                    if group_size.get(i, 1) > 1:
                        bundles[i] = sessions[i].step_query_capture()
                    else:
                        sessions[i].step_query()
                else:
                    sessions[i].step_query_replay(bundles[leader])
            tick += 1
        return tick
