"""Multi-client serving simulator: N sessions, one cache, one disk.

The paper's experiments run one interactive client against a private
prefetch cache.  A deployment serves *many* concurrent users whose
prefetchers share the cache and the disk -- the shared-resource
pressure that decides whether prefetching still pays off at scale
(DESIGN.md §6).  :class:`ServingSimulator` models exactly that:

* every client is a :class:`~repro.sim.engine.QuerySession` -- the same
  resumable state machine the single-client engine drives -- so serving
  changes *scheduling*, never per-query semantics;
* all sessions share one :class:`~repro.storage.cache.PrefetchCache`
  and one :class:`~repro.storage.disk.DiskModel`; prefetched pages are
  owner-tagged, so hits can be attributed across clients and misses to
  eviction pressure;
* scheduling is deterministic round-robin at query granularity: each
  tick, every live (started, unfinished) client executes its next query
  in client order.  ``start_tick`` staggering delays arrivals.

With one client the shared cache and disk degenerate to private ones,
so ``ServingSimulator`` over a single session is bit-identical to
:meth:`~repro.sim.engine.SimulationEngine.run` -- pinned by the
property suite in ``tests/test_serving.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import Prefetcher
from repro.index.base import SpatialIndex
from repro.sim.engine import QuerySession, SimulationConfig, SimulationEngine
from repro.sim.metrics import ClientMetrics, ServeReport
from repro.storage.cache import PrefetchCache
from repro.storage.disk import DiskModel
from repro.workload.multiclient import ClientWorkload

__all__ = ["ServingSimulator"]


class ServingSimulator:
    """Multiplexes client sessions over one shared cache and disk."""

    def __init__(self, index: SpatialIndex, config: SimulationConfig | None = None) -> None:
        self.index = index
        self.config = config or SimulationConfig()
        self.engine = SimulationEngine(index, self.config)

    def run(
        self,
        clients: Sequence[ClientWorkload],
        prefetchers: Sequence[Prefetcher],
    ) -> ServeReport:
        """Serve every client to completion; returns the pooled report.

        ``prefetchers`` is parallel to ``clients``: each client owns its
        prefetcher instance (prediction state is per-user), while cache
        and disk are shared.  Deterministic: same clients + prefetchers
        in, same report out, regardless of wall-clock.
        """
        clients = list(clients)
        if not clients:
            raise ValueError("serving needs at least one client")
        if len(prefetchers) != len(clients):
            raise ValueError(
                f"got {len(prefetchers)} prefetchers for {len(clients)} clients; "
                "each client needs its own instance"
            )
        cache = PrefetchCache(self.config.cache_capacity_for(self.index))
        disk = DiskModel(self.config.disk)
        sessions = [
            QuerySession(
                self.engine,
                client.sequence,
                prefetcher,
                cache=cache,
                disk=disk,
                client_id=client.client_id,
            )
            for client, prefetcher in zip(clients, prefetchers)
        ]

        tick = 0
        while True:
            advanced = False
            waiting = False
            for client, session in zip(clients, sessions):
                if session.done:
                    continue
                if client.start_tick > tick:
                    waiting = True
                    continue
                session.step_query()
                advanced = True
            if not advanced and not waiting:
                break
            tick += 1

        return ServeReport(
            clients=[
                ClientMetrics(
                    client_id=client.client_id,
                    metrics=session.metrics,
                    shared_hits=session.shared_hits,
                    shared_misses=session.shared_misses,
                    cross_client_hits=session.cross_client_hits,
                    evicted_misses=session.evicted_misses,
                )
                for client, session in zip(clients, sessions)
            ],
            capacity_pages=cache.capacity_pages,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
            cache_insertions=cache.insertions,
            n_ticks=tick,
        )
