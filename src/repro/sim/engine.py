"""The execution simulator (paper Figure 2).

For every query of a guided sequence the engine:

1. serves the query: needed pages found in the prefetch cache are hits,
   the rest is *residual I/O* read from the simulated disk;
2. opens the prefetch window: ``window_ratio x`` the query's cold read
   time (the paper's ``r = u/d`` analysis-time model, §7.2);
3. lets the prefetcher observe the query (bounds + result content) and
   charges its simulated prediction cost against the window;
4. executes the prefetcher's plan incrementally (§5.1): growing regions
   advance along each target's axis, and every page read charges disk
   time against the remaining window -- prefetching stops mid-plan the
   moment the user "issues the next query".

All I/O is page-granular and deterministic; see DESIGN.md §2 for the
substitution rationale.

The per-query loop lives in :class:`QuerySession`, a resumable state
machine that advances one explicit phase at a time (serve → window →
observe/predict → execute-plan).  :meth:`SimulationEngine.run` drives a
single session to completion over a private cache and disk -- the
classic one-client experiment -- while the serving layer
(:mod:`repro.sim.serve`, DESIGN.md §6) interleaves many sessions over
one shared cache and disk to model concurrent users.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.geometry.aabb import AABB
from repro.index.base import SpatialIndex
from repro.sim.metrics import QueryRecord, SequenceMetrics
from repro.storage.cache import PrefetchCache
from repro.storage.disk import DiskModel, DiskParameters
from repro.workload.sequence import QuerySequence

__all__ = ["QuerySession", "SimulationConfig", "SimulationEngine"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs (defaults follow the paper's setup, scaled)."""

    #: Prefetch cache capacity in pages; ``None`` uses the paper's ratio
    #: of cache to dataset size (4 GB / 33 GB ≈ 12 % of the pages).
    cache_capacity_pages: int | None = None

    disk: DiskParameters = field(default_factory=DiskParameters)

    #: First incremental prefetch region side, as a fraction of the
    #: query side (§5.1: start small near the exit location E).
    incremental_start_fraction: float = 0.55

    #: Growth factor of successive incremental regions.
    incremental_growth: float = 1.25

    #: Largest incremental region side as a fraction of the query side.
    incremental_max_fraction: float = 1.5

    #: Fraction of the current region side each incremental step
    #: advances along the extrapolated axis (overlapping regions re-hit
    #: cached pages at no cost, §5.1).
    incremental_advance_fraction: float = 0.6

    #: Upper bound on incremental steps per target (windows run out far
    #: earlier in practice; this is a safety net).
    incremental_max_steps: int = 24

    def cache_capacity_for(self, index: SpatialIndex) -> int:
        if self.cache_capacity_pages is not None:
            return self.cache_capacity_pages
        return max(256, int(0.12 * index.n_pages))


class _BatchedProbes:
    """Resolve a region iterator's page probes through the batched index API.

    Plan execution consumes one incremental region at a time (budget
    spending decides when to stop), but the regions themselves do not
    depend on probe results -- so we can pull them from the iterator a
    chunk ahead and answer all of the chunk's page lookups in one
    vectorized :meth:`~repro.index.base.SpatialIndex.pages_for_regions`
    pass.  Per-region results are identical to one-at-a-time calls; a
    partially consumed chunk merely wasted some (cheap, vectorized)
    lookahead.
    """

    def __init__(self, index, regions, chunk: int = 8) -> None:
        self._index = index
        self._regions = iter(regions)
        self._chunk = max(1, int(chunk))
        self._buffer: deque = deque()

    def next(self):
        """The next ``(region, page_ids)`` pair, or ``None`` when done."""
        if not self._buffer:
            batch = list(islice(self._regions, self._chunk))
            if not batch:
                return None
            self._buffer.extend(zip(batch, self._index.pages_for_regions(batch)))
        return self._buffer.popleft()


class SimulationEngine:
    """Runs prefetchers against guided query sequences."""

    def __init__(
        self,
        index: SpatialIndex,
        config: SimulationConfig | None = None,
    ) -> None:
        self.index = index
        self.config = config or SimulationConfig()

    # -- incremental prefetch expansion (§5.1) ------------------------------------------

    def _incremental_regions(self, target: PrefetchTarget, side: float):
        """Yield the growing, advancing prefetch regions of one target."""
        if target.regions is not None:
            yield from target.regions
            return
        cfg = self.config
        region_side = side * cfg.incremental_start_fraction
        max_side = side * cfg.incremental_max_fraction
        advanced = 0.0
        direction = target.direction
        has_direction = bool(np.linalg.norm(direction) > 0)
        for _ in range(cfg.incremental_max_steps):
            if has_direction:
                center = target.anchor + direction * (advanced + region_side / 2.0)
            else:
                center = target.anchor
            yield AABB.from_center_extent(center, region_side)
            advanced += region_side * cfg.incremental_advance_fraction
            region_side = min(region_side * cfg.incremental_growth, max_side)

    # -- one sequence ---------------------------------------------------------------------

    def run(self, sequence: QuerySequence, prefetcher: Prefetcher) -> SequenceMetrics:
        """Execute one sequence with one prefetcher, cold caches.

        Thin wrapper driving one :class:`QuerySession` to completion over
        a private cache and disk; metrics are bit-identical to the
        historical monolithic loop.
        """
        return QuerySession(self, sequence, prefetcher).run()

    def _execute_plan(
        self,
        targets: list[PrefetchTarget],
        query,
        cache: PrefetchCache,
        disk: DiskModel,
        budget: float,
        owner: int | None = None,
    ) -> tuple[int, float]:
        """Spend the window on the plan; returns (pages read, seconds).

        ``owner`` tags inserted pages with the prefetching client for
        shared-cache accounting (see :mod:`repro.sim.serve`); it never
        affects spending or eviction decisions.

        The budget is split share-proportionally across targets and spent
        in passes: each pass grants every still-active target its share
        of the budget remaining at the start of the pass, plus whatever
        earlier targets in the same pass left unspent.  A target whose
        region iterator runs dry drops out, and the next pass re-grants
        the leftover to the targets that can still spend -- so one dead
        target cannot strand window time that live targets could use
        (§5.1 prefetches until the window closes whenever predicted data
        remains).

        Each incremental region's missing pages are read as one batch so
        contiguous page runs earn the sequential discount, exactly like
        residual query I/O does; the batch that crosses the budget line
        is trimmed so the window is overshot by at most one page read.

        Region page probes are resolved through the index's batched API
        a chunk at a time (:class:`_BatchedProbes`); the spending loop
        below is unchanged and sees identical per-region page sets.
        """
        if not targets:
            return 0, 0.0
        side = float(np.cbrt(max(query.bounds.volume, 1e-30)))
        states = [
            {
                "share": t.share,
                "probes": _BatchedProbes(self.index, self._incremental_regions(t, side)),
                "done": False,
            }
            for t in targets
        ]

        pages_read = 0
        seconds = 0.0
        remaining = budget
        while remaining > 1e-12:
            active = [s for s in states if not s["done"]]
            if not active:
                break
            total_share = sum(s["share"] for s in active) or 1.0
            pass_budget = remaining
            advanced = False
            carry = 0.0
            for state in active:
                if remaining <= 0:
                    break
                allotment = pass_budget * (state["share"] / total_share) + carry
                spent = 0.0
                while spent < allotment and remaining > 0:
                    probe = state["probes"].next()
                    if probe is None:
                        state["done"] = True
                        break
                    advanced = True
                    _, probe_pages = probe
                    batch = []
                    for page in probe_pages:
                        page = int(page)
                        if page in cache:
                            continue
                        batch.append(page)
                    if not batch:
                        continue
                    batch = disk.trim_to_budget(batch, remaining)
                    cost = disk.read_pages(batch)
                    spent += cost
                    remaining -= cost
                    seconds += cost
                    pages_read += len(batch)
                    cache.insert_many(batch, owner)
                carry = max(0.0, allotment - spent)
            if not advanced:
                break
        return pages_read, seconds


class QuerySession:
    """One client's sequence as a resumable state machine.

    The monolithic per-query loop of the historical ``run`` method,
    split into the four explicit phases of the paper's Figure-2
    timeline so sessions can be *interleaved*:

    ``serve``
        execute the query; cached pages are hits, the rest is residual
        I/O read from the (possibly shared) disk;
    ``window``
        open the prefetch window (``window_ratio x`` the cold read time);
    ``predict``
        let the prefetcher observe the query and charge its prediction
        cost against the window;
    ``prefetch``
        spend the remaining window on gap I/O and the incremental plan,
        then append the query's :class:`QueryRecord` and rewind to
        ``serve`` for the next query.

    Phase order and every cache/disk operation match the historical
    loop exactly, so a session run to completion over a private cache
    and disk is bit-identical to it -- the property the golden-metrics
    suite pins.  :class:`~repro.sim.serve.ServingSimulator` instead
    passes many sessions one *shared* cache and disk; ``client_id``
    tags that session's prefetched pages so the shared cache can
    attribute hits across clients (DESIGN.md §6).
    """

    #: Phase cycle of one query, in execution order.
    PHASES = ("serve", "window", "predict", "prefetch")

    def __init__(
        self,
        engine: SimulationEngine,
        sequence: QuerySequence,
        prefetcher: Prefetcher,
        *,
        cache: PrefetchCache | None = None,
        disk: DiskModel | None = None,
        client_id: int | None = None,
    ) -> None:
        self.engine = engine
        self.sequence = sequence
        self.prefetcher = prefetcher
        config = engine.config
        self.cache = (
            PrefetchCache(config.cache_capacity_for(engine.index)) if cache is None else cache
        )
        self.disk = DiskModel(config.disk) if disk is None else disk
        self.client_id = client_id
        self.metrics = SequenceMetrics()
        self.phase = "serve"
        self._cursor = 0
        self._ctx: dict = {}
        # Shared-cache accounting: this session's page touches, and the
        # contention-attributed subsets (see DESIGN.md §6).
        self.shared_hits = 0
        self.shared_misses = 0
        self.cross_client_hits = 0
        self.evicted_misses = 0
        prefetcher.begin_sequence()

    # -- state ----------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every query has fully completed (no phase in flight)."""
        return self._cursor >= len(self.sequence.queries)

    @property
    def query_index(self) -> int:
        """Index of the query currently (or next) being processed."""
        return self._cursor

    # -- stepping -------------------------------------------------------------------

    def step(self) -> str | None:
        """Run the current phase and advance; returns the phase run.

        Returns ``None`` when the session is already done.  Phases cycle
        ``serve -> window -> predict -> prefetch`` per query; the
        ``prefetch`` phase appends the query's record and rewinds to
        ``serve`` for the next query.
        """
        if self.done:
            return None
        phase = self.phase
        getattr(self, f"_phase_{phase}")()
        at = self.PHASES.index(phase)
        self.phase = self.PHASES[(at + 1) % len(self.PHASES)]
        return phase

    def step_query(self) -> QueryRecord | None:
        """Advance through every phase of one query; its record, or None.

        Resumes mid-query: if a previous caller stopped between phases,
        only the remaining phases run.
        """
        if self.done:
            return None
        while self.step() != "prefetch":
            pass
        return self.metrics.records[-1]

    def run(self) -> SequenceMetrics:
        """Run the session to completion (the single-client fast path)."""
        while not self.done:
            self.step_query()
        return self.metrics

    # -- the four phases --------------------------------------------------------------

    def _phase_serve(self) -> None:
        query = self.sequence.queries[self._cursor]
        result = self.engine.index.query(query.bounds)
        pages = [int(p) for p in result.page_ids]

        # Pages in the prefetch cache are hits; the rest is residual
        # I/O.  Result pages do NOT enter the prefetch cache -- the
        # cache holds prefetched data only ("percentage of data read
        # from the prefetch cache rather than from disk", §3.3).
        cache = self.cache
        hits = [p for p in pages if cache.touch(p)]
        hit_set = set(hits)
        misses = [p for p in pages if p not in cache]
        residual = self.disk.read_pages(misses)

        self.shared_hits += len(hits)
        self.shared_misses += len(pages) - len(hits)
        if self.client_id is not None:
            self.cross_client_hits += sum(
                1 for p in hits if cache.owner_of(p) != self.client_id
            )
            self.evicted_misses += sum(1 for p in misses if cache.was_evicted(p))

        # Data-level hit accounting (§3.3): an object is served from
        # the cache when its page was prefetched.
        object_pages = self.engine.index.page_table.page_ids_of_objects(result.object_ids)
        objects_hit = int(sum(1 for p in object_pages if int(p) in hit_set))

        self._ctx = {
            "query": query,
            "result": result,
            "pages": pages,
            "n_hits": len(hits),
            "residual": residual,
            "objects_hit": objects_hit,
        }

    def _phase_window(self) -> None:
        ctx = self._ctx
        ctx["cold"] = self.disk.cost_if_cold(ctx["pages"])
        ctx["window"] = self.sequence.window_ratio * ctx["cold"]

    def _phase_predict(self) -> None:
        ctx = self._ctx
        self.prefetcher.observe(
            ObservedQuery(
                index=self._cursor,
                bounds=ctx["query"].bounds,
                result_object_ids=ctx["result"].object_ids,
            )
        )
        ctx["prediction_cost"] = self.prefetcher.prediction_cost_seconds()
        ctx["build_cost"] = self.prefetcher.graph_build_cost_seconds()
        ctx["budget"] = ctx["window"] - ctx["prediction_cost"]

    def _phase_prefetch(self) -> None:
        ctx = self._ctx
        cache, disk = self.cache, self.disk
        budget = ctx["budget"]

        prefetch_pages = 0
        prefetch_seconds = 0.0
        gap_pages_used = 0

        # Prediction I/O first (SCOUT-OPT gap traversal, §6.3).
        for page in self.prefetcher.gap_io_pages():
            if budget <= 0:
                break
            gap_pages_used += 1
            if page in cache:
                continue
            cost = disk.read_pages([page])
            budget -= cost
            prefetch_seconds += cost
            cache.insert(page, self.client_id)

        # Execute the plan within the remaining window.
        if budget > 0:
            used = self.engine._execute_plan(
                self.prefetcher.plan(), ctx["query"], cache, disk, budget, self.client_id
            )
            prefetch_pages += used[0]
            prefetch_seconds += used[1]

        result = ctx["result"]
        self.metrics.records.append(
            QueryRecord(
                index=self._cursor,
                pages_needed=len(ctx["pages"]),
                pages_hit=ctx["n_hits"],
                objects_needed=result.n_objects,
                objects_hit=ctx["objects_hit"],
                residual_seconds=ctx["residual"],
                cold_seconds=ctx["cold"],
                window_seconds=ctx["window"],
                prediction_seconds=ctx["prediction_cost"],
                graph_build_seconds=ctx["build_cost"],
                prefetch_pages=prefetch_pages,
                prefetch_seconds=prefetch_seconds,
                gap_io_pages=gap_pages_used,
                n_result_objects=result.n_objects,
                n_candidates=getattr(self.prefetcher, "n_candidates", 0),
            )
        )
        self._ctx = {}
        self._cursor += 1
