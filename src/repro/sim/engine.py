"""The execution simulator (paper Figure 2).

For every query of a guided sequence the engine:

1. serves the query: needed pages found in the prefetch cache are hits,
   the rest is *residual I/O* read from the simulated disk;
2. opens the prefetch window: ``window_ratio x`` the query's cold read
   time (the paper's ``r = u/d`` analysis-time model, §7.2);
3. lets the prefetcher observe the query (bounds + result content) and
   charges its simulated prediction cost against the window;
4. executes the prefetcher's plan incrementally (§5.1): growing regions
   advance along each target's axis, and every page read charges disk
   time against the remaining window -- prefetching stops mid-plan the
   moment the user "issues the next query".

All I/O is page-granular and deterministic; see DESIGN.md §2 for the
substitution rationale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.geometry.aabb import AABB
from repro.index.base import SpatialIndex
from repro.sim.metrics import QueryRecord, SequenceMetrics
from repro.storage.cache import PrefetchCache
from repro.storage.disk import DiskModel, DiskParameters
from repro.workload.sequence import QuerySequence

__all__ = ["SimulationConfig", "SimulationEngine"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs (defaults follow the paper's setup, scaled)."""

    #: Prefetch cache capacity in pages; ``None`` uses the paper's ratio
    #: of cache to dataset size (4 GB / 33 GB ≈ 12 % of the pages).
    cache_capacity_pages: int | None = None

    disk: DiskParameters = field(default_factory=DiskParameters)

    #: First incremental prefetch region side, as a fraction of the
    #: query side (§5.1: start small near the exit location E).
    incremental_start_fraction: float = 0.55

    #: Growth factor of successive incremental regions.
    incremental_growth: float = 1.25

    #: Largest incremental region side as a fraction of the query side.
    incremental_max_fraction: float = 1.5

    #: Fraction of the current region side each incremental step
    #: advances along the extrapolated axis (overlapping regions re-hit
    #: cached pages at no cost, §5.1).
    incremental_advance_fraction: float = 0.6

    #: Upper bound on incremental steps per target (windows run out far
    #: earlier in practice; this is a safety net).
    incremental_max_steps: int = 24

    def cache_capacity_for(self, index: SpatialIndex) -> int:
        if self.cache_capacity_pages is not None:
            return self.cache_capacity_pages
        return max(256, int(0.12 * index.n_pages))


class _BatchedProbes:
    """Resolve a region iterator's page probes through the batched index API.

    Plan execution consumes one incremental region at a time (budget
    spending decides when to stop), but the regions themselves do not
    depend on probe results -- so we can pull them from the iterator a
    chunk ahead and answer all of the chunk's page lookups in one
    vectorized :meth:`~repro.index.base.SpatialIndex.pages_for_regions`
    pass.  Per-region results are identical to one-at-a-time calls; a
    partially consumed chunk merely wasted some (cheap, vectorized)
    lookahead.
    """

    def __init__(self, index, regions, chunk: int = 8) -> None:
        self._index = index
        self._regions = iter(regions)
        self._chunk = max(1, int(chunk))
        self._buffer: deque = deque()

    def next(self):
        """The next ``(region, page_ids)`` pair, or ``None`` when done."""
        if not self._buffer:
            batch = list(islice(self._regions, self._chunk))
            if not batch:
                return None
            self._buffer.extend(zip(batch, self._index.pages_for_regions(batch)))
        return self._buffer.popleft()


class SimulationEngine:
    """Runs prefetchers against guided query sequences."""

    def __init__(
        self,
        index: SpatialIndex,
        config: SimulationConfig | None = None,
    ) -> None:
        self.index = index
        self.config = config or SimulationConfig()

    # -- incremental prefetch expansion (§5.1) ------------------------------------------

    def _incremental_regions(self, target: PrefetchTarget, side: float):
        """Yield the growing, advancing prefetch regions of one target."""
        if target.regions is not None:
            yield from target.regions
            return
        cfg = self.config
        region_side = side * cfg.incremental_start_fraction
        max_side = side * cfg.incremental_max_fraction
        advanced = 0.0
        direction = target.direction
        has_direction = bool(np.linalg.norm(direction) > 0)
        for _ in range(cfg.incremental_max_steps):
            if has_direction:
                center = target.anchor + direction * (advanced + region_side / 2.0)
            else:
                center = target.anchor
            yield AABB.from_center_extent(center, region_side)
            advanced += region_side * cfg.incremental_advance_fraction
            region_side = min(region_side * cfg.incremental_growth, max_side)

    # -- one sequence ---------------------------------------------------------------------

    def run(self, sequence: QuerySequence, prefetcher: Prefetcher) -> SequenceMetrics:
        """Execute one sequence with one prefetcher, cold caches."""
        cache = PrefetchCache(self.config.cache_capacity_for(self.index))
        disk = DiskModel(self.config.disk)
        prefetcher.begin_sequence()

        metrics = SequenceMetrics()
        for query_index, query in enumerate(sequence.queries):
            result = self.index.query(query.bounds)
            pages = [int(p) for p in result.page_ids]

            # Pages in the prefetch cache are hits; the rest is residual
            # I/O.  Result pages do NOT enter the prefetch cache -- the
            # cache holds prefetched data only ("percentage of data read
            # from the prefetch cache rather than from disk", §3.3).
            hits = [p for p in pages if cache.touch(p)]
            hit_set = set(hits)
            misses = [p for p in pages if p not in cache]
            residual = disk.read_pages(misses)

            # Data-level hit accounting (§3.3): an object is served from
            # the cache when its page was prefetched.
            object_pages = self.index.page_table.page_ids_of_objects(result.object_ids)
            objects_hit = int(sum(1 for p in object_pages if int(p) in hit_set))

            cold = disk.cost_if_cold(pages)
            window = sequence.window_ratio * cold

            prefetcher.observe(
                ObservedQuery(
                    index=query_index,
                    bounds=query.bounds,
                    result_object_ids=result.object_ids,
                )
            )
            prediction_cost = prefetcher.prediction_cost_seconds()
            build_cost = prefetcher.graph_build_cost_seconds()
            budget = window - prediction_cost

            prefetch_pages = 0
            prefetch_seconds = 0.0
            gap_pages_used = 0

            # Prediction I/O first (SCOUT-OPT gap traversal, §6.3).
            for page in prefetcher.gap_io_pages():
                if budget <= 0:
                    break
                gap_pages_used += 1
                if page in cache:
                    continue
                cost = disk.read_pages([page])
                budget -= cost
                prefetch_seconds += cost
                cache.insert(page)

            # Execute the plan within the remaining window.
            if budget > 0:
                used = self._execute_plan(prefetcher.plan(), query, cache, disk, budget)
                prefetch_pages += used[0]
                prefetch_seconds += used[1]

            n_candidates = getattr(prefetcher, "n_candidates", 0)
            metrics.records.append(
                QueryRecord(
                    index=query_index,
                    pages_needed=len(pages),
                    pages_hit=len(hits),
                    objects_needed=result.n_objects,
                    objects_hit=objects_hit,
                    residual_seconds=residual,
                    cold_seconds=cold,
                    window_seconds=window,
                    prediction_seconds=prediction_cost,
                    graph_build_seconds=build_cost,
                    prefetch_pages=prefetch_pages,
                    prefetch_seconds=prefetch_seconds,
                    gap_io_pages=gap_pages_used,
                    n_result_objects=result.n_objects,
                    n_candidates=n_candidates,
                )
            )
        return metrics

    def _execute_plan(
        self,
        targets: list[PrefetchTarget],
        query,
        cache: PrefetchCache,
        disk: DiskModel,
        budget: float,
    ) -> tuple[int, float]:
        """Spend the window on the plan; returns (pages read, seconds).

        The budget is split share-proportionally across targets and spent
        in passes: each pass grants every still-active target its share
        of the budget remaining at the start of the pass, plus whatever
        earlier targets in the same pass left unspent.  A target whose
        region iterator runs dry drops out, and the next pass re-grants
        the leftover to the targets that can still spend -- so one dead
        target cannot strand window time that live targets could use
        (§5.1 prefetches until the window closes whenever predicted data
        remains).

        Each incremental region's missing pages are read as one batch so
        contiguous page runs earn the sequential discount, exactly like
        residual query I/O does; the batch that crosses the budget line
        is trimmed so the window is overshot by at most one page read.

        Region page probes are resolved through the index's batched API
        a chunk at a time (:class:`_BatchedProbes`); the spending loop
        below is unchanged and sees identical per-region page sets.
        """
        if not targets:
            return 0, 0.0
        side = float(np.cbrt(max(query.bounds.volume, 1e-30)))
        states = [
            {
                "share": t.share,
                "probes": _BatchedProbes(self.index, self._incremental_regions(t, side)),
                "done": False,
            }
            for t in targets
        ]

        pages_read = 0
        seconds = 0.0
        remaining = budget
        while remaining > 1e-12:
            active = [s for s in states if not s["done"]]
            if not active:
                break
            total_share = sum(s["share"] for s in active) or 1.0
            pass_budget = remaining
            advanced = False
            carry = 0.0
            for state in active:
                if remaining <= 0:
                    break
                allotment = pass_budget * (state["share"] / total_share) + carry
                spent = 0.0
                while spent < allotment and remaining > 0:
                    probe = state["probes"].next()
                    if probe is None:
                        state["done"] = True
                        break
                    advanced = True
                    _, probe_pages = probe
                    batch = []
                    for page in probe_pages:
                        page = int(page)
                        if page in cache:
                            continue
                        batch.append(page)
                    if not batch:
                        continue
                    batch = disk.trim_to_budget(batch, remaining)
                    cost = disk.read_pages(batch)
                    spent += cost
                    remaining -= cost
                    seconds += cost
                    pages_read += len(batch)
                    cache.insert_many(batch)
                carry = max(0.0, allotment - spent)
            if not advanced:
                break
        return pages_read, seconds
