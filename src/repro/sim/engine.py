"""The execution simulator (paper Figure 2).

For every query of a guided sequence the engine:

1. serves the query: needed pages found in the prefetch cache are hits,
   the rest is *residual I/O* read from the simulated disk;
2. opens the prefetch window: ``window_ratio x`` the query's cold read
   time (the paper's ``r = u/d`` analysis-time model, §7.2);
3. lets the prefetcher observe the query (bounds + result content) and
   charges its simulated prediction cost against the window;
4. executes the prefetcher's plan incrementally (§5.1): growing regions
   advance along each target's axis, and every page read charges disk
   time against the remaining window -- prefetching stops mid-plan the
   moment the user "issues the next query".

All I/O is page-granular and deterministic; see DESIGN.md §2 for the
substitution rationale.

The per-query loop lives in :class:`QuerySession`, a resumable state
machine that advances one explicit phase at a time (serve → window →
observe/predict → execute-plan).  :meth:`SimulationEngine.run` drives a
single session to completion over a private cache and disk -- the
classic one-client experiment -- while the serving layer
(:mod:`repro.sim.serve`, DESIGN.md §6) interleaves many sessions over
one shared cache and disk to model concurrent users.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.geometry.aabb import AABB
from repro.index.base import SpatialIndex
from repro.sim.metrics import QueryRecord, SequenceMetrics
from repro.storage.cache import ArrayCache, PrefetchCache, make_cache
from repro.storage.disk import DiskModel, DiskParameters
from repro.storage.faults import CircuitBreaker, FaultPlan, FaultyDiskModel, ReadFailure
from repro.storage.sharded import ShardedCache, ShardSpec, make_sharded_cache
from repro.storage.tiered import StorageSpec, TieredStore, make_storage
from repro.workload.sequence import QuerySequence

__all__ = ["QuerySession", "SimulationConfig", "SimulationEngine", "fault_surface"]


def fault_surface(disk) -> FaultyDiskModel | None:
    """The disk's fault plane, seen through any tier wrapper.

    The engine needs the :class:`FaultyDiskModel` recovery surface
    (``verify_delivery`` / ``recover_read``) whether the session's disk
    is the fault model itself or a :class:`TieredStore` wrapping one;
    returns ``None`` for a bare, never-failing disk.
    """
    if isinstance(disk, FaultyDiskModel):
        return disk
    if isinstance(disk, TieredStore):
        return disk.fault_disk
    return None


class _SharedProbeStream:
    """Memoized (region, page_ids) list over one target's region iterator.

    Plan-sharing groups (see :mod:`repro.sim.serve`) execute the *same*
    plan against different per-client budgets and cache states: each
    member consumes a prefix of the target's probe sequence, the prefix
    length depending on its own spending.  The stream resolves regions
    through the batched index API a chunk at a time -- the exact
    :class:`_BatchedProbes` schedule -- and memoizes, so the group pays
    for each index lookup once while every member sees the identical
    per-region page sets it would have computed alone (probe resolution
    is pure: region in, pages out).
    """

    def __init__(self, index, regions, chunk: int = 8) -> None:
        self._index = index
        self._regions = iter(regions)
        self._chunk = max(1, int(chunk))
        self._resolved: list = []
        self._exhausted = False

    def get(self, position: int):
        """The (region, page_ids) pair at ``position``, or ``None`` past the end."""
        while not self._exhausted and position >= len(self._resolved):
            batch = list(islice(self._regions, self._chunk))
            if not batch:
                self._exhausted = True
                break
            self._resolved.extend(zip(batch, self._index.pages_for_regions(batch)))
        if position < len(self._resolved):
            return self._resolved[position]
        return None

    def view(self) -> "_ProbeCursor":
        """An independent cursor over the shared stream."""
        return _ProbeCursor(self)


class _ProbeCursor:
    """One consumer's position in a :class:`_SharedProbeStream`."""

    def __init__(self, stream: _SharedProbeStream) -> None:
        self._stream = stream
        self._position = 0

    def next(self):
        item = self._stream.get(self._position)
        if item is not None:
            self._position += 1
        return item


@dataclass
class _QueryBundle:
    """The pure (cache- and disk-independent) work of one query.

    Captured by a plan-sharing group's leader and replayed by its
    followers (:meth:`QuerySession.step_query_capture` /
    :meth:`QuerySession.step_query_replay`).  Everything here is a pure
    function of the shared sequence and the (bitwise-identical)
    prefetcher state, so replaying it is exactly the computation the
    follower would have done itself; all cache touches, disk reads and
    budget spending stay per-client.
    """

    cursor: int
    result: object = None
    pages: object = None
    object_pages: object = None
    cold: float = 0.0
    prediction_cost: float = 0.0
    build_cost: float = 0.0
    gap_pages: list = field(default_factory=list)
    targets: object = None
    streams: object = None
    n_candidates: int = 0


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs (defaults follow the paper's setup, scaled)."""

    #: Prefetch cache capacity in pages; ``None`` uses the paper's ratio
    #: of cache to dataset size (4 GB / 33 GB ≈ 12 % of the pages).
    cache_capacity_pages: int | None = None

    disk: DiskParameters = field(default_factory=DiskParameters)

    #: First incremental prefetch region side, as a fraction of the
    #: query side (§5.1: start small near the exit location E).
    incremental_start_fraction: float = 0.55

    #: Growth factor of successive incremental regions.
    incremental_growth: float = 1.25

    #: Largest incremental region side as a fraction of the query side.
    incremental_max_fraction: float = 1.5

    #: Fraction of the current region side each incremental step
    #: advances along the extrapolated axis (overlapping regions re-hit
    #: cached pages at no cost, §5.1).
    incremental_advance_fraction: float = 0.6

    #: Upper bound on incremental steps per target (windows run out far
    #: earlier in practice; this is a safety net).
    incremental_max_steps: int = 24

    #: Fault-injection plan compiled into every disk this config builds
    #: (``None`` keeps the bare, never-failing model).  A present plan
    #: with all-zero rates exercises the fault layer's code path without
    #: injecting anything -- bit-identical metrics, measurable overhead.
    faults: FaultPlan | None = None

    #: Tiered-storage spec wrapped around every disk this config builds
    #: (``None`` keeps the bare model).  A present spec with tiering
    #: disabled (no tier pages, ``miss_path="none"``) is a pure
    #: pass-through -- bit-identical metrics, like an all-zero fault
    #: plan (DESIGN.md §9).
    storage: StorageSpec | None = None

    #: Sharded-cache spec (``None`` keeps the single shared cache).  A
    #: present spec with one shard compiles to a pass-through wrapper
    #: that delegates op-by-op to the unsharded backend -- bit-identical
    #: metrics, measurable routing overhead (DESIGN.md §10).
    shards: ShardSpec | None = None

    def cache_capacity_for(self, index: SpatialIndex) -> int:
        if self.cache_capacity_pages is not None:
            return self.cache_capacity_pages
        return max(256, int(0.12 * index.n_pages))

    def build_disk(self) -> DiskModel | FaultyDiskModel | TieredStore:
        """The disk this config prescribes: bare, fault-wrapped, tiered."""
        if self.faults is None:
            disk: DiskModel | FaultyDiskModel = DiskModel(self.disk)
        else:
            disk = FaultyDiskModel(self.disk, self.faults)
        if self.storage is None:
            return disk
        return make_storage(disk, self.storage)

    def build_cache(self, index: SpatialIndex, backend: str = "dict"):
        """The prefetch cache this config prescribes: plain or sharded."""
        capacity = self.cache_capacity_for(index)
        if self.shards is None:
            return make_cache(backend, capacity)
        return make_sharded_cache(self.shards, backend, capacity, index=index)


class _BatchedProbes:
    """Resolve a region iterator's page probes through the batched index API.

    Plan execution consumes one incremental region at a time (budget
    spending decides when to stop), but the regions themselves do not
    depend on probe results -- so we can pull them from the iterator a
    chunk ahead and answer all of the chunk's page lookups in one
    vectorized :meth:`~repro.index.base.SpatialIndex.pages_for_regions`
    pass.  Per-region results are identical to one-at-a-time calls; a
    partially consumed chunk merely wasted some (cheap, vectorized)
    lookahead.
    """

    def __init__(self, index, regions, chunk: int = 8) -> None:
        self._index = index
        self._regions = iter(regions)
        self._chunk = max(1, int(chunk))
        self._buffer: deque = deque()

    def next(self):
        """The next ``(region, page_ids)`` pair, or ``None`` when done."""
        if not self._buffer:
            batch = list(islice(self._regions, self._chunk))
            if not batch:
                return None
            self._buffer.extend(zip(batch, self._index.pages_for_regions(batch)))
        return self._buffer.popleft()


class SimulationEngine:
    """Runs prefetchers against guided query sequences."""

    def __init__(
        self,
        index: SpatialIndex,
        config: SimulationConfig | None = None,
    ) -> None:
        self.index = index
        self.config = config or SimulationConfig()

    # -- incremental prefetch expansion (§5.1) ------------------------------------------

    def _incremental_regions(self, target: PrefetchTarget, side: float):
        """Yield the growing, advancing prefetch regions of one target."""
        if target.regions is not None:
            yield from target.regions
            return
        cfg = self.config
        region_side = side * cfg.incremental_start_fraction
        max_side = side * cfg.incremental_max_fraction
        advanced = 0.0
        direction = target.direction
        has_direction = bool(np.linalg.norm(direction) > 0)
        for _ in range(cfg.incremental_max_steps):
            if has_direction:
                center = target.anchor + direction * (advanced + region_side / 2.0)
            else:
                center = target.anchor
            yield AABB.from_center_extent(center, region_side)
            advanced += region_side * cfg.incremental_advance_fraction
            region_side = min(region_side * cfg.incremental_growth, max_side)

    # -- one sequence ---------------------------------------------------------------------

    def run(self, sequence: QuerySequence, prefetcher: Prefetcher) -> SequenceMetrics:
        """Execute one sequence with one prefetcher, cold caches.

        Thin wrapper driving one :class:`QuerySession` to completion over
        a private cache and disk; metrics are bit-identical to the
        historical monolithic loop.
        """
        return QuerySession(self, sequence, prefetcher).run()

    def _execute_plan(
        self,
        targets: list[PrefetchTarget],
        query,
        cache: PrefetchCache,
        disk: DiskModel,
        budget: float,
        owner: int | None = None,
        probes: list | None = None,
    ) -> tuple[int, float]:
        """Spend the window on the plan; returns (pages read, seconds).

        ``owner`` tags inserted pages with the prefetching client for
        shared-cache accounting (see :mod:`repro.sim.serve`); it never
        affects spending or eviction decisions.

        The budget is split share-proportionally across targets and spent
        in passes: each pass grants every still-active target its share
        of the budget remaining at the start of the pass, plus whatever
        earlier targets in the same pass left unspent.  A target whose
        region iterator runs dry drops out, and the next pass re-grants
        the leftover to the targets that can still spend -- so one dead
        target cannot strand window time that live targets could use
        (§5.1 prefetches until the window closes whenever predicted data
        remains).

        Each incremental region's missing pages are read as one batch so
        contiguous page runs earn the sequential discount, exactly like
        residual query I/O does; the batch that crosses the budget line
        is trimmed so the window is overshot by at most one page read.

        Region page probes are resolved through the index's batched API
        a chunk at a time (:class:`_BatchedProbes`); the spending loop
        below is unchanged and sees identical per-region page sets.
        ``probes`` overrides the per-target probe sources (one object
        with a ``next()`` method per target) so plan-sharing groups can
        feed every member the same memoized :class:`_SharedProbeStream`.
        """
        if not targets:
            return 0, 0.0
        # Fault-wrapped disks verify delivered payloads before the cache
        # insert (read-repair); a propagating ReadFailure is enriched
        # with the partial work already done so the caller can account
        # the window's actual spending.
        faulty = fault_surface(disk) is not None
        page_table = self.index.page_table if faulty else None
        if probes is None:
            side = float(np.cbrt(max(query.bounds.volume, 1e-30)))
            probes = [
                _BatchedProbes(self.index, self._incremental_regions(t, side))
                for t in targets
            ]
        states = [
            {"share": t.share, "probes": p, "done": False}
            for t, p in zip(targets, probes)
        ]

        pages_read = 0
        seconds = 0.0
        remaining = budget
        while remaining > 1e-12:
            active = [s for s in states if not s["done"]]
            if not active:
                break
            total_share = sum(s["share"] for s in active) or 1.0
            pass_budget = remaining
            advanced = False
            carry = 0.0
            for state in active:
                if remaining <= 0:
                    break
                allotment = pass_budget * (state["share"] / total_share) + carry
                spent = 0.0
                while spent < allotment and remaining > 0:
                    probe = state["probes"].next()
                    if probe is None:
                        state["done"] = True
                        break
                    advanced = True
                    _, probe_pages = probe
                    batch = cache.missing_many(probe_pages)
                    if not batch:
                        continue
                    batch = disk.trim_to_budget(batch, remaining)
                    try:
                        cost = disk.read_pages(batch)
                    except ReadFailure as failure:
                        failure.prior_pages = pages_read
                        failure.prior_seconds = seconds
                        raise
                    if faulty:
                        cost += disk.verify_delivery(batch, page_table)
                    spent += cost
                    remaining -= cost
                    seconds += cost
                    pages_read += len(batch)
                    cache.insert_many(batch, owner)
                carry = max(0.0, allotment - spent)
            if not advanced:
                break
        return pages_read, seconds


class QuerySession:
    """One client's sequence as a resumable state machine.

    The monolithic per-query loop of the historical ``run`` method,
    split into the four explicit phases of the paper's Figure-2
    timeline so sessions can be *interleaved*:

    ``serve``
        execute the query; cached pages are hits, the rest is residual
        I/O read from the (possibly shared) disk;
    ``window``
        open the prefetch window (``window_ratio x`` the cold read time);
    ``predict``
        let the prefetcher observe the query and charge its prediction
        cost against the window;
    ``prefetch``
        spend the remaining window on gap I/O and the incremental plan,
        then append the query's :class:`QueryRecord` and rewind to
        ``serve`` for the next query.

    Phase order and every cache/disk operation match the historical
    loop exactly, so a session run to completion over a private cache
    and disk is bit-identical to it -- the property the golden-metrics
    suite pins.  :class:`~repro.sim.serve.ServingSimulator` instead
    passes many sessions one *shared* cache and disk; ``client_id``
    tags that session's prefetched pages so the shared cache can
    attribute hits across clients (DESIGN.md §6).
    """

    #: Phase cycle of one query, in execution order.
    PHASES = ("serve", "window", "predict", "prefetch")

    def __init__(
        self,
        engine: SimulationEngine,
        sequence: QuerySequence,
        prefetcher: Prefetcher,
        *,
        cache: PrefetchCache | ArrayCache | None = None,
        disk: DiskModel | None = None,
        client_id: int | None = None,
    ) -> None:
        self.engine = engine
        self.sequence = sequence
        self.prefetcher = prefetcher
        config = engine.config
        self.cache = config.build_cache(engine.index) if cache is None else cache
        self.disk = config.build_disk() if disk is None else disk
        self.client_id = client_id
        self.metrics = SequenceMetrics()
        self.phase = "serve"
        self._cursor = 0
        self._ctx: dict = {}
        # Lockstep serving hooks: a pre-resolved index result for the
        # current query (from a batched query_many pass), and the
        # plan-sharing bundle being captured or replayed.
        self._injected_result = None
        self._bundle_in: _QueryBundle | None = None
        self._bundle_out: _QueryBundle | None = None
        # Shared-cache accounting: this session's page touches, and the
        # contention-attributed subsets (see DESIGN.md §6).
        self.shared_hits = 0
        self.shared_misses = 0
        self.cross_client_hits = 0
        self.evicted_misses = 0
        # Fault-plane accounting (DESIGN.md §7): serve-path pages whose
        # read exhausted its retries (they complete via clean recovery
        # reads, and together with shared_misses partition the cache's
        # miss count), and queries served degraded (demand paging only)
        # behind an open circuit breaker.
        self.failed_reads = 0
        self.degraded_ticks = 0
        # Tiered-storage accounting (DESIGN.md §9): this session's share
        # of the store's per-layer counters, attributed by snapshotting
        # the store around the session's own (synchronous) disk phases.
        self.tier_hits = 0
        self.miss_path_hits = 0
        self.tier_fills = 0
        self.tier_stall_seconds = 0.0
        # Sharded-cache accounting (DESIGN.md §10): this session's share
        # of cross-shard hop time, attributed by snapshotting the shared
        # cache's hop clock around the session's own demand touches.
        self.shard_hop_seconds = 0.0
        self._shard_cache = self.cache if isinstance(self.cache, ShardedCache) else None
        self._fault_disk = fault_surface(self.disk)
        self._tier_store: TieredStore | None = None
        if isinstance(self.disk, TieredStore):
            self.disk.bind_page_table(engine.index.page_table)
            if self.disk.tiering_active:
                self._tier_store = self.disk
        self._breaker: CircuitBreaker | None = None
        if self._fault_disk is not None and self._fault_disk.plan.breaker:
            plan = self._fault_disk.plan
            self._breaker = CircuitBreaker(plan.breaker_threshold, plan.breaker_cooldown)
        prefetcher.begin_sequence()

    @property
    def breaker_opens(self) -> int:
        """How many times this client's circuit breaker tripped."""
        return 0 if self._breaker is None else self._breaker.opens

    # -- tiered-storage attribution ---------------------------------------------------

    def _tier_mark(self):
        """Snapshot the shared store's counters before this session's I/O.

        Disk operations within one phase are synchronous -- no other
        session runs between the mark and the matching collect under
        either scheduler -- so the counter delta is exactly this
        session's share of the store's per-layer activity.
        """
        store = self._tier_store
        return None if store is None else store.tier_stats.snapshot()

    def _tier_collect(self, mark) -> None:
        if mark is None:
            return
        now = self._tier_store.tier_stats
        self.tier_hits += now.tier_hits - mark.tier_hits
        self.miss_path_hits += now.mechanism_hits - mark.mechanism_hits
        self.tier_fills += now.backing_pages - mark.backing_pages
        self.tier_stall_seconds += now.stall_seconds - mark.stall_seconds

    # -- sharded-cache attribution ----------------------------------------------------

    def _shard_mark(self) -> float:
        """Snapshot the sharded cache's hop clock before a demand touch."""
        cache = self._shard_cache
        return 0.0 if cache is None else cache.hop_seconds

    def _shard_collect(self, mark: float) -> float:
        """This session's hop-seconds delta since ``mark`` (also accrued)."""
        cache = self._shard_cache
        if cache is None:
            return 0.0
        delta = cache.hop_seconds - mark
        self.shard_hop_seconds += delta
        return delta

    # -- state ----------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every query has fully completed (no phase in flight)."""
        return self._cursor >= len(self.sequence.queries)

    @property
    def query_index(self) -> int:
        """Index of the query currently (or next) being processed."""
        return self._cursor

    def renew(self, prefetcher: Prefetcher) -> "QuerySession":
        """A fresh session on the same sequence, cache, disk and client id.

        The serving daemon's session-reuse hook (DESIGN.md §8): a
        connection whose session is exhausted wraps around to a new one
        with fresh prefetcher and metrics state, while the shared cache
        and disk keep their contents -- exactly what a long-lived client
        re-navigating its region looks like to the serving plane.
        """
        return QuerySession(
            self.engine,
            self.sequence,
            prefetcher,
            cache=self.cache,
            disk=self.disk,
            client_id=self.client_id,
        )

    # -- stepping -------------------------------------------------------------------

    def step(self) -> str | None:
        """Run the current phase and advance; returns the phase run.

        Returns ``None`` when the session is already done.  Phases cycle
        ``serve -> window -> predict -> prefetch`` per query; the
        ``prefetch`` phase appends the query's record and rewinds to
        ``serve`` for the next query.
        """
        if self.done:
            return None
        phase = self.phase
        getattr(self, f"_phase_{phase}")()
        at = self.PHASES.index(phase)
        self.phase = self.PHASES[(at + 1) % len(self.PHASES)]
        return phase

    def step_query(self) -> QueryRecord | None:
        """Advance through every phase of one query; its record, or None.

        Resumes mid-query: if a previous caller stopped between phases,
        only the remaining phases run.
        """
        if self.done:
            return None
        while self.step() != "prefetch":
            pass
        return self.metrics.records[-1]

    def run(self) -> SequenceMetrics:
        """Run the session to completion (the single-client fast path)."""
        while not self.done:
            self.step_query()
        return self.metrics

    # -- lockstep serving hooks -------------------------------------------------------

    def prime_result(self, result) -> None:
        """Provide the current query's index result ahead of ``serve``.

        The lockstep scheduler resolves every active session's query in
        one batched ``query_many`` pass at tick start; ``_phase_serve``
        consumes the injected result instead of re-querying.  The
        batched API is element-wise identical to per-query calls, so
        this changes where the lookup happens, never what it returns.
        """
        self._injected_result = result

    def step_query_capture(self) -> "_QueryBundle | None":
        """Advance one query, capturing its pure work for group replay.

        Called on a plan-sharing group's *leader*; the returned bundle
        holds everything about this query that does not depend on cache
        or disk state (index result, cold cost, prediction costs, plan
        targets with shared probe streams), for the group's followers to
        replay via :meth:`step_query_replay`.
        """
        if self.done:
            return None
        bundle = _QueryBundle(cursor=self._cursor)
        self._bundle_out = bundle
        try:
            self.step_query()
        finally:
            self._bundle_out = None
        return bundle

    def step_query_replay(self, bundle: "_QueryBundle") -> QueryRecord | None:
        """Advance one query, replaying a leader's captured pure work.

        Only valid when this session is bitwise-identical to the
        leader in its pure computations (same sequence object, same
        start tick, same prefetcher kind -- the scheduler's grouping
        invariant): the observe/plan phases are skipped entirely, so
        this session's prefetcher state goes stale and must never be
        consulted again.  Cache touches, disk reads and budget spending
        all still happen here, per-client, in scheduler order.
        """
        if self.done:
            return None
        if bundle.cursor != self._cursor:
            raise ValueError(
                f"bundle for query {bundle.cursor} replayed at cursor {self._cursor}"
            )
        self._bundle_in = bundle
        try:
            return self.step_query()
        finally:
            self._bundle_in = None

    # -- the four phases --------------------------------------------------------------

    def _phase_serve(self) -> None:
        query = self.sequence.queries[self._cursor]
        bundle_in, bundle_out = self._bundle_in, self._bundle_out
        if bundle_in is not None:
            result = bundle_in.result
            pages = bundle_in.pages
            object_pages = bundle_in.object_pages
        else:
            result = self._injected_result
            self._injected_result = None
            if result is None:
                result = self.engine.index.query(query.bounds)
            pages = np.asarray(result.page_ids, dtype=np.int64).ravel()
            object_pages = np.asarray(
                self.engine.index.page_table.page_ids_of_objects(result.object_ids),
                dtype=np.int64,
            ).ravel()
            if bundle_out is not None:
                bundle_out.result = result
                bundle_out.pages = pages
                bundle_out.object_pages = object_pages

        # Pages in the prefetch cache are hits; the rest is residual
        # I/O.  Result pages do NOT enter the prefetch cache -- the
        # cache holds prefetched data only ("percentage of data read
        # from the prefetch cache rather than from disk", §3.3).
        # touch never inserts, so membership is invariant across the
        # batch and the hit mask's complement is exactly the miss set.
        cache = self.cache
        shard_mark = self._shard_mark()
        hit_mask = cache.touch_many(pages)
        hop_seconds = self._shard_collect(shard_mark)
        hit_pages = pages[hit_mask]
        miss_pages = pages[~hit_mask]
        fault_disk = self._fault_disk
        miss_failed = False
        tier_mark = self._tier_mark()
        if fault_disk is None:
            residual = self.disk.read_pages(miss_pages)
        else:
            try:
                residual = self.disk.read_pages(miss_pages)
            except ReadFailure as failure:
                # The user is still owed the data: recover with a clean
                # demand re-read, charging both the doomed attempts and
                # the recovery read to residual time.
                residual = failure.seconds + fault_disk.recover_read(miss_pages)
                miss_failed = True
        self._tier_collect(tier_mark)
        if hop_seconds:
            # Cross-shard fan-out on the demand path is user-visible
            # latency: charge it to residual time like a tier stall.
            residual += hop_seconds

        n_hits = int(hit_pages.size)
        self.shared_hits += n_hits
        if miss_failed:
            # These pages complete via recovery, but for accounting they
            # are failed reads, not ordinary misses: hits + misses +
            # failed_reads partitions the cache's touch counts.
            self.failed_reads += int(miss_pages.size)
        else:
            self.shared_misses += int(miss_pages.size)
        if self.client_id is not None:
            owners = cache.owners_many(hit_pages)
            self.cross_client_hits += int(np.count_nonzero(owners != self.client_id))
            self.evicted_misses += int(np.count_nonzero(cache.evicted_many(miss_pages)))

        # Data-level hit accounting (§3.3): an object is served from
        # the cache when its page was prefetched.  Every object page is
        # in the covering set ``pages``, so a dense hit table over that
        # range replaces np.isin's sort path exactly.
        if n_hits == 0 or object_pages.size == 0:
            objects_hit = 0
        else:
            lo = int(pages.min())
            hit_table = np.zeros(int(pages.max()) - lo + 1, dtype=bool)
            hit_table[hit_pages - lo] = True
            objects_hit = int(np.count_nonzero(hit_table[object_pages - lo]))

        self._ctx = {
            "query": query,
            "result": result,
            "pages": pages,
            "n_hits": n_hits,
            "residual": residual,
            "objects_hit": objects_hit,
        }

    def _phase_window(self) -> None:
        ctx = self._ctx
        bundle_in, bundle_out = self._bundle_in, self._bundle_out
        if bundle_in is not None:
            ctx["cold"] = bundle_in.cold
        else:
            ctx["cold"] = self.disk.cost_if_cold(ctx["pages"])
            if bundle_out is not None:
                bundle_out.cold = ctx["cold"]
        ctx["window"] = self.sequence.window_ratio * ctx["cold"]

    def _phase_predict(self) -> None:
        ctx = self._ctx
        breaker = self._breaker
        if breaker is not None and not breaker.allow_prefetch():
            # Open breaker: this client is degraded to demand paging.
            # The prefetcher is bypassed entirely -- no observation, no
            # prediction cost, no plan -- so a misbehaving prefetch path
            # cannot keep hurting the client it already failed.
            ctx["degraded"] = True
            self.degraded_ticks += 1
            ctx["prediction_cost"] = 0.0
            ctx["build_cost"] = 0.0
            ctx["budget"] = 0.0
            return
        bundle_in, bundle_out = self._bundle_in, self._bundle_out
        if bundle_in is not None:
            # Replay: the leader's prefetcher state is bitwise-identical
            # to what this session's would have been, so its costs are
            # this session's costs; observe() is skipped outright.
            ctx["prediction_cost"] = bundle_in.prediction_cost
            ctx["build_cost"] = bundle_in.build_cost
        else:
            self.prefetcher.observe(
                ObservedQuery(
                    index=self._cursor,
                    bounds=ctx["query"].bounds,
                    result_object_ids=ctx["result"].object_ids,
                )
            )
            ctx["prediction_cost"] = self.prefetcher.prediction_cost_seconds()
            ctx["build_cost"] = self.prefetcher.graph_build_cost_seconds()
            if bundle_out is not None:
                bundle_out.prediction_cost = ctx["prediction_cost"]
                bundle_out.build_cost = ctx["build_cost"]
        ctx["budget"] = ctx["window"] - ctx["prediction_cost"]

    def _spend_window(self, ctx: dict, budget: float) -> tuple[int, float, int]:
        """Gap I/O plus plan execution; (plan pages, seconds, gap pages).

        The historical body of the prefetch phase.  A propagating
        :class:`ReadFailure` leaves with its ``prior_*`` fields covering
        *everything* this window spent before the doomed batch -- gap
        reads included -- so the caller can account the query from the
        exception alone.
        """
        cache, disk = self.cache, self.disk
        bundle_in, bundle_out = self._bundle_in, self._bundle_out
        fault_disk = self._fault_disk
        prefetch_pages = 0
        prefetch_seconds = 0.0
        gap_pages_used = 0
        try:
            # Prediction I/O first (SCOUT-OPT gap traversal, §6.3).  Replay
            # iterates the leader's captured pull sequence; the scheduler
            # only shares plans for gap-free prefetchers, so leader and
            # follower always pull the same (empty) prefix.
            gap_source = (
                bundle_in.gap_pages if bundle_in is not None else self.prefetcher.gap_io_pages()
            )
            for page in gap_source:
                if budget <= 0:
                    break
                gap_pages_used += 1
                if bundle_out is not None:
                    bundle_out.gap_pages.append(page)
                if page in cache:
                    continue
                cost = disk.read_pages([page])
                if fault_disk is not None:
                    cost += fault_disk.verify_delivery([page], self.engine.index.page_table)
                budget -= cost
                prefetch_seconds += cost
                cache.insert(page, self.client_id)

            # Execute the plan within the remaining window.  Group members
            # enter with identical budgets (pure inputs), so the leader's
            # planned/not-planned decision is every member's decision; each
            # member still spends its own budget against its own view of
            # the shared cache, consuming its own prefix of the shared
            # probe streams.
            if budget > 0:
                if bundle_in is not None:
                    targets = bundle_in.targets
                    probes = (
                        [s.view() for s in bundle_in.streams]
                        if bundle_in.streams is not None
                        else None
                    )
                else:
                    targets = self.prefetcher.plan()
                    probes = None
                    if bundle_out is not None:
                        bundle_out.targets = targets
                        if targets:
                            side = float(np.cbrt(max(ctx["query"].bounds.volume, 1e-30)))
                            bundle_out.streams = [
                                _SharedProbeStream(
                                    self.engine.index,
                                    self.engine._incremental_regions(t, side),
                                )
                                for t in targets
                            ]
                            probes = [s.view() for s in bundle_out.streams]
                used = self.engine._execute_plan(
                    targets, ctx["query"], cache, disk, budget, self.client_id, probes=probes
                )
                prefetch_pages += used[0]
                prefetch_seconds += used[1]
        except ReadFailure as failure:
            failure.prior_pages += prefetch_pages
            failure.prior_seconds += prefetch_seconds
            failure.gap_pages_used = gap_pages_used
            raise
        return prefetch_pages, prefetch_seconds, gap_pages_used

    def _phase_prefetch(self) -> None:
        ctx = self._ctx
        budget = ctx["budget"]
        bundle_in, bundle_out = self._bundle_in, self._bundle_out

        prefetch_pages = 0
        prefetch_seconds = 0.0
        gap_pages_used = 0
        degraded = bool(ctx.get("degraded"))

        if not degraded:
            tier_mark = self._tier_mark()
            try:
                prefetch_pages, prefetch_seconds, gap_pages_used = self._spend_window(
                    ctx, budget
                )
                prefetch_failed = False
            except ReadFailure as failure:
                # The failing batch never reached the cache; account the
                # partial work done before it (enriched prior_* fields)
                # plus the doomed attempts' charged time, and abandon
                # the rest of this window.
                prefetch_pages = failure.prior_pages
                prefetch_seconds = failure.prior_seconds + failure.seconds
                gap_pages_used = failure.gap_pages_used
                prefetch_failed = True
            self._tier_collect(tier_mark)
            if self._breaker is not None:
                if prefetch_failed:
                    self._breaker.record_failure()
                else:
                    self._breaker.record_success()

        if degraded:
            n_candidates = 0
        elif bundle_in is not None:
            n_candidates = bundle_in.n_candidates
        else:
            n_candidates = getattr(self.prefetcher, "n_candidates", 0)
            if bundle_out is not None:
                bundle_out.n_candidates = n_candidates

        result = ctx["result"]
        self.metrics.records.append(
            QueryRecord(
                index=self._cursor,
                pages_needed=len(ctx["pages"]),
                pages_hit=ctx["n_hits"],
                objects_needed=result.n_objects,
                objects_hit=ctx["objects_hit"],
                residual_seconds=ctx["residual"],
                cold_seconds=ctx["cold"],
                window_seconds=ctx["window"],
                prediction_seconds=ctx["prediction_cost"],
                graph_build_seconds=ctx["build_cost"],
                prefetch_pages=prefetch_pages,
                prefetch_seconds=prefetch_seconds,
                gap_io_pages=gap_pages_used,
                n_result_objects=result.n_objects,
                n_candidates=n_candidates,
            )
        )
        self._ctx = {}
        self._cursor += 1
