"""The single-cell experiment primitive.

One *experiment cell* is (dataset, index, workload spec, prefetcher);
its result aggregates the per-sequence metrics the paper plots.
:func:`run_experiment` executes exactly one cell on already-built
objects -- it is the primitive that :mod:`repro.sim.runner` schedules
(serially or across a process pool) and that the figure benchmarks in
``benchmarks/`` call directly when they already hold a dataset fixture.
Cells never share engine or cache state, which is what makes them safe
to fan out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Prefetcher
from repro.baselines.simple import OraclePrefetcher
from repro.index.base import SpatialIndex
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.metrics import AggregateMetrics, SequenceMetrics, aggregate
from repro.workload.sequence import QuerySequence

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experiment cell."""

    prefetcher_name: str
    metrics: AggregateMetrics
    sequences: list[SequenceMetrics]

    @property
    def cache_hit_rate(self) -> float:
        return self.metrics.cache_hit_rate

    @property
    def speedup(self) -> float:
        return self.metrics.speedup


def run_experiment(
    index: SpatialIndex,
    sequences: list[QuerySequence],
    prefetcher: Prefetcher,
    config: SimulationConfig | None = None,
) -> ExperimentResult:
    """Run one prefetcher over a batch of sequences and aggregate.

    Caches are cold per sequence, as in §7.1 ("After executing each
    sequence of queries, we clear the prefetch cache, the operating
    system cache and the disk buffers").  Pure with respect to its
    arguments aside from the prefetcher's own per-sequence state (reset
    via ``begin_sequence``), so repeated calls with equal inputs yield
    bit-identical metrics -- the property the parallel runner's
    serial-vs-parallel determinism guarantee rests on.
    """
    if not sequences:
        raise ValueError("run_experiment() needs at least one sequence")
    engine = SimulationEngine(index, config)
    per_sequence = []
    for sequence in sequences:
        if isinstance(prefetcher, OraclePrefetcher):
            prefetcher.bind_sequence(sequence)
        per_sequence.append(engine.run(sequence, prefetcher))
    return ExperimentResult(
        prefetcher_name=prefetcher.name,
        metrics=aggregate(per_sequence),
        sequences=per_sequence,
    )
