"""Experiment helpers: run prefetchers over sequence batches.

One *experiment cell* is (dataset, index, workload spec, prefetcher);
its result aggregates the per-sequence metrics the paper plots.  The
figure-level benchmarks in ``benchmarks/`` are thin loops over these
helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Prefetcher
from repro.baselines.simple import OraclePrefetcher
from repro.index.base import SpatialIndex
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.metrics import AggregateMetrics, SequenceMetrics, aggregate
from repro.workload.sequence import QuerySequence

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experiment cell."""

    prefetcher_name: str
    metrics: AggregateMetrics
    sequences: list[SequenceMetrics]

    @property
    def cache_hit_rate(self) -> float:
        return self.metrics.cache_hit_rate

    @property
    def speedup(self) -> float:
        return self.metrics.speedup


def run_experiment(
    index: SpatialIndex,
    sequences: list[QuerySequence],
    prefetcher: Prefetcher,
    config: SimulationConfig | None = None,
) -> ExperimentResult:
    """Run one prefetcher over a batch of sequences and aggregate.

    Caches are cold per sequence, as in §7.1 ("After executing each
    sequence of queries, we clear the prefetch cache, the operating
    system cache and the disk buffers").
    """
    if not sequences:
        raise ValueError("run_experiment() needs at least one sequence")
    engine = SimulationEngine(index, config)
    per_sequence = []
    for sequence in sequences:
        if isinstance(prefetcher, OraclePrefetcher):
            prefetcher.bind_sequence(sequence)
        per_sequence.append(engine.run(sequence, prefetcher))
    return ExperimentResult(
        prefetcher_name=prefetcher.name,
        metrics=aggregate(per_sequence),
        sequences=per_sequence,
    )
