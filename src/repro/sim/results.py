"""Persisted experiment results: content-addressed JSON-lines stores.

Every experiment cell is identified by the **content hash** of its
declarative spec (see :mod:`repro.sim.runner`): the spec is serialized
to canonical JSON (sorted keys, no whitespace) and hashed with SHA-256.
Two cells with the same datasets, indexes, workloads, prefetchers,
seeds and simulator knobs therefore share a key regardless of where or
when they run -- which is what makes results *resumable*: a sweep that
finds a cell's key already in the store reuses the stored metrics
instead of re-simulating.

The store itself is one JSON-lines file (one record per line), chosen
over a database for three properties the orchestrator needs:

* **append-only writes** -- the parent process appends each finished
  cell as soon as its worker returns, so an interrupted sweep keeps
  everything computed so far.  With ``async_writes=True`` the appends
  are drained by a background writer thread, so the scheduling loop
  never blocks on file I/O (``flush()`` waits for the queue and fsyncs
  the file so drained lines are durable, ``close()`` stops the thread);
* **corruption locality** -- a truncated or garbled line (e.g. from a
  crash mid-write) invalidates only that record.  :meth:`ResultStore.load`
  verifies each line and drops bad records, distinguishing *corrupt*
  lines (broken JSON, spec/key hash mismatch -- :attr:`ResultStore.n_corrupt`)
  from *stale* ones (valid JSON written by an older/newer code revision:
  unknown schema version, missing envelope or metric fields --
  :attr:`ResultStore.n_stale`).  Both are recomputed on resume; neither
  is ever handed to table rendering;
* **greppability** -- results are plain text, one cell per line.

Records are wrapped in a **status envelope** (``STORE_SCHEMA = 2``):
``{status: ok|failed|timeout, attempts, error, metrics, ...}``.  A cell
that crashed or exceeded its wall-clock budget is persisted as a
failure record (``metrics: null``) instead of aborting the sweep, and
is retried on the next resume.  Legacy schema-1 records (no envelope)
still load as ``status="ok"``.

For multi-host sweeps, :class:`ShardedResultStore` deterministically
splits the key space into ``n_shards`` slices by spec-hash; independent
hosts or CI jobs each sweep one ``--shard i/n`` slice into their own
file, and :func:`merge_stores` unions the shard files back into one
store.

Duplicate keys are legal (re-runs append); the last record wins, so a
recomputed cell supersedes a corrupt or stale one on the next load.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import queue
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.sim.metrics import AggregateMetrics
from repro.util import slice_of

__all__ = [
    "CellResult",
    "CompactReport",
    "MergeReport",
    "ResultStore",
    "ShardedResultStore",
    "canonical_json",
    "cell_key",
    "merge_stores",
    "metrics_from_dict",
    "metrics_to_dict",
    "shard_of",
    "shard_store_path",
]

#: Store schema version; bump when the record layout changes.  Older
#: *loadable* layouts are upgraded on read (schema 1 had no status
#: envelope); anything else is classified stale and recomputed.
STORE_SCHEMA = 2

#: Schema versions :meth:`ResultStore.load` still understands.
_LOADABLE_SCHEMAS = (1, STORE_SCHEMA)

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
_STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT)

#: Fields every persisted metrics dict must carry (mirrors
#: :class:`~repro.sim.metrics.AggregateMetrics`).
_METRIC_FIELDS = (
    "n_sequences",
    "cache_hit_rate",
    "hit_rate_std",
    "speedup",
    "response_seconds",
    "cold_seconds",
    "graph_build_seconds",
    "prediction_seconds",
    "per_sequence_hit_rates",
)


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing and cache keys."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cell_key(spec: Mapping[str, Any]) -> str:
    """Content hash of a cell-spec dict (hex SHA-256)."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


def metrics_to_dict(metrics: AggregateMetrics) -> dict[str, Any]:
    """JSON-safe dict of one cell's aggregate metrics.

    An infinite speedup (zero residual I/O) is stored as ``null``;
    :func:`metrics_from_dict` restores it.

    The serving-only contention counters are *additive keys*: present
    only when set (serving cells), so records of single-client cells --
    and therefore existing stores -- stay byte-identical.
    """
    speedup = metrics.speedup
    data = {
        "n_sequences": metrics.n_sequences,
        "cache_hit_rate": metrics.cache_hit_rate,
        "hit_rate_std": metrics.hit_rate_std,
        "speedup": None if math.isinf(speedup) else speedup,
        "response_seconds": metrics.response_seconds,
        "cold_seconds": metrics.cold_seconds,
        "graph_build_seconds": metrics.graph_build_seconds,
        "prediction_seconds": metrics.prediction_seconds,
        "per_sequence_hit_rates": list(metrics.per_sequence_hit_rates),
    }
    if metrics.cross_client_hits is not None:
        data["cross_client_hits"] = int(metrics.cross_client_hits)
    if metrics.evicted_misses is not None:
        data["evicted_misses"] = int(metrics.evicted_misses)
    if metrics.failed_reads is not None:
        data["failed_reads"] = int(metrics.failed_reads)
    if metrics.degraded_ticks is not None:
        data["degraded_ticks"] = int(metrics.degraded_ticks)
    if metrics.breaker_opens is not None:
        data["breaker_opens"] = int(metrics.breaker_opens)
    if metrics.tier_hits is not None:
        data["tier_hits"] = int(metrics.tier_hits)
    if metrics.miss_path_hits is not None:
        data["miss_path_hits"] = int(metrics.miss_path_hits)
    if metrics.tier_fills is not None:
        data["tier_fills"] = int(metrics.tier_fills)
    if metrics.tier_stall_seconds is not None:
        data["tier_stall_seconds"] = float(metrics.tier_stall_seconds)
    if metrics.shard_requests is not None:
        data["shard_requests"] = [int(v) for v in metrics.shard_requests]
    if metrics.shard_hits is not None:
        data["shard_hits"] = [int(v) for v in metrics.shard_hits]
    if metrics.shard_rebalances is not None:
        data["shard_rebalances"] = int(metrics.shard_rebalances)
    if metrics.shard_pages_moved is not None:
        data["shard_pages_moved"] = int(metrics.shard_pages_moved)
    if metrics.shard_hop_seconds is not None:
        data["shard_hop_seconds"] = float(metrics.shard_hop_seconds)
    return data


def metrics_from_dict(data: Mapping[str, Any]) -> AggregateMetrics:
    """Rebuild :class:`AggregateMetrics` from a stored record."""
    speedup = data["speedup"]
    return AggregateMetrics(
        n_sequences=int(data["n_sequences"]),
        cache_hit_rate=float(data["cache_hit_rate"]),
        hit_rate_std=float(data["hit_rate_std"]),
        speedup=float("inf") if speedup is None else float(speedup),
        response_seconds=float(data["response_seconds"]),
        cold_seconds=float(data["cold_seconds"]),
        graph_build_seconds=float(data["graph_build_seconds"]),
        prediction_seconds=float(data["prediction_seconds"]),
        per_sequence_hit_rates=[float(r) for r in data["per_sequence_hit_rates"]],
        cross_client_hits=(
            None if data.get("cross_client_hits") is None else int(data["cross_client_hits"])
        ),
        evicted_misses=(
            None if data.get("evicted_misses") is None else int(data["evicted_misses"])
        ),
        failed_reads=(
            None if data.get("failed_reads") is None else int(data["failed_reads"])
        ),
        degraded_ticks=(
            None if data.get("degraded_ticks") is None else int(data["degraded_ticks"])
        ),
        breaker_opens=(
            None if data.get("breaker_opens") is None else int(data["breaker_opens"])
        ),
        tier_hits=(None if data.get("tier_hits") is None else int(data["tier_hits"])),
        miss_path_hits=(
            None if data.get("miss_path_hits") is None else int(data["miss_path_hits"])
        ),
        tier_fills=(None if data.get("tier_fills") is None else int(data["tier_fills"])),
        tier_stall_seconds=(
            None
            if data.get("tier_stall_seconds") is None
            else float(data["tier_stall_seconds"])
        ),
        shard_requests=(
            None
            if data.get("shard_requests") is None
            else [int(v) for v in data["shard_requests"]]
        ),
        shard_hits=(
            None if data.get("shard_hits") is None else [int(v) for v in data["shard_hits"]]
        ),
        shard_rebalances=(
            None if data.get("shard_rebalances") is None else int(data["shard_rebalances"])
        ),
        shard_pages_moved=(
            None
            if data.get("shard_pages_moved") is None
            else int(data["shard_pages_moved"])
        ),
        shard_hop_seconds=(
            None
            if data.get("shard_hop_seconds") is None
            else float(data["shard_hop_seconds"])
        ),
    )


@dataclass(frozen=True)
class CellResult:
    """One experiment cell's persisted outcome.

    ``status`` is the failure envelope: ``"ok"`` results carry metrics,
    ``"failed"`` / ``"timeout"`` results carry ``metrics=None`` plus the
    stringified ``error`` and the number of ``attempts`` spent before
    giving up.  Failure records keep a sweep's bookkeeping (what ran,
    what died, how often) in the same store as its data.
    """

    key: str
    spec: dict
    metrics: AggregateMetrics | None
    elapsed_seconds: float = 0.0
    status: str = STATUS_OK
    attempts: int = 1
    error: str | None = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(f"unknown status {self.status!r}; known: {', '.join(_STATUSES)}")
        if (self.metrics is None) == (self.status == STATUS_OK):
            raise ValueError(f"status {self.status!r} inconsistent with metrics presence")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def prefetcher_kind(self) -> str:
        return self.spec["prefetcher"]["kind"]

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": STORE_SCHEMA,
            "key": self.key,
            "spec": self.spec,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "metrics": None if self.metrics is None else metrics_to_dict(self.metrics),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "CellResult":
        metrics = record.get("metrics")
        return cls(
            key=record["key"],
            spec=dict(record["spec"]),
            metrics=None if metrics is None else metrics_from_dict(metrics),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            # Schema-1 records predate the envelope: they are ok results.
            status=record.get("status", STATUS_OK),
            attempts=int(record.get("attempts", 1)),
            error=record.get("error"),
        )


@dataclass(frozen=True)
class CompactReport:
    """What :meth:`ResultStore.compact` kept, dropped and reclaimed.

    ``n_superseded`` counts intact lines shadowed by a later record with
    the same key (re-runs append; the last record wins on load).  The
    byte counts compare the store file before and after the atomic
    rewrite, so ``reclaimed_bytes`` is the disk space the corrupt, stale
    and superseded lines were occupying -- it can be *negative* for a
    store holding legacy schema-1 records, which the rewrite upgrades to
    the (larger) schema-2 envelope layout.
    """

    path: Path
    n_kept: int
    n_corrupt: int
    n_stale: int
    n_superseded: int
    bytes_before: int
    bytes_after: int

    @property
    def n_dropped(self) -> int:
        return self.n_corrupt + self.n_stale + self.n_superseded

    @property
    def reclaimed_bytes(self) -> int:
        return self.bytes_before - self.bytes_after


_VALID, _STALE, _CORRUPT = "valid", "stale", "corrupt"


def _classify_record(record: Any) -> str:
    """Sort a parsed store line into valid / stale / corrupt.

    *Corrupt* means the line cannot be trusted at all: not a record
    dict, or the spec no longer matches its content hash.  *Stale*
    means the line is intact but was written by a different code
    revision -- unknown schema version, or an envelope/metrics layout
    missing fields the current reader requires.  Both are dropped and
    recomputed; the distinction keeps "this store is damaged" separate
    from "this store predates the current schema" in sweep reporting.
    """
    if not isinstance(record, dict):
        return _CORRUPT
    spec = record.get("spec")
    key = record.get("key")
    if not isinstance(spec, dict) or not isinstance(key, str):
        return _CORRUPT
    if cell_key(spec) != key:
        # Tampered or bit-rotted: the spec no longer matches its hash.
        return _CORRUPT
    if record.get("schema") not in _LOADABLE_SCHEMAS:
        return _STALE
    status = record.get("status", STATUS_OK)
    if status not in _STATUSES:
        return _STALE
    if record.get("schema") == STORE_SCHEMA and not isinstance(record.get("attempts", 0), int):
        return _STALE
    if status == STATUS_OK:
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            return _STALE
        if not all(field_name in metrics for field_name in _METRIC_FIELDS):
            # Valid JSON from an older revision that tracked fewer
            # metrics: explicitly stale, never silently rendered.
            return _STALE
    return _VALID


def _append_line(path: Path, line: str, fsync: bool = True) -> None:
    """Append one record line, guarding against a partial final line.

    ``fsync=False`` skips the per-line disk sync; the async writer uses
    it so a busy queue drains at buffer-cache speed, and restores
    durability with one file-level fsync at :meth:`_AsyncWriter.flush`.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a+b") as fh:
        # A crash mid-write can leave the file without a trailing
        # newline; writing straight on would glue this record onto
        # the partial line and corrupt both.
        fh.seek(0, 2)
        if fh.tell() > 0:
            fh.seek(-1, 2)
            if fh.read(1) != b"\n":
                fh.write(b"\n")
        fh.write((line + "\n").encode("utf-8"))
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())


class _AsyncWriter:
    """Background thread draining record lines to a store file.

    Workers (and the scheduling loop collecting their results) hand
    lines to :meth:`submit` and move on; the thread does the
    open/guard/write/fsync cycle.  Write errors are captured and
    re-raised from the next :meth:`flush` / :meth:`close` so they
    surface on the caller's thread instead of dying silently.
    """

    _CLOSE = object()

    def __init__(self, path: Path) -> None:
        self._path = path
        self._queue: queue.Queue = queue.Queue()
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name=f"result-store-writer:{path.name}", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._CLOSE:
                    return
                if self._error is None:
                    # Per-line fsync would serialize the queue on disk
                    # latency; durability is restored by the file-level
                    # fsync in :meth:`flush` (and hence :meth:`close`).
                    _append_line(self._path, item, fsync=False)
            except BaseException as exc:  # noqa: BLE001 - reported via flush()
                self._error = exc
            finally:
                self._queue.task_done()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise RuntimeError(f"async store write to {self._path} failed") from error

    def _sync_file(self) -> None:
        """fsync the store file so every drained line is durable."""
        if self._path.exists():
            fd = os.open(self._path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    def submit(self, line: str) -> None:
        if self._closed:
            raise RuntimeError("async writer is closed")
        # Surface a failed write on the *next* append rather than
        # queueing hours of results into a store that stopped taking
        # them -- mirrors the sync path aborting at the first bad write.
        self._raise_pending()
        self._queue.put(line)

    def flush(self) -> None:
        self._queue.join()
        self._sync_file()
        self._raise_pending()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put(self._CLOSE)
            self._thread.join()
            self._sync_file()
        self._raise_pending()


class ResultStore:
    """JSON-lines store of :class:`CellResult` records, keyed by spec hash.

    With ``async_writes=True`` appends are queued to a writer thread;
    call :meth:`flush` to wait for them to hit disk (done automatically
    before reloads and compaction) and :meth:`close` when finished.  The
    store is also a context manager: ``with ResultStore(p, async_writes=True)
    as store: ...`` closes the writer on exit.
    """

    def __init__(self, path: str | Path, async_writes: bool = False) -> None:
        self.path = Path(path)
        self._results: dict[str, CellResult] = {}
        self._loaded = False
        #: Lines dropped by the last :meth:`load` as damaged beyond
        #: trust (broken JSON, non-record lines, spec/key hash mismatch).
        self.n_corrupt = 0
        #: Lines dropped by the last :meth:`load` as schema-envelope
        #: mismatches: intact JSON written by an older or newer code
        #: revision (unknown schema version, missing envelope or metric
        #: fields).  Stale cells are recomputed, never rendered.
        self.n_stale = 0
        #: Non-blank lines seen by the last :meth:`load` (valid or not);
        #: lets :meth:`compact` count superseded duplicates.
        self.n_lines = 0
        self._async = bool(async_writes)
        self._writer_closed = False
        # Started lazily on the first append: by then a pooled runner
        # has already forked its workers, so the fork never happens in
        # a multi-threaded parent (a documented deadlock risk).
        self._writer: _AsyncWriter | None = None

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        """Wait until every queued append is on disk (async mode)."""
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        """Stop the async writer after draining its queue."""
        self._writer_closed = True
        if self._writer is not None:
            self._writer.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reading ------------------------------------------------------------

    def load(self, reload: bool = False) -> dict[str, CellResult]:
        """Parse the store file, dropping (and counting) bad lines."""
        if self._loaded and not reload:
            return self._results
        self.flush()
        self._results = {}
        self.n_corrupt = 0
        self.n_stale = 0
        self.n_lines = 0
        if self.path.exists():
            # Binary mode with per-line decoding: a final line torn
            # mid-write (e.g. truncated inside a multi-byte UTF-8
            # character by a crash or full disk) must cost exactly that
            # one record -- text mode would raise UnicodeDecodeError and
            # abort the whole load.
            with self.path.open("rb") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    self.n_lines += 1
                    try:
                        record = json.loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        self.n_corrupt += 1
                        continue
                    verdict = _classify_record(record)
                    if verdict is not _VALID:
                        if verdict is _STALE:
                            self.n_stale += 1
                        else:
                            self.n_corrupt += 1
                        continue
                    try:
                        result = CellResult.from_record(record)
                    except (KeyError, TypeError, ValueError):
                        self.n_corrupt += 1
                        continue
                    self._results[result.key] = result
        self._loaded = True
        return self._results

    @property
    def n_dropped(self) -> int:
        """Total lines the last :meth:`load` refused (corrupt + stale)."""
        return self.n_corrupt + self.n_stale

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def get(self, key: str) -> CellResult | None:
        return self.load().get(key)

    def keys(self) -> set[str]:
        return set(self.load())

    def results(self) -> list[CellResult]:
        return list(self.load().values())

    def ok_results(self) -> list[CellResult]:
        """Only the successful cells -- what table rendering consumes."""
        return [result for result in self.load().values() if result.ok]

    # -- writing ------------------------------------------------------------

    def append(self, result: CellResult) -> None:
        """Append one record and update the in-memory view.

        In async mode the disk write is queued; the in-memory view is
        updated immediately, so readers of *this* store object see the
        result regardless of writer progress.
        """
        self.load()
        line = json.dumps(result.to_record())
        if self._async:
            if self._writer is None:
                if self._writer_closed:
                    raise RuntimeError("async writer is closed")
                self._writer = _AsyncWriter(self.path)
            self._writer.submit(line)
        else:
            _append_line(self.path, line)
        self._results[result.key] = result

    def compact(self) -> CompactReport:
        """Rewrite the file without corrupt, stale or superseded lines.

        The rewrite is atomic (tmp file + rename), so a crash mid-compact
        leaves the original store intact, and idempotent: compacting a
        compacted store keeps every record and reclaims zero bytes.
        Returns a :class:`CompactReport` with the kept/dropped line
        accounting and the bytes reclaimed.  Useful after long resumed
        sweeps have accumulated duplicate or damaged lines.
        """
        self.flush()
        bytes_before = self.path.stat().st_size if self.path.exists() else 0
        results = self.load(reload=True)
        n_corrupt, n_stale = self.n_corrupt, self.n_stale
        n_superseded = self.n_lines - n_corrupt - n_stale - len(results)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for result in results.values():
                fh.write(json.dumps(result.to_record()) + "\n")
        tmp.replace(self.path)
        self.n_corrupt = 0
        self.n_stale = 0
        self.n_lines = len(results)
        return CompactReport(
            path=self.path,
            n_kept=len(results),
            n_corrupt=n_corrupt,
            n_stale=n_stale,
            n_superseded=n_superseded,
            bytes_before=bytes_before,
            bytes_after=self.path.stat().st_size,
        )


# -- sharding -----------------------------------------------------------------------


def shard_of(key: str, n_shards: int) -> int:
    """Deterministic shard index of a cell key (hex SHA-256 spec hash).

    Uses the key's leading 64 bits so any process, on any host, at any
    time assigns a cell to the same slice -- the property that lets
    independent CI jobs sweep ``--shard 0/2`` and ``--shard 1/2``
    without coordination and still partition the grid exactly.  The
    assignment rule itself is :func:`repro.util.slice_of`, shared with
    the sharded cache's hash partitioner so both stay pinned together.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return int(slice_of(int(key[:16], 16), n_shards))


def shard_store_path(path: str | Path, shard_index: int, n_shards: int) -> Path:
    """Per-shard store file derived from the merged-store path.

    ``results/fig10.jsonl`` with shard 0/2 becomes
    ``results/fig10.shard0of2.jsonl``; the undecorated path is reserved
    for the :func:`merge_stores` output.
    """
    path = Path(path)
    suffix = path.suffix or ".jsonl"
    return path.with_name(f"{path.stem}.shard{shard_index}of{n_shards}{suffix}")


class ShardedResultStore(ResultStore):
    """One ``--shard i/n`` slice of a sweep's key space.

    The store file lives at :func:`shard_store_path`; :meth:`owns`
    says whether a key hashes into this slice, :meth:`owned_cells`
    filters a cell list down to it, and :meth:`append` refuses results
    from other slices so a mis-wired runner cannot silently produce
    overlapping shard files (which would make merges ambiguous).
    """

    def __init__(
        self,
        path: str | Path,
        shard_index: int,
        n_shards: int,
        async_writes: bool = False,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not 0 <= shard_index < n_shards:
            raise ValueError(f"shard index must be in [0, {n_shards}), got {shard_index}")
        self.base_path = Path(path)
        self.shard_index = int(shard_index)
        self.n_shards = int(n_shards)
        super().__init__(shard_store_path(path, shard_index, n_shards), async_writes)

    def owns(self, key: str) -> bool:
        return shard_of(key, self.n_shards) == self.shard_index

    def owned_cells(self, cells: Iterable[Any]) -> list[Any]:
        """The subset of cell specs whose keys hash into this shard."""
        return [cell for cell in cells if self.owns(cell.key())]

    def append(self, result: CellResult) -> None:
        if not self.owns(result.key):
            raise ValueError(
                f"cell {result.key[:12]} belongs to shard "
                f"{shard_of(result.key, self.n_shards)}/{self.n_shards}, "
                f"not {self.shard_index}/{self.n_shards}"
            )
        super().append(result)


# -- merging ------------------------------------------------------------------------


@dataclass
class MergeReport:
    """What :func:`merge_stores` combined and what it refused."""

    out_path: Path
    n_cells: int
    n_inputs: int
    n_corrupt: int = 0
    n_stale: int = 0
    #: Keys whose duplicate records disagreed across inputs (the later
    #: input won, ok records always beating failure records).
    conflict_keys: list[str] = field(default_factory=list)
    #: Input paths that did not exist.  Legal -- a shard that owned no
    #: cells never creates its file -- but surfaced so a typo'd shard
    #: path cannot silently produce a partial merge.
    missing_inputs: list[Path] = field(default_factory=list)


def merge_stores(input_paths: Sequence[str | Path], out_path: str | Path) -> MergeReport:
    """Union shard (or partial-sweep) stores into one compacted store.

    Inputs are loaded with full validation (corrupt and stale lines
    dropped and counted).  Duplicate keys resolve in favour of ``ok``
    records over failure records; among records of equal status the
    later input wins.  The output is written atomically (tmp + rename),
    so merging is idempotent and re-merging after a retry run simply
    upgrades failure records in place.  ``out_path`` may itself be one
    of the inputs.
    """
    paths = [Path(p) for p in input_paths]
    if not paths:
        raise ValueError("merge needs at least one input store")
    merged: dict[str, CellResult] = {}
    n_corrupt = 0
    n_stale = 0
    conflicts: list[str] = []
    missing = [path for path in paths if not path.exists()]
    if len(missing) == len(paths):
        # A sweep's grid always has cells, so at least one shard file
        # must exist; all-missing means typo'd paths (or an unexpanded
        # shell glob), and proceeding would atomically truncate out_path.
        raise ValueError(
            "no input store exists: " + ", ".join(str(p) for p in missing)
        )
    for path in paths:
        store = ResultStore(path)
        for key, result in store.load().items():
            previous = merged.get(key)
            if previous is not None and previous.to_record() != result.to_record():
                conflicts.append(key)
                if previous.ok and not result.ok:
                    continue  # never let a failure shadow a success
            merged[key] = result
        n_corrupt += store.n_corrupt
        n_stale += store.n_stale

    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        for result in merged.values():
            fh.write(json.dumps(result.to_record()) + "\n")
    tmp.replace(out_path)
    return MergeReport(
        out_path=out_path,
        n_cells=len(merged),
        n_inputs=len(paths),
        n_corrupt=n_corrupt,
        n_stale=n_stale,
        conflict_keys=conflicts,
        missing_inputs=missing,
    )
