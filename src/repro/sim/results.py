"""Persisted experiment results: content-addressed JSON-lines store.

Every experiment cell is identified by the **content hash** of its
declarative spec (see :mod:`repro.sim.runner`): the spec is serialized
to canonical JSON (sorted keys, no whitespace) and hashed with SHA-256.
Two cells with the same datasets, indexes, workloads, prefetchers,
seeds and simulator knobs therefore share a key regardless of where or
when they run -- which is what makes results *resumable*: a sweep that
finds a cell's key already in the store reuses the stored metrics
instead of re-simulating.

The store itself is one JSON-lines file (one record per line), chosen
over a database for three properties the orchestrator needs:

* **append-only writes** -- the parent process appends each finished
  cell as soon as its worker returns, so an interrupted sweep keeps
  everything computed so far;
* **corruption locality** -- a truncated or garbled line (e.g. from a
  crash mid-write) invalidates only that record.  :meth:`ResultStore.load`
  verifies each line (JSON validity, schema version, spec-hash/key
  agreement, metric fields) and silently drops bad records, counting
  them in :attr:`ResultStore.n_corrupt`; the runner then recomputes just
  those cells;
* **greppability** -- results are plain text, one cell per line.

Duplicate keys are legal (re-runs append); the last record wins, so a
recomputed cell supersedes a corrupt or stale one on the next load.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.sim.metrics import AggregateMetrics

__all__ = [
    "CellResult",
    "ResultStore",
    "canonical_json",
    "cell_key",
    "metrics_from_dict",
    "metrics_to_dict",
]

#: Store schema version; bump when the record layout changes so old
#: stores are recomputed rather than misread.
STORE_SCHEMA = 1

#: Fields every persisted metrics dict must carry (mirrors
#: :class:`~repro.sim.metrics.AggregateMetrics`).
_METRIC_FIELDS = (
    "n_sequences",
    "cache_hit_rate",
    "hit_rate_std",
    "speedup",
    "response_seconds",
    "cold_seconds",
    "graph_build_seconds",
    "prediction_seconds",
    "per_sequence_hit_rates",
)


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing and cache keys."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cell_key(spec: Mapping[str, Any]) -> str:
    """Content hash of a cell-spec dict (hex SHA-256)."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


def metrics_to_dict(metrics: AggregateMetrics) -> dict[str, Any]:
    """JSON-safe dict of one cell's aggregate metrics.

    An infinite speedup (zero residual I/O) is stored as ``null``;
    :func:`metrics_from_dict` restores it.
    """
    speedup = metrics.speedup
    return {
        "n_sequences": metrics.n_sequences,
        "cache_hit_rate": metrics.cache_hit_rate,
        "hit_rate_std": metrics.hit_rate_std,
        "speedup": None if math.isinf(speedup) else speedup,
        "response_seconds": metrics.response_seconds,
        "cold_seconds": metrics.cold_seconds,
        "graph_build_seconds": metrics.graph_build_seconds,
        "prediction_seconds": metrics.prediction_seconds,
        "per_sequence_hit_rates": list(metrics.per_sequence_hit_rates),
    }


def metrics_from_dict(data: Mapping[str, Any]) -> AggregateMetrics:
    """Rebuild :class:`AggregateMetrics` from a stored record."""
    speedup = data["speedup"]
    return AggregateMetrics(
        n_sequences=int(data["n_sequences"]),
        cache_hit_rate=float(data["cache_hit_rate"]),
        hit_rate_std=float(data["hit_rate_std"]),
        speedup=float("inf") if speedup is None else float(speedup),
        response_seconds=float(data["response_seconds"]),
        cold_seconds=float(data["cold_seconds"]),
        graph_build_seconds=float(data["graph_build_seconds"]),
        prediction_seconds=float(data["prediction_seconds"]),
        per_sequence_hit_rates=[float(r) for r in data["per_sequence_hit_rates"]],
    )


@dataclass(frozen=True)
class CellResult:
    """One experiment cell's persisted outcome."""

    key: str
    spec: dict
    metrics: AggregateMetrics
    elapsed_seconds: float = 0.0

    @property
    def prefetcher_kind(self) -> str:
        return self.spec["prefetcher"]["kind"]

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": STORE_SCHEMA,
            "key": self.key,
            "spec": self.spec,
            "metrics": metrics_to_dict(self.metrics),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "CellResult":
        return cls(
            key=record["key"],
            spec=dict(record["spec"]),
            metrics=metrics_from_dict(record["metrics"]),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
        )


def _validate_record(record: Any) -> bool:
    """True when a parsed store line is a usable result record."""
    if not isinstance(record, dict):
        return False
    if record.get("schema") != STORE_SCHEMA:
        return False
    spec = record.get("spec")
    key = record.get("key")
    if not isinstance(spec, dict) or not isinstance(key, str):
        return False
    if cell_key(spec) != key:
        # Tampered or bit-rotted: the spec no longer matches its hash.
        return False
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return False
    return all(field in metrics for field in _METRIC_FIELDS)


class ResultStore:
    """JSON-lines store of :class:`CellResult` records, keyed by spec hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._results: dict[str, CellResult] = {}
        self._loaded = False
        #: Lines dropped by the last :meth:`load` (corrupt JSON, schema
        #: mismatch, key/spec disagreement, missing metric fields).
        self.n_corrupt = 0

    # -- reading ------------------------------------------------------------

    def load(self, reload: bool = False) -> dict[str, CellResult]:
        """Parse the store file, dropping (and counting) corrupt lines."""
        if self._loaded and not reload:
            return self._results
        self._results = {}
        self.n_corrupt = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        self.n_corrupt += 1
                        continue
                    if not _validate_record(record):
                        self.n_corrupt += 1
                        continue
                    try:
                        result = CellResult.from_record(record)
                    except (KeyError, TypeError, ValueError):
                        self.n_corrupt += 1
                        continue
                    self._results[result.key] = result
        self._loaded = True
        return self._results

    def __contains__(self, key: str) -> bool:
        return key in self.load()

    def __len__(self) -> int:
        return len(self.load())

    def get(self, key: str) -> CellResult | None:
        return self.load().get(key)

    def keys(self) -> set[str]:
        return set(self.load())

    def results(self) -> list[CellResult]:
        return list(self.load().values())

    # -- writing ------------------------------------------------------------

    def append(self, result: CellResult) -> None:
        """Append one record and update the in-memory view."""
        self.load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as fh:
            # A crash mid-write can leave the file without a trailing
            # newline; writing straight on would glue this record onto
            # the partial line and corrupt both.
            fh.seek(0, 2)
            if fh.tell() > 0:
                fh.seek(-1, 2)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write((json.dumps(result.to_record()) + "\n").encode("utf-8"))
        self._results[result.key] = result

    def compact(self) -> int:
        """Rewrite the file without corrupt or superseded lines.

        Returns the number of records kept.  Useful after long resumed
        sweeps have accumulated duplicate or damaged lines.
        """
        results = self.load(reload=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for result in results.values():
                fh.write(json.dumps(result.to_record()) + "\n")
        tmp.replace(self.path)
        self.n_corrupt = 0
        return len(results)
