"""Execution simulator for guided query sequences.

Implements the paper's Figure-2 resource timeline: each query is served
from the prefetch cache with residual I/O for misses; while the user
analyzes the result (the prefetch window, ``ratio x`` the cold-read
time), the prediction computation runs and the predicted locations are
prefetched incrementally until the window closes.
"""

from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.metrics import QueryRecord, SequenceMetrics, AggregateMetrics, aggregate
from repro.sim.experiment import ExperimentResult, run_experiment

__all__ = [
    "AggregateMetrics",
    "ExperimentResult",
    "QueryRecord",
    "SequenceMetrics",
    "SimulationConfig",
    "SimulationEngine",
    "aggregate",
    "run_experiment",
]
