"""Execution simulator for guided query sequences.

Implements the paper's Figure-2 resource timeline: each query is served
from the prefetch cache with residual I/O for misses; while the user
analyzes the result (the prefetch window, ``ratio x`` the cold-read
time), the prediction computation runs and the predicted locations are
prefetched incrementally until the window closes.
"""

from repro.sim.engine import QuerySession, SimulationConfig, SimulationEngine, fault_surface
from repro.sim.metrics import (
    AggregateMetrics,
    ClientMetrics,
    QueryRecord,
    SequenceMetrics,
    ServeReport,
    aggregate,
)
from repro.sim.experiment import ExperimentResult, run_experiment
from repro.sim.serve import ServingSimulator
from repro.sim.results import (
    CellResult,
    CompactReport,
    MergeReport,
    ResultStore,
    ShardedResultStore,
    cell_key,
    merge_stores,
    shard_of,
    shard_store_path,
)
from repro.sim.runner import (
    CellSpec,
    CellTimeoutError,
    DatasetSpec,
    ExperimentMatrix,
    IndexSpec,
    ParallelRunner,
    PrefetcherSpec,
    RunReport,
    WorkloadSpec,
    cached_dataset,
    run_cell,
    run_serving_cell,
    warm_cell_resources,
)

__all__ = [
    "AggregateMetrics",
    "CellResult",
    "CellSpec",
    "CellTimeoutError",
    "ClientMetrics",
    "CompactReport",
    "DatasetSpec",
    "ExperimentMatrix",
    "ExperimentResult",
    "IndexSpec",
    "MergeReport",
    "ParallelRunner",
    "PrefetcherSpec",
    "QueryRecord",
    "QuerySession",
    "ResultStore",
    "RunReport",
    "SequenceMetrics",
    "ServeReport",
    "ServingSimulator",
    "ShardedResultStore",
    "SimulationConfig",
    "SimulationEngine",
    "WorkloadSpec",
    "aggregate",
    "cached_dataset",
    "cell_key",
    "fault_surface",
    "merge_stores",
    "run_cell",
    "run_experiment",
    "run_serving_cell",
    "shard_of",
    "shard_store_path",
    "warm_cell_resources",
]
