"""Metrics collected by the simulator.

The paper's two headline numbers are the *cache hit rate* ("percentage
of data read from the prefetch cache rather than from disk", §3.3) and
the *speedup* of query response time versus no prefetching (§7.3).  The
analysis section adds a response-time breakdown into graph building,
prediction and residual I/O (Fig 14).

Hit rates are accounted at page granularity over queries 2..n of each
sequence -- the first query has no history, so every method starts
cold there (see DESIGN.md §5).

The serving layer adds two multi-client views (DESIGN.md §6):
:class:`ClientMetrics` wraps one client's per-sequence accounting with
its shared-cache contention counters, and :class:`ServeReport` pools a
whole :class:`~repro.sim.serve.ServingSimulator` run -- per-client and
aggregate hit rates plus the cache-level contention statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "AggregateMetrics",
    "ClientMetrics",
    "LatencyReport",
    "QueryRecord",
    "SequenceMetrics",
    "ServeReport",
    "aggregate",
]


@dataclass
class QueryRecord:
    """Accounting of one query in a sequence."""

    index: int
    pages_needed: int
    pages_hit: int
    objects_needed: int
    objects_hit: int
    residual_seconds: float
    cold_seconds: float
    window_seconds: float
    prediction_seconds: float
    graph_build_seconds: float
    prefetch_pages: int
    prefetch_seconds: float
    gap_io_pages: int
    n_result_objects: int
    n_candidates: int

    @property
    def pages_missed(self) -> int:
        """Pages that had to be read from disk."""
        return self.pages_needed - self.pages_hit


@dataclass
class SequenceMetrics:
    """Accounting of one full sequence run."""

    records: list[QueryRecord] = field(default_factory=list)

    # -- headline numbers ----------------------------------------------------------

    @property
    def eligible(self) -> list[QueryRecord]:
        """Records that count towards the hit rate (all but the first)."""
        return self.records[1:]

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of result *data* served from the prefetch cache.

        Object-weighted, following §3.3's definition ("percentage of
        data read from the prefetch cache rather than from disk"): an
        object counts as a hit when the page holding it was prefetched.
        """
        needed = sum(r.objects_needed for r in self.eligible)
        if needed == 0:
            return 0.0
        return sum(r.objects_hit for r in self.eligible) / needed

    @property
    def page_hit_rate(self) -> float:
        """Page-granular hit rate (I/O view of the same quantity)."""
        needed = sum(r.pages_needed for r in self.eligible)
        if needed == 0:
            return 0.0
        return sum(r.pages_hit for r in self.eligible) / needed

    @property
    def response_seconds(self) -> float:
        """Total response time: residual I/O plus uncovered prediction cost."""
        return sum(r.residual_seconds for r in self.records)

    @property
    def cold_seconds(self) -> float:
        """Total response time had nothing been prefetched."""
        return sum(r.cold_seconds for r in self.records)

    @property
    def speedup(self) -> float:
        """Response-time speedup vs no prefetching (cold / actual)."""
        response = self.response_seconds
        if response <= 0:
            return float("inf")
        return self.cold_seconds / response

    # -- breakdown (Fig 14) ---------------------------------------------------------

    @property
    def graph_build_seconds(self) -> float:
        """Total simulated graph-building time (Fig 14)."""
        return sum(r.graph_build_seconds for r in self.records)

    @property
    def prediction_seconds(self) -> float:
        """Total simulated prediction time, graph build included."""
        return sum(r.prediction_seconds for r in self.records)

    @property
    def residual_io_seconds(self) -> float:
        """Total residual (cache-miss) I/O time."""
        return sum(r.residual_seconds for r in self.records)

    @property
    def total_prefetch_pages(self) -> int:
        """Pages brought into the cache by prefetching."""
        return sum(r.prefetch_pages for r in self.records)

    @property
    def total_gap_io_pages(self) -> int:
        """Pages read by SCOUT-OPT's gap traversal (prediction I/O)."""
        return sum(r.gap_io_pages for r in self.records)


@dataclass
class AggregateMetrics:
    """Metrics pooled over several sequences of one experiment cell.

    The two trailing contention counters only apply to serving cells
    (many clients on one shared cache); single-client cells leave them
    ``None`` and persist without them, so pre-serving stored records
    stay byte-identical (additive keys only -- see
    :func:`repro.sim.results.metrics_to_dict`).
    """

    n_sequences: int
    cache_hit_rate: float
    hit_rate_std: float
    speedup: float
    response_seconds: float
    cold_seconds: float
    graph_build_seconds: float
    prediction_seconds: float
    per_sequence_hit_rates: list[float]
    cross_client_hits: int | None = None
    evicted_misses: int | None = None
    #: Fault-plane counters (DESIGN.md §7): populated only by cells run
    #: with an active fault plan; ``None`` (and omitted from persisted
    #: records) everywhere else, so fault-free stores stay byte-identical.
    failed_reads: int | None = None
    degraded_ticks: int | None = None
    breaker_opens: int | None = None
    #: Tiered-storage counters (DESIGN.md §9): populated only by cells
    #: run with an active storage tier; ``None`` (and omitted from
    #: persisted records) everywhere else, so tier-free stores stay
    #: byte-identical.
    tier_hits: int | None = None
    miss_path_hits: int | None = None
    tier_fills: int | None = None
    tier_stall_seconds: float | None = None
    #: Sharded-cache counters (DESIGN.md §10): populated only by cells
    #: run with an active shard layout (``K > 1``); ``None`` (and
    #: omitted from persisted records) everywhere else, so unsharded
    #: stores stay byte-identical.  ``shard_requests``/``shard_hits``
    #: are per-shard, in shard order, and exactly partition the shared
    #: cache's touch totals.
    shard_requests: list[int] | None = None
    shard_hits: list[int] | None = None
    shard_rebalances: int | None = None
    shard_pages_moved: int | None = None
    shard_hop_seconds: float | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"hit-rate {100 * self.cache_hit_rate:.1f}% "
            f"(±{100 * self.hit_rate_std:.1f}) speedup {self.speedup:.2f}x"
        )


@dataclass
class ClientMetrics:
    """One client's accounting in a multi-client serving run.

    ``metrics`` is the client's ordinary :class:`SequenceMetrics`; the
    extra counters attribute its shared-cache traffic.  ``shared_hits``
    and ``shared_misses`` are this client's page touches on the shared
    cache (their sum over all clients equals the cache's own totals --
    a property-tested invariant).  ``cross_client_hits`` are hits on
    pages *another* client prefetched; ``evicted_misses`` are misses on
    pages that had been prefetched but were evicted before use -- the
    contention signature of an undersized shared cache.
    """

    client_id: int
    metrics: SequenceMetrics
    shared_hits: int = 0
    shared_misses: int = 0
    cross_client_hits: int = 0
    evicted_misses: int = 0
    #: Fault-plane accounting (zero without an active fault plan):
    #: serve-path pages whose read exhausted its retries (under faults,
    #: ``shared_misses + failed_reads`` partitions this client's share
    #: of the cache's miss count), queries served degraded to demand
    #: paging behind an open breaker, and breaker trips.
    failed_reads: int = 0
    degraded_ticks: int = 0
    breaker_opens: int = 0
    #: Tiered-storage accounting (zero without an active storage tier):
    #: this client's requests absorbed by the storage-side tier cache,
    #: by the miss-path mechanisms below it, the pages it pulled from
    #: the backing store, and its share of the simulated fill stalls
    #: (DESIGN.md §9).
    tier_hits: int = 0
    miss_path_hits: int = 0
    tier_fills: int = 0
    tier_stall_seconds: float = 0.0
    #: Sharded-cache accounting (zero without an active shard layout):
    #: this client's share of cross-shard hop time on the demand path
    #: (DESIGN.md §10).
    shard_hop_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.metrics.cache_hit_rate

    @property
    def page_hit_rate(self) -> float:
        return self.metrics.page_hit_rate


@dataclass
class ServeReport:
    """What one :class:`~repro.sim.serve.ServingSimulator` run measured.

    Pools the per-client metrics with the shared cache's own counters.
    ``n_ticks`` is how many round-robin scheduler passes the run took
    (staggered clients idle through their first ticks).
    """

    clients: list[ClientMetrics]
    capacity_pages: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_insertions: int
    n_ticks: int
    #: Whether the run's disk carried a fault plan.  Gates the fault
    #: counters' persistence: fault-free serving cells keep serializing
    #: without them, so existing stored records stay byte-identical.
    faults_active: bool = False
    #: Whether the run's disk carried an active storage tier; gates the
    #: tier counters' persistence the same way (DESIGN.md §9).
    tiers_active: bool = False
    #: Whether the run's cache was sharded (``K > 1``); gates the shard
    #: counters' persistence the same way (DESIGN.md §10).
    shards_active: bool = False
    #: Per-shard demand touches and hits, in shard order (``None`` when
    #: unsharded).  Sums equal ``cache_hits + cache_misses`` and
    #: ``cache_hits``: the shards exactly partition the request stream.
    shard_requests: list[int] | None = None
    shard_hits: list[int] | None = None
    #: Rebalancer activity over the run (``None`` when unsharded).
    shard_rebalances: int | None = None
    shard_pages_moved: int | None = None

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    @property
    def per_client_hit_rates(self) -> list[float]:
        """Object-weighted hit rate of each client, in client order."""
        return [client.cache_hit_rate for client in self.clients]

    @property
    def aggregate_hit_rate(self) -> float:
        """Object-weighted hit rate pooled over every client."""
        return self.to_aggregate().cache_hit_rate

    @property
    def cross_client_hits(self) -> int:
        """Hits served by a page some *other* client prefetched."""
        return sum(client.cross_client_hits for client in self.clients)

    @property
    def evicted_misses(self) -> int:
        """Misses on pages prefetched but evicted before use."""
        return sum(client.evicted_misses for client in self.clients)

    @property
    def cross_client_hit_rate(self) -> float:
        """Fraction of all shared-cache hits served across clients."""
        hits = sum(client.shared_hits for client in self.clients)
        if hits == 0:
            return 0.0
        return self.cross_client_hits / hits

    @property
    def failed_reads(self) -> int:
        """Serve-path pages whose read exhausted its retries."""
        return sum(client.failed_reads for client in self.clients)

    @property
    def degraded_ticks(self) -> int:
        """Queries served in demand-paging degradation, fleet-wide."""
        return sum(client.degraded_ticks for client in self.clients)

    @property
    def breaker_opens(self) -> int:
        """Circuit-breaker trips across the fleet."""
        return sum(client.breaker_opens for client in self.clients)

    @property
    def tier_hits(self) -> int:
        """Requests absorbed by the storage-side tier cache, fleet-wide."""
        return sum(client.tier_hits for client in self.clients)

    @property
    def miss_path_hits(self) -> int:
        """Requests absorbed by the miss-path mechanisms, fleet-wide."""
        return sum(client.miss_path_hits for client in self.clients)

    @property
    def tier_fills(self) -> int:
        """Pages pulled from the backing store into the tier, fleet-wide."""
        return sum(client.tier_fills for client in self.clients)

    @property
    def tier_stall_seconds(self) -> float:
        """Simulated fill-stall seconds charged, fleet-wide."""
        return sum(client.tier_stall_seconds for client in self.clients)

    @property
    def shard_hop_seconds(self) -> float:
        """Simulated cross-shard hop seconds charged, fleet-wide."""
        return sum(client.shard_hop_seconds for client in self.clients)

    def to_aggregate(self) -> AggregateMetrics:
        """Pool the clients exactly like sequences of one experiment cell.

        Each client counts as one "sequence" of the aggregate, so
        ``per_sequence_hit_rates`` carries the per-client hit rates into
        the result store unchanged -- serving cells persist through the
        same schema as single-client cells.  The contention counters
        (``cross_client_hits``, ``evicted_misses``) ride along as
        additive keys, so a stored serving cell keeps the numbers that
        distinguish sharing wins from eviction pressure.
        """
        pooled = aggregate([client.metrics for client in self.clients])
        pooled = replace(
            pooled,
            cross_client_hits=self.cross_client_hits,
            evicted_misses=self.evicted_misses,
        )
        if self.faults_active:
            pooled = replace(
                pooled,
                failed_reads=self.failed_reads,
                degraded_ticks=self.degraded_ticks,
                breaker_opens=self.breaker_opens,
            )
        if self.tiers_active:
            pooled = replace(
                pooled,
                tier_hits=self.tier_hits,
                miss_path_hits=self.miss_path_hits,
                tier_fills=self.tier_fills,
                tier_stall_seconds=self.tier_stall_seconds,
            )
        if self.shards_active:
            pooled = replace(
                pooled,
                shard_requests=self.shard_requests,
                shard_hits=self.shard_hits,
                shard_rebalances=self.shard_rebalances,
                shard_pages_moved=self.shard_pages_moved,
                shard_hop_seconds=self.shard_hop_seconds,
            )
        return pooled

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_clients} clients: hit-rate {100 * self.aggregate_hit_rate:.1f}% "
            f"cross-client {self.cross_client_hits} evicted-misses {self.evicted_misses}"
        )


@dataclass(frozen=True)
class LatencyReport:
    """Latency distribution of one serving (reporting) interval.

    The serving daemon (:mod:`repro.serve`) measures *wall-clock*
    request latency -- the number hit-rate alone hides -- and reports it
    as percentiles per reporting interval.  Reports keep their full
    sorted sample list (exact quantiles; serving intervals hold at most
    tens of thousands of samples, so retention is cheap and exactness
    beats a sketch), which makes :meth:`merge` *associative*: merging is
    a sorted union plus counter sums, so interval reports can be folded
    into run totals in any grouping and always agree with one report
    computed over the union of samples.  That associativity is
    hypothesis-checked in ``tests/test_latency.py``.

    ``samples`` are seconds, sorted ascending.  ``shed`` counts requests
    rejected by admission control (they have no latency: they were never
    served); ``errors`` counts requests that failed outright.
    """

    samples: tuple[float, ...]
    shed: int = 0
    errors: int = 0
    duration_seconds: float = 0.0

    @classmethod
    def from_values(
        cls,
        values,
        *,
        shed: int = 0,
        errors: int = 0,
        duration_seconds: float = 0.0,
    ) -> "LatencyReport":
        """Build a report from unsorted latency samples (seconds)."""
        return cls(
            samples=tuple(sorted(float(v) for v in values)),
            shed=shed,
            errors=errors,
            duration_seconds=duration_seconds,
        )

    @property
    def count(self) -> int:
        """Requests actually served (shed and errored excluded)."""
        return len(self.samples)

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile; NaN on an empty report.

        Nearest-rank (the smallest sample with at least ``q`` of the
        distribution at or below it) never interpolates, so a reported
        p99 is a latency some request actually experienced, and
        quantiles are monotone in ``q`` by construction.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if not self.samples:
            return math.nan
        rank = max(1, math.ceil(q * len(self.samples)))
        return self.samples[rank - 1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def max(self) -> float:
        return self.samples[-1] if self.samples else math.nan

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def throughput_qps(self) -> float:
        """Served requests per second of interval wall time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.count / self.duration_seconds

    def merge(self, other: "LatencyReport") -> "LatencyReport":
        """Fold two interval reports into one (associative, commutative)."""
        merged = np.concatenate(
            [
                np.asarray(self.samples, dtype=np.float64),
                np.asarray(other.samples, dtype=np.float64),
            ]
        )
        merged.sort(kind="stable")
        return LatencyReport(
            samples=tuple(merged.tolist()),
            shed=self.shed + other.shed,
            errors=self.errors + other.errors,
            duration_seconds=self.duration_seconds + other.duration_seconds,
        )

    def summary(self) -> dict:
        """The percentile summary serialized into latency JSON reports."""
        return {
            "count": self.count,
            "shed": self.shed,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "throughput_qps": self.throughput_qps,
            "p50_ms": 1e3 * self.p50,
            "p99_ms": 1e3 * self.p99,
            "p999_ms": 1e3 * self.p999,
            "max_ms": 1e3 * self.max,
            "mean_ms": 1e3 * self.mean,
        }

    def to_dict(self) -> dict:
        """Exact serialization (summary plus the raw samples, in ms)."""
        record = self.summary()
        record["samples_ms"] = [1e3 * s for s in self.samples]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "LatencyReport":
        return cls(
            samples=tuple(s / 1e3 for s in record["samples_ms"]),
            shed=int(record.get("shed", 0)),
            errors=int(record.get("errors", 0)),
            duration_seconds=float(record.get("duration_seconds", 0.0)),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.count} samples: p50 {1e3 * self.p50:.2f}ms "
            f"p99 {1e3 * self.p99:.2f}ms p999 {1e3 * self.p999:.2f}ms "
            f"(shed {self.shed}, errors {self.errors})"
        )


def aggregate(sequences: list[SequenceMetrics]) -> AggregateMetrics:
    """Pool per-sequence metrics into one experiment-cell result.

    The hit rate is page-weighted across sequences (total hits over
    total requests); the speedup is the ratio of pooled times, matching
    how a wall-clock experiment would measure both.
    """
    if not sequences:
        raise ValueError("aggregate() needs at least one sequence")
    needed = sum(r.objects_needed for s in sequences for r in s.eligible)
    hit = sum(r.objects_hit for s in sequences for r in s.eligible)
    response = sum(s.response_seconds for s in sequences)
    cold = sum(s.cold_seconds for s in sequences)
    rates = [s.cache_hit_rate for s in sequences]
    return AggregateMetrics(
        n_sequences=len(sequences),
        cache_hit_rate=hit / needed if needed else 0.0,
        hit_rate_std=float(np.std(rates)) if len(rates) > 1 else 0.0,
        speedup=cold / response if response > 0 else float("inf"),
        response_seconds=response,
        cold_seconds=cold,
        graph_build_seconds=sum(s.graph_build_seconds for s in sequences),
        prediction_seconds=sum(s.prediction_seconds for s in sequences),
        per_sequence_hit_rates=rates,
    )
