"""Iterative candidate pruning (paper §4.3).

Every query result contains many structures; the user follows exactly
one.  The tracker exploits the defining property of guided sequences:
the guiding structure intersects *every* query.  Structures that exit
the previous query and enter the current one stay candidates; everything
else is pruned.  After a handful of queries the candidate set typically
collapses to the one structure followed ("oftentimes identified after
six queries").  If every candidate disappears -- the user abandoned the
structure -- the tracker resets to all structures of the latest result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ScoutConfig
from repro.core.exits import split_entries_exits
from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.graph.spatial_graph import SpatialGraph
from repro.graph.traversal import (
    Crossing,
    refine_crossing_direction,
    region_crossings_grouped,
)

__all__ = ["CandidateTrack", "CandidateTracker"]


@dataclass
class CandidateTrack:
    """One structure the user may be following."""

    objects: frozenset[int]
    exits: list[Crossing]
    entries: list[Crossing] = field(default_factory=list)
    age: int = 0

    @property
    def has_exits(self) -> bool:
        return bool(self.exits)


class CandidateTracker:
    """Maintains the candidate set across a guided query sequence."""

    def __init__(self, config: ScoutConfig | None = None) -> None:
        self.config = config or ScoutConfig()
        self.tracks: list[CandidateTrack] = []
        self.resets = 0
        self.last_traversal_work = 0
        self._history_sizes: list[int] = []

    def reset(self) -> None:
        """Forget all candidates (start of a new sequence)."""
        self.tracks = []
        self.resets = 0
        self.last_traversal_work = 0
        self._history_sizes = []

    @property
    def candidate_sizes(self) -> list[int]:
        """Candidate-set size after each update (for Fig 16-style analysis)."""
        return list(self._history_sizes)

    # -- matching helpers ---------------------------------------------------------

    @staticmethod
    def _object_overlap(track: CandidateTrack, component: set[int]) -> bool:
        return not track.objects.isdisjoint(component)

    @staticmethod
    def _proximity_match(
        track: CandidateTrack,
        entries: list[Crossing],
        tolerance: float,
    ) -> bool:
        """Does any entry continue one of the track's exits?

        An entry matches when it lies within ``tolerance`` of the ray
        shot from a track exit along the exit direction (the linear
        extrapolation of §4.4), at a non-negative travel distance.
        """
        for exit_crossing in track.exits:
            origin = exit_crossing.point
            direction = exit_crossing.direction
            for entry in entries:
                rel = entry.point - origin
                along = float(rel @ direction)
                if along < -tolerance:
                    continue
                lateral = rel - along * direction
                if float(np.linalg.norm(lateral)) <= tolerance:
                    return True
        return False

    # -- the pruning step ---------------------------------------------------------

    def update(
        self,
        dataset: Dataset,
        graph: SpatialGraph,
        region: AABB,
        movement: np.ndarray | None,
    ) -> list[CandidateTrack]:
        """Ingest the latest query's graph and prune the candidate set.

        ``movement`` is the displacement from the previous query center
        (``None`` for the first query).  Returns the new tracks.
        """
        side = float(np.cbrt(max(region.volume, 1e-30)))
        tolerance = self.config.match_distance_factor * side

        components = graph.connected_components()
        traversal_work = 0

        # One vectorized clipping pass extracts every component's
        # boundary crossings; the per-component loop below only does the
        # (cheap) candidate bookkeeping.
        component_ids = [
            np.fromiter(component, dtype=np.int64) for component in components
        ]
        all_crossings = region_crossings_grouped(dataset, component_ids, region)

        new_tracks: list[CandidateTrack] = []
        unmatched: list[CandidateTrack] = []
        for component, object_ids, crossings in zip(
            components, component_ids, all_crossings
        ):
            entries, exits = split_entries_exits(crossings, region.center, movement)
            # Smooth exit directions over the structure's trailing window
            # so the linear extrapolation follows the fiber's local
            # trend rather than the last segment's jitter.
            exits = [
                refine_crossing_direction(dataset, object_ids, e, radius=side * 0.3)
                for e in exits
            ]
            track = CandidateTrack(frozenset(component), exits, entries)

            if not self.tracks:
                # First query (or fresh reset state): every structure
                # that leaves the query region is a candidate.
                if track.has_exits:
                    new_tracks.append(track)
                    traversal_work += len(component)
                continue

            matched = any(
                self._object_overlap(old, component)
                or self._proximity_match(old, entries, tolerance)
                for old in self.tracks
            )
            if matched:
                track.age = 1 + max(
                    (old.age for old in self.tracks if self._object_overlap(old, component)),
                    default=0,
                )
                new_tracks.append(track)
                traversal_work += len(component)
            else:
                unmatched.append(track)

        if self.tracks and not new_tracks and self.config.reset_on_no_match:
            # The user abandoned the structure: the candidate set again
            # contains all structures of the last range query result.
            self.resets += 1
            new_tracks = [t for t in unmatched if t.has_exits]
            traversal_work += sum(len(t.objects) for t in new_tracks)

        # Keep only candidates that can predict something.
        with_exits = [t for t in new_tracks if t.has_exits]
        if with_exits:
            new_tracks = with_exits

        self.tracks = new_tracks
        self.last_traversal_work = traversal_work
        self._history_sizes.append(len(new_tracks))
        return new_tracks

    # -- aggregate views ---------------------------------------------------------

    def all_exits(self) -> list[tuple[CandidateTrack, Crossing]]:
        """Every (track, exit) pair of the current candidate set."""
        return [(track, crossing) for track in self.tracks for crossing in track.exits]
