"""Deep and broad prefetching strategies (paper §5.2).

With multiple candidate structures, SCOUT must decide where to spend
the prefetch window:

- **Deep** (§5.2.1): pick one candidate at random and spend the whole
  window on it.  Expected accuracy D/|C| with high variance.
- **Broad** (§5.2.2): split the window equally over all candidates.
  Same expected accuracy, much lower variance -- the default.

Broad prefetching with many exits would issue many small queries; the
number of locations is limited to ``d`` by k-means clustering the exit
locations and picking a random exit per cluster.  Exits whose predicted
locations nearly coincide are merged so overlapping regions are not
prefetched twice (the R1 ∪ R2 expansion of §5.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PrefetchTarget
from repro.core.candidates import CandidateTracker
from repro.core.config import ScoutConfig
from repro.core.kmeans import kmeans
from repro.graph.traversal import Crossing

__all__ = ["plan_targets"]


def _merge_close_targets(
    targets: list[PrefetchTarget], merge_distance: float
) -> list[PrefetchTarget]:
    """Merge targets whose anchors nearly coincide, summing their shares."""
    merged: list[PrefetchTarget] = []
    for target in targets:
        for i, existing in enumerate(merged):
            if float(np.linalg.norm(existing.anchor - target.anchor)) <= merge_distance:
                combined_direction = (
                    existing.direction * existing.share + target.direction * target.share
                )
                merged[i] = PrefetchTarget(
                    anchor=(existing.anchor * existing.share + target.anchor * target.share)
                    / (existing.share + target.share),
                    direction=combined_direction,
                    share=existing.share + target.share,
                )
                break
        else:
            merged.append(target)
    return merged


def _target_from_exit(crossing: Crossing, gap: float, share: float) -> PrefetchTarget:
    """Prefetch target at the linear extrapolation of an exit (§4.4, §5.3)."""
    return PrefetchTarget(
        anchor=crossing.extrapolate(gap),
        direction=crossing.direction,
        share=share,
    )


def plan_targets(
    tracker: CandidateTracker,
    config: ScoutConfig,
    rng: np.random.Generator,
    side: float,
    gap: float,
) -> list[PrefetchTarget]:
    """Turn the candidate set into prioritized prefetch targets."""
    pairs = tracker.all_exits()
    if not pairs:
        return []
    crossings = [crossing for _, crossing in pairs]

    if config.strategy == "deep":
        chosen = crossings[int(rng.integers(len(crossings)))]
        return [_target_from_exit(chosen, gap, 1.0)]

    # Broad strategy: every exit gets an equal slice, clustered down to
    # at most ``max_prefetch_locations`` locations.
    if len(crossings) > config.max_prefetch_locations:
        points = np.array([c.point for c in crossings])
        _, labels = kmeans(points, config.max_prefetch_locations, rng)
        selected: list[Crossing] = []
        for cluster in range(config.max_prefetch_locations):
            members = [c for c, label in zip(crossings, labels) if label == cluster]
            if members:
                selected.append(members[int(rng.integers(len(members)))])
        crossings = selected

    share = 1.0 / len(crossings)
    targets = [_target_from_exit(crossing, gap, share) for crossing in crossings]
    return _merge_close_targets(targets, merge_distance=side * 0.5)
