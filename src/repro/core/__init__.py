"""SCOUT: the structure-aware prefetcher (paper §4-§6).

The pipeline per query: build an approximate proximity graph of the
result (:mod:`repro.graph`), split it into connected components (the
structures present in the query), prune the candidate set by matching
components against the candidates of the previous query (§4.3), find
where each surviving candidate exits the query region (§4.4), and
prefetch incrementally along the linear extrapolation of those exits
(§5).  SCOUT-OPT (§6) additionally exploits a neighborhood-aware index
for sparse graph construction and gap traversal.
"""

from repro.core.config import ScoutConfig
from repro.core.candidates import CandidateTrack, CandidateTracker
from repro.core.kmeans import kmeans
from repro.core.scout import ScoutPrefetcher
from repro.core.scout_opt import ScoutOptPrefetcher

__all__ = [
    "CandidateTrack",
    "CandidateTracker",
    "ScoutConfig",
    "ScoutOptPrefetcher",
    "ScoutPrefetcher",
    "kmeans",
]
