"""The SCOUT prefetcher (paper §4-§5).

Per observed query, SCOUT:

1. builds the approximate proximity graph of the result content
   (grid hashing, or the dataset's explicit mesh adjacency);
2. updates the candidate set by iterative pruning (§4.3);
3. finds the exit locations of the surviving candidates and linearly
   extrapolates them past the estimated gap (§4.4, §5.3);
4. emits prefetch targets according to the deep or broad strategy
   (§5.2); the simulator expands them into incremental prefetch
   queries (§5.1).

The prediction's simulated CPU cost (graph build + traversal) is charged
against the prefetch window, matching the Figure-2 timeline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.core.candidates import CandidateTracker
from repro.core.config import (
    SIM_SECONDS_PER_BUILD_UNIT,
    SIM_SECONDS_PER_TRAVERSAL_UNIT,
    ScoutConfig,
)
from repro.core.exits import estimate_gap
from repro.core.strategies import plan_targets
from repro.datagen.dataset import Dataset
from repro.graph.builder import build_graph

__all__ = ["ScoutPrefetcher"]


class ScoutPrefetcher(Prefetcher):
    """Structure-aware prefetching from past query *content*."""

    name = "scout"

    def __init__(self, dataset: Dataset, config: ScoutConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or ScoutConfig()
        self.tracker = CandidateTracker(self.config)
        self._rng = np.random.default_rng(self.config.rng_seed)
        self._centers: list[np.ndarray] = []
        self._last_side: float = 1.0
        self._last_prediction_cost = 0.0
        self._last_build_cost = 0.0
        # Accounting the analysis section (§8) reports on:
        self.last_build_report = None
        self.last_graph_memory_bytes = 0
        self.total_build_wall_seconds = 0.0
        self.total_build_work_units = 0

    # -- Prefetcher API -------------------------------------------------------

    def begin_sequence(self) -> None:
        self.tracker.reset()
        self._centers = []
        self._last_prediction_cost = 0.0
        self._last_build_cost = 0.0
        self.last_build_report = None

    def observe(self, observed: ObservedQuery) -> None:
        region = observed.bounds
        movement = None
        if self._centers:
            movement = observed.center - self._centers[-1]
        self._centers.append(observed.center)
        self._last_side = observed.side

        report = self._build_graph(observed)
        self.last_build_report = report
        self.total_build_wall_seconds += report.wall_seconds
        self.total_build_work_units += report.work_units

        self.tracker.update(self.dataset, report.graph, region, movement)
        self.last_graph_memory_bytes = self._memory_bytes(report)

        self._last_build_cost = SIM_SECONDS_PER_BUILD_UNIT * report.work_units
        self._last_prediction_cost = (
            self._last_build_cost
            + SIM_SECONDS_PER_TRAVERSAL_UNIT * self.tracker.last_traversal_work
        )

    def plan(self) -> list[PrefetchTarget]:
        gap = estimate_gap(self._centers, self._last_side)
        return plan_targets(self.tracker, self.config, self._rng, self._last_side, gap)

    def prediction_cost_seconds(self) -> float:
        if not self.config.charge_prediction_cost:
            return 0.0
        return self._last_prediction_cost

    def graph_build_cost_seconds(self) -> float:
        return self._last_build_cost

    # -- hooks for SCOUT-OPT --------------------------------------------------------

    def _build_graph(self, observed: ObservedQuery):
        """Build the full result graph (SCOUT-OPT overrides with sparse)."""
        return build_graph(
            self.dataset,
            observed.result_object_ids,
            observed.bounds,
            resolution=self.config.grid_resolution,
        )

    def _memory_bytes(self, report) -> int:
        """Memory of the prediction structures (§8.2 reports ~24 %)."""
        return report.graph.memory_bytes()

    # -- introspection ----------------------------------------------------------------

    @property
    def n_candidates(self) -> int:
        return len(self.tracker.tracks)

    def estimated_gap(self) -> float:
        return estimate_gap(self._centers, self._last_side)
