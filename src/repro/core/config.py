"""SCOUT configuration knobs.

Defaults follow the paper's described configuration: fine grid
resolution (§4.2's "use a fine resolution and work with sparser
approximate graph representation"), broad prefetching (§5.2.2's
defensive default), k-means-limited prefetch locations, and a gap I/O
budget of 10 % of the last query's pages (§7.4.6).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScoutConfig", "SIM_SECONDS_PER_BUILD_UNIT", "SIM_SECONDS_PER_TRAVERSAL_UNIT"]

#: Simulated CPU seconds per graph-building work unit (cell insertion or
#: pairwise connection).  Calibrated so graph building lands near the
#: ~15 % share of query response time reported in Figure 14.
SIM_SECONDS_PER_BUILD_UNIT = 4.0e-6

#: Simulated CPU seconds per traversal step (vertex or edge visit);
#: prediction is "up to 6 %" of response time in Figure 14.
SIM_SECONDS_PER_TRAVERSAL_UNIT = 2.0e-6


@dataclass(frozen=True)
class ScoutConfig:
    """Tunable parameters of the SCOUT prefetcher."""

    #: Total grid cells per query region for grid hashing (Fig 13e).
    grid_resolution: int = 4096

    #: ``"broad"`` (§5.2.2, default) or ``"deep"`` (§5.2.1).
    strategy: str = "broad"

    #: Maximum prefetch locations ``d``; more exits are clustered with
    #: k-means and one exit is picked per cluster (§5.2.2).
    max_prefetch_locations: int = 4

    #: Candidate matching distance, as a fraction of the query side:
    #: a component continues a track when its entry crossing lies within
    #: this distance of the track's extrapolated exit.
    match_distance_factor: float = 0.6

    #: On losing every candidate, re-seed with all structures of the
    #: latest result (§4.3's reset behaviour).
    reset_on_no_match: bool = True

    #: Charge the simulated prediction cost against the prefetch window.
    charge_prediction_cost: bool = True

    #: Gap traversal I/O budget as a fraction of the last query's pages
    #: (SCOUT-OPT only; §7.4.6 uses 10 %).
    gap_io_budget_fraction: float = 0.10

    #: Seed of the internal RNG (deep strategy picks, k-means seeding).
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.grid_resolution < 1:
            raise ValueError("grid_resolution must be >= 1")
        if self.strategy not in ("broad", "deep"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.max_prefetch_locations < 1:
            raise ValueError("max_prefetch_locations must be >= 1")
        if self.match_distance_factor <= 0:
            raise ValueError("match_distance_factor must be positive")
        if not 0.0 <= self.gap_io_budget_fraction <= 1.0:
            raise ValueError("gap_io_budget_fraction must be in [0, 1]")
