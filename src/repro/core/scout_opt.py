"""SCOUT-OPT: index-assisted optimizations (paper §6).

SCOUT-OPT couples SCOUT with a neighborhood-aware index (FLAT) that
supports ordered page retrieval.  Two optimizations follow:

- **Sparse graph construction** (§6.2): pages at the previous query's
  exit locations are retrieved first and the graph is grown outward from
  them, so only the subgraph *reachable from the candidate entries* is
  built and traversed.  Prediction finishes while the remaining result
  pages stream in, so its cost is overlapped with I/O and not charged
  against the prefetch window.  Memory drops from ~24 % of the result
  footprint to ~6 % (§8.2).
- **Gap traversal** (§6.3): instead of blind linear extrapolation across
  a gap, SCOUT-OPT crawls the index's neighbor pages along the candidate
  structure *through* the gap region, following its bends and
  bifurcations, under an I/O budget of 10 % of the last query's pages.
  The crawled pages are prediction I/O charged to the prefetch window.

In no-gap workloads SCOUT-OPT and SCOUT predict identically (§7.1
footnote: "In the absence of gaps SCOUT and SCOUT-OPT have the same
performance").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ObservedQuery, PrefetchTarget
from repro.core.config import SIM_SECONDS_PER_TRAVERSAL_UNIT, ScoutConfig
from repro.core.exits import estimate_gap
from repro.core.scout import ScoutPrefetcher
from repro.core.strategies import plan_targets
from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.index.flat import FlatIndex

__all__ = ["ScoutOptPrefetcher"]

_EPS = 1e-9


class ScoutOptPrefetcher(ScoutPrefetcher):
    """SCOUT plus sparse construction and gap traversal over FLAT."""

    name = "scout-opt"

    def __init__(
        self,
        dataset: Dataset,
        index: FlatIndex,
        config: ScoutConfig | None = None,
    ) -> None:
        if not isinstance(index, FlatIndex):
            raise TypeError(
                "SCOUT-OPT requires an index with neighborhood information "
                f"(FlatIndex); got {type(index).__name__}"
            )
        super().__init__(dataset, config)
        self.index = index
        self._pending_gap_pages: list[int] = []
        self._gap_targets: list[PrefetchTarget] = []
        self.total_gap_pages = 0

    # -- sparse construction ------------------------------------------------------

    def observe(self, observed: ObservedQuery) -> None:
        self._pending_gap_pages = []
        self._gap_targets = []
        super().observe(observed)
        # Sparse construction bounds the retained graph to the subgraph
        # reachable from the candidate structures; §8.2 reports this at
        # ~6 % of the result footprint versus ~24 % for the full graph.
        if self.last_build_report is not None and self.tracker.tracks:
            reachable: set[int] = set()
            graph = self.last_build_report.graph
            for track in self.tracker.tracks:
                reachable |= graph.reachable_from(track.objects)
            self.last_graph_memory_bytes = graph.subgraph(reachable).memory_bytes()
        # Ordered retrieval lets prediction overlap with result I/O; the
        # residual charge is only the final traversal of the candidate
        # subgraph (§6.2: "the prediction process is already finished
        # once the query result is retrieved").
        self._last_prediction_cost = (
            SIM_SECONDS_PER_TRAVERSAL_UNIT * self.tracker.last_traversal_work
        )
        self._last_build_cost = 0.0  # overlapped with result retrieval (§6.2)

        gap = estimate_gap(self._centers, self._last_side)
        if gap > self._last_side * 0.05:
            self._prepare_gap_traversal(observed, gap)

    # -- gap traversal ------------------------------------------------------------

    def _prepare_gap_traversal(self, observed: ObservedQuery, gap: float) -> None:
        """Crawl neighbor pages through the gap along each candidate exit."""
        pages_of_last_query = self.index.pages_for_region(observed.bounds)
        budget_pages = max(
            1, int(self.config.gap_io_budget_fraction * len(pages_of_last_query))
        )

        used_pages: list[int] = []
        targets: list[PrefetchTarget] = []
        exits = [crossing for _, crossing in self.tracker.all_exits()]
        if not exits:
            return
        per_exit_budget = max(1, budget_pages // len(exits))
        share = 1.0 / len(exits)
        walks = self._traverse_gaps(
            [crossing.point for crossing in exits],
            [crossing.direction for crossing in exits],
            gap,
            per_exit_budget,
        )
        for point, direction, pages in walks:
            used_pages.extend(pages)
            targets.append(PrefetchTarget(anchor=point, direction=direction, share=share))
        self._pending_gap_pages = used_pages
        self._gap_targets = targets
        self.total_gap_pages += len(used_pages)

    def _traverse_one_gap(
        self,
        start: np.ndarray,
        direction: np.ndarray,
        gap: float,
        page_budget: int,
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Follow the structure through the gap, page probe by page probe.

        Single-exit convenience wrapper around :meth:`_traverse_gaps`.
        """
        return self._traverse_gaps([start], [direction], gap, page_budget)[0]

    def _traverse_gaps(
        self,
        starts: list[np.ndarray],
        directions: list[np.ndarray],
        gap: float,
        page_budget: int,
    ) -> list[tuple[np.ndarray, np.ndarray, list[int]]]:
        """Crawl every exit's gap in lockstep, batching the index probes.

        Each walk probes a small region ahead of its current point,
        re-estimates the local structure direction from the objects
        found there, and advances; when its page budget runs out the
        remaining distance falls back to linear extrapolation (§6.3's
        backup mechanism).  Walks are independent, so the per-step
        probes of all still-active walks are resolved through one
        batched :meth:`~repro.index.base.SpatialIndex.query_many` call
        -- results are identical to running each walk on its own.
        """
        probe_side = self._last_side * 0.4

        walks = []
        for start, direction in zip(starts, directions):
            point = np.asarray(start, dtype=np.float64).copy()
            heading = np.asarray(direction, dtype=np.float64).copy()
            norm = np.linalg.norm(heading)
            degenerate = bool(norm < _EPS)
            walks.append(
                {
                    "point": point,
                    "heading": heading if degenerate else heading / norm,
                    "pages": [],
                    "travelled": 0.0,
                    "degenerate": degenerate,
                    "active": not degenerate and 0.0 < gap and 0 < page_budget,
                }
            )

        while True:
            active = [walk for walk in walks if walk["active"]]
            if not active:
                break
            probes = [
                AABB.from_center_extent(
                    walk["point"] + walk["heading"] * (probe_side / 2.0), probe_side
                )
                for walk in active
            ]
            for walk, result in zip(active, self.index.query_many(probes)):
                walk["pages"].extend(int(p) for p in result.page_ids)
                if result.n_objects == 0:
                    walk["active"] = False
                    continue
                new_heading = self._local_direction(result.object_ids, walk["heading"])
                if new_heading is None:
                    walk["active"] = False
                    continue
                advance = probe_side * 0.5
                walk["point"] = walk["point"] + new_heading * advance
                walk["heading"] = new_heading
                walk["travelled"] += advance
                if not (walk["travelled"] < gap and len(walk["pages"]) < page_budget):
                    walk["active"] = False

        out = []
        for walk in walks:
            if walk["degenerate"]:
                out.append((walk["point"], walk["heading"], walk["pages"]))
                continue
            remaining = max(0.0, gap - walk["travelled"])
            out.append(
                (
                    walk["point"] + walk["heading"] * remaining,
                    walk["heading"],
                    walk["pages"],
                )
            )
        return out

    def _local_direction(self, object_ids: np.ndarray, heading: np.ndarray) -> np.ndarray | None:
        """Average direction of nearby objects aligned with the heading."""
        p0 = self.dataset.p0[object_ids]
        p1 = self.dataset.p1[object_ids]
        deltas = p1 - p0
        norms = np.linalg.norm(deltas, axis=1)
        valid = norms > _EPS
        if not np.any(valid):
            return None
        directions = deltas[valid] / norms[valid, None]
        alignment = directions @ heading
        # Orient every segment with the travel direction.
        directions = directions * np.sign(alignment)[:, None]
        aligned = np.abs(alignment) > 0.2
        if not np.any(aligned):
            return None
        mean_direction = directions[aligned].mean(axis=0)
        norm = np.linalg.norm(mean_direction)
        if norm < _EPS:
            return None
        return mean_direction / norm

    # -- Prefetcher API ------------------------------------------------------------

    def plan(self) -> list[PrefetchTarget]:
        if self._gap_targets:
            return self._gap_targets
        gap = estimate_gap(self._centers, self._last_side)
        return plan_targets(self.tracker, self.config, self._rng, self._last_side, gap)

    def gap_io_pages(self) -> list[int]:
        pages = self._pending_gap_pages
        self._pending_gap_pages = []
        return pages

    def begin_sequence(self) -> None:
        super().begin_sequence()
        self._pending_gap_pages = []
        self._gap_targets = []
