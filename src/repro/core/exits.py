"""Exit/entry classification of boundary crossings (paper §4.3-§4.4).

A structure crossing the query boundary does so either on the side the
user came from (an *entry*: it connects to the previous query) or on the
far side (an *exit*: a place the user may go next).  The classifier uses
the observed movement direction of the sequence; for the first query no
movement exists and every crossing is a potential exit.
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import Crossing

__all__ = ["split_entries_exits", "estimate_gap"]

_EPS = 1e-12


def split_entries_exits(
    crossings: list[Crossing],
    region_center: np.ndarray,
    movement: np.ndarray | None,
) -> tuple[list[Crossing], list[Crossing]]:
    """Partition crossings into ``(entries, exits)``.

    A crossing is an exit when it lies on the leading half of the query
    region relative to the movement direction, or -- for crossings near
    the dividing plane -- when the structure's outward direction points
    with the movement.  Without movement information everything is an
    exit (first query of a sequence: the user may go anywhere).
    """
    if movement is None or np.linalg.norm(movement) < _EPS:
        return [], list(crossings)
    forward = movement / np.linalg.norm(movement)
    entries: list[Crossing] = []
    exits: list[Crossing] = []
    for crossing in crossings:
        offset = float((crossing.point - region_center) @ forward)
        heading = float(crossing.direction @ forward)
        # Positional test dominates; the heading breaks near-plane ties.
        score = offset + 0.25 * heading * np.linalg.norm(crossing.point - region_center)
        if score > 0:
            exits.append(crossing)
        else:
            entries.append(crossing)
    return entries, exits


def estimate_gap(centers: list[np.ndarray], side: float) -> float:
    """Estimated boundary-to-boundary gap of the next query (§5.3).

    The paper uses the distance between the last two queries as the
    prediction for the next gap; gaps are "typically governed by a
    particular characteristic of the use case ... and remain the same
    throughout a sequence".
    """
    if len(centers) < 2:
        return 0.0
    spacing = float(np.linalg.norm(centers[-1] - centers[-2]))
    return max(0.0, spacing - side)
