"""Deterministic k-means (Lloyd's algorithm with k-means++ seeding).

Broad prefetching limits the number of prefetch locations by clustering
candidate exit locations and picking one exit per cluster (§5.2.2: "We
use a k-means approach to find d clusters ... Because k-means has a
smoothed polynomial complexity, it does not impose an undue overhead").
A tiny self-contained implementation keeps the core dependency-free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans"]


def _kmeans_pp_seeds(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ initial centers."""
    n = len(points)
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centers; reuse any point.
            centers[i:] = points[int(rng.integers(n))]
            break
        probabilities = closest_sq / total
        choice = int(rng.choice(n, p=probabilities))
        centers[i] = points[choice]
        closest_sq = np.minimum(closest_sq, np.sum((points - centers[i]) ** 2, axis=1))
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``k`` groups.

    Returns ``(centers, labels)``.  When ``k >= len(points)`` every point
    is its own cluster.  Empty clusters are re-seeded on the farthest
    point, so exactly ``k`` clusters are always returned.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if k < 1:
        raise ValueError("k must be >= 1")
    n = len(points)
    if k >= n:
        return points.copy(), np.arange(n)

    centers = _kmeans_pp_seeds(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        for cluster in range(k):
            members = points[new_labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster on the point farthest from
                # its current center.
                farthest = int(np.argmax(distances[np.arange(n), new_labels]))
                centers[cluster] = points[farthest]
                new_labels[farthest] = cluster
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return centers, labels
