"""One-call end-to-end experiment, used by the README and smoke tests."""

from __future__ import annotations

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    NoPrefetcher,
    StraightLinePrefetcher,
)
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import ExperimentResult, run_experiment
from repro.workload import microbenchmark

__all__ = ["quick_experiment"]


def quick_experiment(
    prefetcher: str = "scout",
    benchmark: str = "adhoc_stat",
    n_neurons: int = 40,
    n_sequences: int = 5,
    seed: int = 7,
) -> ExperimentResult:
    """Run one microbenchmark cell on a small synthetic tissue.

    ``prefetcher`` is one of ``scout``, ``scout-opt``, ``ewma``,
    ``straight-line``, ``hilbert``, ``none``.
    """
    dataset = make_neuron_tissue(n_neurons=n_neurons, seed=seed)
    index = FlatIndex(dataset, fanout=16)
    spec = microbenchmark(benchmark)
    sequences = spec.generate(dataset, n_sequences=n_sequences, seed=seed)

    factories = {
        "scout": lambda: ScoutPrefetcher(dataset, ScoutConfig()),
        "scout-opt": lambda: ScoutOptPrefetcher(dataset, index, ScoutConfig()),
        "ewma": lambda: EWMAPrefetcher(lam=0.3),
        "straight-line": StraightLinePrefetcher,
        "hilbert": lambda: HilbertPrefetcher(dataset),
        "none": NoPrefetcher,
    }
    if prefetcher not in factories:
        known = ", ".join(sorted(factories))
        raise ValueError(f"unknown prefetcher {prefetcher!r}; known: {known}")
    return run_experiment(index, sequences, factories[prefetcher]())
