"""Deterministic fault injection for the simulated storage stack.

The paper's I/O path never fails: :class:`~repro.storage.disk.DiskModel`
is an analytic cost counter, and every fetched page is assumed intact.
A deployment's disks are not so polite -- they time out, stall, and
deliver torn pages -- and whether SCOUT-style prefetching still pays off
under that noise is exactly the regime the serving layer walks into.
This module makes storage misbehaviour a *first-class, seeded input*:

* :class:`FaultPlan` is a small picklable spec of four fault kinds --
  transient read errors, latency-spike episodes, torn/corrupt page
  payloads and stuck-disk intervals -- each with a rate, all drawing
  from per-kind RNG streams derived from one seed.  A plan with every
  rate at zero consumes **no** randomness and charges no time, so a
  no-op plan is bit-identical to the bare disk.
* :class:`FaultyDiskModel` compiles a plan into a wrapper that is
  interface-identical to :class:`DiskModel`.  Transient errors are
  retried with capped exponential backoff and deterministic jitter;
  retries, backoff time, spikes, stalls and repairs are all charged as
  *simulated* seconds in :class:`~repro.storage.stats.IOStats` -- the
  model never sleeps, per the DESIGN.md §2 substitution rule.
* :class:`ReadFailure` is raised when retries are exhausted; callers
  recover with :meth:`FaultyDiskModel.recover_read` (a clean demand
  re-read) and account the pages as failed rather than missed.
* :class:`CircuitBreaker` is the per-client degradation state machine
  (closed → open → half-open): repeated prefetch-path failures trip it,
  a tripped client falls back to demand paging, and a cooldown later it
  re-probes with a single trial query.

Everything is a pure function of the plan's seed and the call sequence,
so fault-injected experiments keep the repo's determinism contract:
``jobs=1`` and ``jobs=N`` sweeps are bit-identical, and round-robin and
lockstep serving schedules (which issue disk reads in the same client
order) stay bit-identical under faults.

The module also hosts the *orchestrator-level* fault registry: the
``_sleep`` / ``_fail`` / ``_exit`` prefetcher builders that the sweep
runner's timeout/retry/pool-respawn tests inject through ordinary cell
specs (see :data:`FAULT_PREFETCHER_BUILDERS`).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.storage.disk import DiskModel, DiskParameters
from repro.storage.stats import IOStats

__all__ = [
    "FAULT_PREFETCHER_BUILDERS",
    "CircuitBreaker",
    "FaultPlan",
    "FaultyDiskModel",
    "ReadFailure",
]


class ReadFailure(Exception):
    """A page batch could not be read after exhausting its retries.

    ``pages`` is the failed batch and ``seconds`` the simulated time
    already charged to the disk for the doomed attempts (backoff plus
    any stall surcharge).  The engine's plan executor enriches a
    propagating failure with ``prior_pages`` / ``prior_seconds`` -- the
    partial prefetch work completed before the failing batch -- so the
    caller can account everything the window actually spent.
    """

    def __init__(self, pages: Sequence[int], seconds: float) -> None:
        super().__init__(f"read of {len(pages)} page(s) failed after retries")
        self.pages = list(pages)
        self.seconds = float(seconds)
        self.prior_pages = 0
        self.prior_seconds = 0.0
        self.gap_pages_used = 0


@dataclass(frozen=True)
class FaultPlan:
    """Seeded spec of how the simulated disk misbehaves.

    Rates are per-``read_pages``-call probabilities (``corrupt_rate`` is
    per *page*); every kind draws from its own RNG stream derived from
    ``seed``, and a kind with rate zero never consumes randomness -- so
    enabling one fault kind cannot perturb another's draw sequence, and
    an all-zero plan is bit-identical to the bare disk.  Plans are
    frozen, hashable and picklable; they travel inside cell specs.
    """

    #: Probability that a read attempt fails transiently (retried with
    #: capped exponential backoff; see ``retry_limit``).
    transient_rate: float = 0.0
    #: Probability that a successful read suffers a latency spike.
    latency_rate: float = 0.0
    #: Elapsed-time multiplier of a latency spike.
    latency_factor: float = 4.0
    #: Per-page probability that a delivered payload is torn/corrupt
    #: (detected by checksum at cache insert and repaired by re-read).
    corrupt_rate: float = 0.0
    #: Probability that a read opens a stuck-disk interval.
    stuck_rate: float = 0.0
    #: Length of a stuck interval, in read calls (the opening read
    #: included); each affected read pays ``stuck_extra_s``.
    stuck_reads: int = 4
    #: Surcharge per read while the disk is stuck, in simulated seconds.
    stuck_extra_s: float = 0.05
    #: Root seed of the per-kind RNG streams.
    seed: int = 0

    #: Retries granted to a transiently failing read before it raises
    #: :class:`ReadFailure`.
    retry_limit: int = 3
    #: First retry's backoff, in simulated seconds; doubles per retry.
    backoff_base_s: float = 0.002
    #: Ceiling on a single retry's (pre-jitter) backoff.
    backoff_cap_s: float = 0.05
    #: Whether sessions arm the per-client circuit breaker.
    breaker: bool = True
    #: Consecutive prefetch-path failures that trip the breaker.
    breaker_threshold: int = 3
    #: Degraded (demand-paging) queries before a half-open re-probe.
    breaker_cooldown: int = 4

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate", "corrupt_rate", "stuck_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.latency_factor < 1.0:
            raise ValueError(f"latency_factor must be >= 1, got {self.latency_factor}")
        if self.stuck_reads < 1:
            raise ValueError(f"stuck_reads must be >= 1, got {self.stuck_reads}")
        if self.stuck_extra_s < 0 or self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("fault durations must be non-negative")
        if self.retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if self.breaker_threshold < 1 or self.breaker_cooldown < 1:
            raise ValueError("breaker threshold and cooldown must be >= 1")

    @property
    def active(self) -> bool:
        """Whether any fault kind can actually fire."""
        return bool(
            self.transient_rate or self.latency_rate or self.corrupt_rate or self.stuck_rate
        )

    @property
    def max_backoff_s(self) -> float:
        """Upper bound on one read's total jittered backoff time."""
        total = 0.0
        for attempt in range(self.retry_limit):
            total += min(self.backoff_cap_s, self.backoff_base_s * 2.0**attempt)
        return 1.5 * total

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


#: XOR mask a torn payload applies to a page's true checksum -- any
#: non-zero constant works; the point is that delivered != expected.
_TORN_CHECKSUM_XOR = 0xFFFFFFFF

#: Per-kind RNG stream indices (spawn keys off the plan seed).
_STREAM_TRANSIENT, _STREAM_LATENCY, _STREAM_CORRUPT, _STREAM_STUCK = range(4)


class FaultyDiskModel:
    """A :class:`DiskModel` wrapper that injects the plan's faults.

    Interface-identical to the bare model (``params`` / ``stats`` /
    ``read_pages`` / ``trim_to_budget`` / ``cost_if_cold`` /
    ``estimate_read_time`` / ``reset_head`` / ``reset_stats``), plus the
    recovery surface: :meth:`verify_delivery` (checksum read-repair at
    cache insert) and :meth:`recover_read` (clean demand re-read after a
    :class:`ReadFailure`).  Cost estimation never injects -- windows are
    sized from the healthy model, as a deployment would size them from
    nominal device specs.
    """

    def __init__(
        self, params: DiskParameters | None = None, plan: FaultPlan | None = None
    ) -> None:
        self._inner = DiskModel(params)
        self.plan = plan or FaultPlan()
        seed = int(self.plan.seed)
        self._transient_rng = np.random.default_rng([seed, _STREAM_TRANSIENT])
        self._latency_rng = np.random.default_rng([seed, _STREAM_LATENCY])
        self._corrupt_rng = np.random.default_rng([seed, _STREAM_CORRUPT])
        self._stuck_rng = np.random.default_rng([seed, _STREAM_STUCK])
        self._stuck_left = 0
        #: Pages of the most recent read whose payloads arrived torn;
        #: consumed (or overwritten) by the next verify/read.
        self._corrupt_last: set[int] = set()

    # -- delegated surface --------------------------------------------------

    @property
    def params(self) -> DiskParameters:
        return self._inner.params

    @property
    def stats(self) -> IOStats:
        return self._inner.stats

    def reset_head(self) -> None:
        self._inner.reset_head()

    def reset_stats(self) -> None:
        self._inner.reset_stats()

    def trim_to_budget(
        self, page_ids: Sequence[int] | Iterable[int], budget_s: float
    ) -> list[int]:
        return self._inner.trim_to_budget(page_ids, budget_s)

    def cost_if_cold(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        return self._inner.cost_if_cold(page_ids)

    def estimate_read_time(self, n_pages: int, contiguous_fraction: float = 0.5) -> float:
        return self._inner.estimate_read_time(n_pages, contiguous_fraction)

    # -- the faulty read path -----------------------------------------------

    def _backoff_delay(self, retry_index: int) -> float:
        """Jittered backoff of retry ``retry_index`` (0-based).

        Capped exponential, scaled by a uniform jitter in [0.5, 1.5)
        drawn from the transient stream -- deterministic given the plan
        seed, bounded by ``1.5 * backoff_cap_s`` per retry.
        """
        plan = self.plan
        base = min(plan.backoff_cap_s, plan.backoff_base_s * 2.0**retry_index)
        return base * (0.5 + float(self._transient_rng.random()))

    def read_pages(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        """Charge and return the time to read the pages, faults included.

        Order of business per call: (1) stuck-interval surcharge;
        (2) transient-failure retry loop -- each failed attempt charges
        a jittered backoff, and exhausting ``retry_limit`` charges
        everything spent so far and raises :class:`ReadFailure`;
        (3) the clean read, delegated to the inner model; (4) latency
        spike; (5) per-page corruption draws marking torn payloads for
        :meth:`verify_delivery`.  Every guard checks its rate first, so
        disabled fault kinds consume no randomness.
        """
        pages = sorted(set(int(p) for p in page_ids))
        if not pages:
            return 0.0
        plan = self.plan
        stats = self._inner.stats

        extra = 0.0
        if plan.stuck_rate:
            if self._stuck_left > 0:
                self._stuck_left -= 1
                extra += plan.stuck_extra_s
                stats.stuck_reads += 1
            elif float(self._stuck_rng.random()) < plan.stuck_rate:
                self._stuck_left = plan.stuck_reads - 1
                extra += plan.stuck_extra_s
                stats.stuck_reads += 1

        backoff = 0.0
        failures = 0
        if plan.transient_rate:
            while float(self._transient_rng.random()) < plan.transient_rate:
                failures += 1
                stats.transient_errors += 1
                if failures > plan.retry_limit:
                    stats.retries_exhausted += 1
                    stats.backoff_seconds += backoff
                    stats.seconds_busy += extra + backoff
                    raise ReadFailure(pages, extra + backoff)
                backoff += self._backoff_delay(failures - 1)
                stats.retries += 1
            if failures:
                stats.retries_recovered += 1

        elapsed = self._inner.read_pages(pages)

        if plan.latency_rate and float(self._latency_rng.random()) < plan.latency_rate:
            extra += elapsed * (plan.latency_factor - 1.0)
            stats.latency_spikes += 1

        if plan.corrupt_rate:
            torn = self._corrupt_rng.random(len(pages)) < plan.corrupt_rate
            self._corrupt_last = {p for p, bad in zip(pages, torn) if bad}

        stats.backoff_seconds += backoff
        stats.seconds_busy += extra + backoff
        return elapsed + extra + backoff

    # -- recovery surface ---------------------------------------------------

    def verify_delivery(self, page_ids: Sequence[int] | Iterable[int], page_table) -> float:
        """Checksum-verify the just-read pages; repair and charge for torn ones.

        Compares each delivered page's checksum (a torn payload arrives
        with a mangled one) against the :class:`~repro.storage.page.PageTable`
        ground truth.  Mismatching pages are quarantined -- never handed
        to the cache -- and cleanly re-read from the inner model, counted
        under ``corrupt_detected`` / ``reread_pages``.  Returns the
        repair time to add to the caller's charge; the repaired pages
        are then safe to insert.
        """
        if not self._corrupt_last:
            return 0.0
        tainted, self._corrupt_last = self._corrupt_last, set()
        pages = [int(p) for p in sorted(set(int(q) for q in page_ids))]
        suspects = [p for p in pages if p in tainted]
        if not suspects:
            return 0.0
        expected = page_table.checksums_of(suspects)
        delivered = [checksum ^ _TORN_CHECKSUM_XOR for checksum in expected]
        torn = [p for p, want, got in zip(suspects, expected, delivered) if want != got]
        if not torn:
            return 0.0
        stats = self._inner.stats
        stats.corrupt_detected += len(torn)
        stats.reread_pages += len(torn)
        return self._inner.read_pages(torn)

    def recover_read(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        """Cleanly re-read a failed batch on the demand path.

        After a :class:`ReadFailure` the query must still be answered --
        the user is waiting -- so the serve path falls back to an
        uninjected read (modeling e.g. a redundant stripe or a retry on
        a recovered device), charged at full cost and counted under
        ``reread_pages``.
        """
        pages = sorted(set(int(p) for p in page_ids))
        if not pages:
            return 0.0
        self._inner.stats.reread_pages += len(pages)
        return self._inner.read_pages(pages)


class CircuitBreaker:
    """Per-client graceful-degradation state machine.

    Classic three-state breaker, driven once per query by the session's
    prefetch phase:

    * **closed** -- prefetching runs normally; ``breaker_threshold``
      *consecutive* prefetch-path failures trip the breaker;
    * **open** -- the client is degraded to demand paging (no observe,
      no plan, no prefetch I/O); each degraded query counts down the
      cooldown, and when it expires the next query probes half-open;
    * **half-open** -- one trial query prefetches normally; success
      closes the breaker, failure re-opens it for a fresh cooldown.

    Purely counter-driven (no randomness, no wall clock), so breaker
    trajectories are bit-reproducible given the fault plan's seed.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int = 3, cooldown: int = 4) -> None:
        if threshold < 1 or cooldown < 1:
            raise ValueError("breaker threshold and cooldown must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = int(cooldown)
        self.state = self.CLOSED
        self.opens = 0
        self.half_opens = 0
        self.closes = 0
        self._consecutive_failures = 0
        self._cooldown_left = 0

    def allow_prefetch(self) -> bool:
        """Whether this query may prefetch; called once per query.

        While open, each call burns one cooldown query; the call that
        exhausts the cooldown transitions to half-open and admits the
        probe.
        """
        if self.state == self.OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left > 0:
                return False
            self.state = self.HALF_OPEN
            self.half_opens += 1
        return True

    def record_success(self) -> None:
        """A prefetch phase completed without a read failure."""
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self.closes += 1

    def record_failure(self) -> None:
        """A prefetch phase hit an exhausted-retries read failure."""
        self._consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED and self._consecutive_failures >= self.threshold
        ):
            self.state = self.OPEN
            self.opens += 1
            self._cooldown_left = self.cooldown
            self._consecutive_failures = 0


# -- orchestrator-level fault registry ----------------------------------------------
#
# These builders inject faults one level up from the disk: into the
# sweep runner's *cell execution*, through ordinary prefetcher specs.
# They exist so the timeout/retry/pool-respawn machinery can be
# exercised with real cell specs in any worker process (registries
# travel with the module, unlike monkeypatches, so they work under every
# multiprocessing start method).  The runner merges this registry into
# its prefetcher-builder table, keeping the historical kind names.


def _build_sleep_prefetcher(ds: Any, ix: Any, p: Mapping[str, Any]):
    """Fault-injection kind ``_sleep``: stall ``seconds``, then act as ``none``."""
    time.sleep(float(p.get("seconds", 0.0)))
    from repro.baselines import NoPrefetcher

    return NoPrefetcher()


def _build_fail_prefetcher(ds: Any, ix: Any, p: Mapping[str, Any]):
    """Fault-injection kind ``_fail``: raise during construction.

    With ``once_flag`` set, the first attempt creates that file and
    raises while later attempts succeed -- a deterministic transient
    failure for exercising retry-then-succeed.
    """
    flag = p.get("once_flag")
    if flag is not None:
        flag_path = Path(flag)
        if flag_path.exists():
            from repro.baselines import NoPrefetcher

            return NoPrefetcher()
        flag_path.touch()
    raise RuntimeError(str(p.get("message", "injected cell failure")))


def _build_exit_prefetcher(ds: Any, ix: Any, p: Mapping[str, Any]):
    """Fault-injection kind ``_exit``: kill the hosting process with ``os._exit``.

    Simulates a hard worker death (OOM kill, segfault): the process
    vanishes without unwinding, which breaks a
    :class:`~concurrent.futures.ProcessPoolExecutor` and exercises the
    runner's pool-respawn path.  With ``once_flag`` set, only the first
    attempt dies (the flag file persists across the respawned pool);
    ``seconds`` delays the death so sibling cells can finish first.
    Pooled runs only -- in a serial run this kills the sweep itself.
    """
    flag = p.get("once_flag")
    if flag is not None:
        flag_path = Path(flag)
        if flag_path.exists():
            from repro.baselines import NoPrefetcher

            return NoPrefetcher()
        flag_path.touch()
    time.sleep(float(p.get("seconds", 0.0)))
    os._exit(int(p.get("code", 1)))


#: The orchestrator's fault-injection prefetcher kinds, merged into the
#: sweep runner's builder registry under their historical names.
FAULT_PREFETCHER_BUILDERS: dict[str, Callable[..., Any]] = {
    "_sleep": _build_sleep_prefetcher,
    "_fail": _build_fail_prefetcher,
    "_exit": _build_exit_prefetcher,
}
