"""Mapping between spatial objects and disk pages.

Spatial indexes (R-tree leaves, FLAT partitions, grid buckets) decide
which objects live on which 4 KB disk page; the :class:`PageTable`
records that assignment and answers both directions of the lookup.  The
simulator charges I/O at page granularity, so everything downstream --
cache, disk model, hit-rate accounting -- speaks page ids.

Pages are stored packed: one concatenated object-id array plus CSR
offsets, so multi-page lookups (the query hot path gathers every result
page's objects per query) are a single vectorized gather instead of a
list of per-page concatenations.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.util import csr_expand

__all__ = ["PageTable"]


class PageTable:
    """Immutable object-to-page assignment.

    Built once at index-construction time from a list of object-id arrays
    (one array per page, page ids are positions in the list).
    """

    def __init__(self, pages: Sequence[np.ndarray]) -> None:
        arrays: list[np.ndarray] = []
        for objects in pages:
            arr = np.asarray(objects, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError("each page must be a 1D array of object ids")
            arrays.append(arr)
        counts = np.array([len(arr) for arr in arrays], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._objects = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        self._n_objects = int(self._offsets[-1])

        max_id = int(self._objects.max()) if len(self._objects) else -1
        self._page_of_object = np.full(max_id + 1, -1, dtype=np.int64)
        owners = np.repeat(np.arange(len(arrays), dtype=np.int64), counts)
        order = np.argsort(self._objects, kind="stable")
        sorted_objects = self._objects[order]
        sorted_owners = owners[order]
        cross_page = (sorted_objects[1:] == sorted_objects[:-1]) & (
            sorted_owners[1:] != sorted_owners[:-1]
        )
        if np.any(cross_page):
            raise ValueError("an object was assigned to more than one page")
        self._page_of_object[self._objects] = owners
        self._checksums: dict[int, int] = {}

    # -- sizes ------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return len(self._offsets) - 1

    @property
    def n_objects(self) -> int:
        return self._n_objects

    def page_size(self, page_id: int) -> int:
        return int(self._offsets[page_id + 1] - self._offsets[page_id])

    # -- lookups --------------------------------------------------------

    def objects_of_page(self, page_id: int) -> np.ndarray:
        """Object ids stored on a page (a read-only view)."""
        if not 0 <= page_id < self.n_pages:
            raise IndexError(f"page {page_id} out of range")
        return self._objects[self._offsets[page_id] : self._offsets[page_id + 1]]

    def objects_of_pages(self, page_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Concatenated object ids of several pages, in page order.

        Vectorized equivalent of concatenating ``objects_of_page`` for
        each page; this is the per-query candidate gather of
        :meth:`repro.index.base.SpatialIndex.query`.
        """
        page_ids = np.asarray(
            list(page_ids) if not isinstance(page_ids, np.ndarray) else page_ids,
            dtype=np.int64,
        )
        if len(page_ids) == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._offsets[page_ids]
        counts = self._offsets[page_ids + 1] - starts
        return self._objects[csr_expand(starts, counts)]

    # -- checksums ------------------------------------------------------

    def checksum_of(self, page_id: int) -> int:
        """CRC-32 of a page's canonical payload (its object-id array).

        The page table is the ground truth of what each page *should*
        contain, so its checksum is what delivered payloads are verified
        against at cache-insert time (read-repair: see
        :meth:`repro.storage.faults.FaultyDiskModel.verify_delivery`).
        Computed lazily and memoized -- verification only touches pages
        a fault actually tainted.
        """
        cached = self._checksums.get(page_id)
        if cached is None:
            cached = zlib.crc32(self.objects_of_page(page_id).tobytes())
            self._checksums[page_id] = cached
        return cached

    def checksums_of(self, page_ids: Iterable[int] | np.ndarray) -> list[int]:
        """Per-page checksums, in input order."""
        return [self.checksum_of(int(p)) for p in page_ids]

    def page_of_object(self, object_id: int) -> int:
        page = int(self._page_of_object[object_id])
        if page < 0:
            raise KeyError(f"object {object_id} is not assigned to any page")
        return page

    def pages_of_objects(self, object_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Distinct page ids covering the given objects (sorted)."""
        return np.unique(self.page_ids_of_objects(object_ids))

    def page_ids_of_objects(self, object_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Per-object page id array (same order and length as the input)."""
        object_ids = np.asarray(
            list(object_ids) if not isinstance(object_ids, np.ndarray) else object_ids,
            dtype=np.int64,
        )
        if len(object_ids) == 0:
            return np.empty(0, dtype=np.int64)
        pages = self._page_of_object[object_ids]
        if np.any(pages < 0):
            missing = object_ids[pages < 0]
            raise KeyError(f"objects {missing[:5].tolist()} are not assigned to any page")
        return pages
