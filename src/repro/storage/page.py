"""Mapping between spatial objects and disk pages.

Spatial indexes (R-tree leaves, FLAT partitions, grid buckets) decide
which objects live on which 4 KB disk page; the :class:`PageTable`
records that assignment and answers both directions of the lookup.  The
simulator charges I/O at page granularity, so everything downstream --
cache, disk model, hit-rate accounting -- speaks page ids.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["PageTable"]


class PageTable:
    """Immutable object-to-page assignment.

    Built once at index-construction time from a list of object-id arrays
    (one array per page, page ids are positions in the list).
    """

    def __init__(self, pages: Sequence[np.ndarray]) -> None:
        self._pages: list[np.ndarray] = []
        n_objects = 0
        for objects in pages:
            arr = np.asarray(objects, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError("each page must be a 1D array of object ids")
            self._pages.append(arr)
            n_objects += len(arr)
        self._n_objects = n_objects

        self._page_of_object = np.full(self._max_object_id() + 1, -1, dtype=np.int64)
        for page_id, objects in enumerate(self._pages):
            if np.any(self._page_of_object[objects] != -1):
                raise ValueError("an object was assigned to more than one page")
            self._page_of_object[objects] = page_id

    def _max_object_id(self) -> int:
        best = -1
        for objects in self._pages:
            if len(objects):
                best = max(best, int(objects.max()))
        return best

    # -- sizes ------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def n_objects(self) -> int:
        return self._n_objects

    def page_size(self, page_id: int) -> int:
        return len(self._pages[page_id])

    # -- lookups --------------------------------------------------------

    def objects_of_page(self, page_id: int) -> np.ndarray:
        """Object ids stored on a page (a read-only view)."""
        return self._pages[page_id]

    def page_of_object(self, object_id: int) -> int:
        page = int(self._page_of_object[object_id])
        if page < 0:
            raise KeyError(f"object {object_id} is not assigned to any page")
        return page

    def pages_of_objects(self, object_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Distinct page ids covering the given objects (sorted)."""
        return np.unique(self.page_ids_of_objects(object_ids))

    def page_ids_of_objects(self, object_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Per-object page id array (same order and length as the input)."""
        object_ids = np.asarray(
            list(object_ids) if not isinstance(object_ids, np.ndarray) else object_ids,
            dtype=np.int64,
        )
        if len(object_ids) == 0:
            return np.empty(0, dtype=np.int64)
        pages = self._page_of_object[object_ids]
        if np.any(pages < 0):
            missing = object_ids[pages < 0]
            raise KeyError(f"objects {missing[:5].tolist()} are not assigned to any page")
        return pages
