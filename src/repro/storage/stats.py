"""I/O statistics counters shared by the disk model and the cache."""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Running counters for one simulated component.

    The first three fields are the classic healthy-path counters; the
    rest are the fault plane's per-outcome accounting, filled only by
    :class:`~repro.storage.faults.FaultyDiskModel` (a bare
    :class:`~repro.storage.disk.DiskModel` leaves them zero).
    """

    pages_read: int = 0
    random_positionings: int = 0
    seconds_busy: float = 0.0

    #: Transient read errors drawn (each failed attempt counts once).
    transient_errors: int = 0
    #: Retries issued after transient errors.
    retries: int = 0
    #: Reads that succeeded after at least one retry.
    retries_recovered: int = 0
    #: Reads abandoned after exhausting the retry budget.
    retries_exhausted: int = 0
    #: Simulated seconds spent in retry backoff (included in
    #: ``seconds_busy``).
    backoff_seconds: float = 0.0
    #: Reads whose elapsed time was inflated by a latency spike.
    latency_spikes: int = 0
    #: Reads surcharged by a stuck-disk interval.
    stuck_reads: int = 0
    #: Pages whose delivered payload failed checksum verification.
    corrupt_detected: int = 0
    #: Pages re-read cleanly (read-repair plus demand-path recovery).
    reread_pages: int = 0

    def merged_with(self, other: "IOStats") -> "IOStats":
        return IOStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )
