"""I/O statistics counters shared by the disk model and the cache."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Running counters for one simulated component."""

    pages_read: int = 0
    random_positionings: int = 0
    seconds_busy: float = 0.0

    def merged_with(self, other: "IOStats") -> "IOStats":
        return IOStats(
            pages_read=self.pages_read + other.pages_read,
            random_positionings=self.random_positionings + other.random_positionings,
            seconds_busy=self.seconds_busy + other.seconds_busy,
        )
