"""Mmap-backed on-disk page store with per-slot checksums.

Everything upstream of this module treats storage as an analytic cost
counter; this is the first component that actually *persists bytes*.  A
:class:`PageFile` lays a :class:`~repro.storage.page.PageTable` out as a
fixed-slot file -- one slot per page, slot payload the page's canonical
object-id array -- so larger-than-memory experiments can serve real
pages instead of pretending RAM is a disk.

The format is deliberately boring and crash-evident:

* a single fixed-size header (magic, version, geometry) protected by its
  own CRC-32 and published atomically: the file is built under a
  temporary name and ``os.replace``-d into place, so a reader either
  sees a fully valid file or no file at all;
* fixed-size slots, each ``[crc32 | n_objects | payload | padding]``,
  with the CRC computed over the payload bytes exactly as
  :meth:`repro.storage.page.PageTable.checksum_of` does -- the page
  table stays the ground truth a delivered slot is verified against;
* torn-write detection by construction: :meth:`write_page` first stamps
  the slot's ``n_objects`` field with an in-progress sentinel and only
  restores count + CRC after the payload landed.  A writer that dies
  mid-write (power cut, ``os._exit``) leaves a slot that can never pass
  verification, so a reopening reader detects it (:meth:`scan_torn`),
  refuses to serve it (:class:`TornPageError`) and re-fetches from the
  authoritative page table (:meth:`repair_page`).

The file stores *bytes*, not *time*: simulated I/O cost still comes from
the disk model in front of it (DESIGN.md §9), so swapping the RAM
backend for a page file never perturbs metrics on a healthy file.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.storage.page import PageTable

__all__ = ["PageFile", "PageFileError", "TornPageError"]

_MAGIC = b"SCOUTPF1"
_VERSION = 1
#: Header layout: magic, version, n_pages, slot_bytes, header crc32.
_HEADER = struct.Struct("<8sIQQI")
_HEADER_BYTES = 4096
#: Per-slot prefix: payload crc32, object count.
_SLOT_PREFIX = struct.Struct("<II")
#: ``n_objects`` sentinel stamped while a slot write is in flight.
_IN_PROGRESS = 0xFFFFFFFF


class PageFileError(RuntimeError):
    """The page file is missing, malformed, or geometry-incompatible."""


class TornPageError(PageFileError):
    """A slot failed checksum verification and must not be served.

    Carries the offending ``page_id`` so callers can repair exactly the
    slots that are torn and account the detection.
    """

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} failed checksum verification")
        self.page_id = int(page_id)


class PageFile:
    """Fixed-slot mmap page store over a page table's payloads.

    Open an existing file with the constructor (header is validated
    before any slot is trusted) or build one with :meth:`create`.  All
    slot reads verify the per-slot CRC; a mismatch raises
    :class:`TornPageError` rather than returning bytes that never
    existed.  Instances are context managers; :meth:`close` flushes and
    unmaps.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise PageFileError(f"page file {self.path} does not exist")
        self._file = open(self.path, "r+b")
        try:
            header = self._file.read(_HEADER_BYTES)
            if len(header) < _HEADER.size:
                raise PageFileError(f"page file {self.path} is truncated")
            magic, version, n_pages, slot_bytes, crc = _HEADER.unpack_from(header)
            if magic != _MAGIC:
                raise PageFileError(f"page file {self.path} has bad magic {magic!r}")
            if version != _VERSION:
                raise PageFileError(
                    f"page file {self.path} is version {version}, expected {_VERSION}"
                )
            if crc != zlib.crc32(header[: _HEADER.size - 4]):
                raise PageFileError(f"page file {self.path} has a corrupt header")
            expected = _HEADER_BYTES + n_pages * slot_bytes
            if os.fstat(self._file.fileno()).st_size < expected:
                raise PageFileError(f"page file {self.path} is truncated")
            self.n_pages = int(n_pages)
            self.slot_bytes = int(slot_bytes)
            self._mmap = mmap.mmap(self._file.fileno(), expected)
        except Exception:
            self._file.close()
            raise

    # -- construction -------------------------------------------------------

    @classmethod
    def create(cls, path: str | os.PathLike[str], page_table: PageTable) -> "PageFile":
        """Build a page file for the table's pages and open it.

        The file is written under ``<path>.tmp`` and atomically renamed
        into place once the header and every slot are durable, so a
        crash during creation never publishes a half-built file.
        """
        path = Path(path)
        max_objects = max(
            (page_table.page_size(p) for p in range(page_table.n_pages)), default=0
        )
        slot_bytes = _SLOT_PREFIX.size + max_objects * 8
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            body = _HEADER.pack(_MAGIC, _VERSION, page_table.n_pages, slot_bytes, 0)
            crc = zlib.crc32(body[:-4])
            fh.write(_HEADER.pack(_MAGIC, _VERSION, page_table.n_pages, slot_bytes, crc))
            fh.write(b"\0" * (_HEADER_BYTES - _HEADER.size))
            for page_id in range(page_table.n_pages):
                payload = page_table.objects_of_page(page_id).tobytes()
                fh.write(_SLOT_PREFIX.pack(zlib.crc32(payload), len(payload) // 8))
                fh.write(payload)
                fh.write(b"\0" * (slot_bytes - _SLOT_PREFIX.size - len(payload)))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return cls(path)

    # -- slot access --------------------------------------------------------

    def _slot_offset(self, page_id: int) -> int:
        if not 0 <= page_id < self.n_pages:
            raise IndexError(f"page {page_id} out of range")
        return _HEADER_BYTES + page_id * self.slot_bytes

    def read_page(self, page_id: int) -> np.ndarray:
        """Return a slot's verified payload as an int64 array.

        Raises :class:`TornPageError` when the slot is mid-write or its
        payload does not match the stored CRC -- torn bytes are detected
        here, never served.
        """
        offset = self._slot_offset(page_id)
        crc, count = _SLOT_PREFIX.unpack_from(self._mmap, offset)
        payload_max = self.slot_bytes - _SLOT_PREFIX.size
        if count == _IN_PROGRESS or count * 8 > payload_max:
            raise TornPageError(page_id)
        start = offset + _SLOT_PREFIX.size
        payload = self._mmap[start : start + count * 8]
        if zlib.crc32(payload) != crc:
            raise TornPageError(page_id)
        return np.frombuffer(payload, dtype=np.int64)

    def verify_page(self, page_id: int) -> bool:
        """Whether a slot currently passes checksum verification."""
        try:
            self.read_page(page_id)
        except TornPageError:
            return False
        return True

    def scan_torn(self) -> list[int]:
        """Page ids of every slot that fails verification (reopen sweep)."""
        return [p for p in range(self.n_pages) if not self.verify_page(p)]

    def write_page(
        self, page_id: int, objects: np.ndarray | Iterable[int], *, crash_after: str | None = None
    ) -> None:
        """Rewrite a slot's payload, torn-write-evidently.

        The slot is first stamped in-progress (``n_objects`` sentinel),
        then the payload lands, then count and CRC are restored -- dying
        at any intermediate point leaves a slot that cannot verify.
        ``crash_after`` (``"stamp"`` or ``"payload"``) kills the process
        with ``os._exit`` at the named point; it exists for the
        crash-recovery tests, mirroring the ``_exit`` builder of
        :data:`repro.storage.faults.FAULT_PREFETCHER_BUILDERS`.
        """
        payload = np.asarray(list(objects) if not isinstance(objects, np.ndarray) else objects,
                             dtype=np.int64).tobytes()
        if len(payload) > self.slot_bytes - _SLOT_PREFIX.size:
            raise ValueError(f"payload of {len(payload)} bytes exceeds slot size")
        offset = self._slot_offset(page_id)
        _SLOT_PREFIX.pack_into(self._mmap, offset, 0, _IN_PROGRESS)
        self._mmap.flush()
        if crash_after == "stamp":
            os._exit(1)
        start = offset + _SLOT_PREFIX.size
        self._mmap[start : start + len(payload)] = payload
        self._mmap.flush()
        if crash_after == "payload":
            os._exit(1)
        _SLOT_PREFIX.pack_into(self._mmap, offset, zlib.crc32(payload), len(payload) // 8)
        self._mmap.flush()

    def repair_page(self, page_id: int, page_table: PageTable) -> None:
        """Re-fetch a torn slot's payload from the authoritative table."""
        self.write_page(page_id, page_table.objects_of_page(page_id))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if getattr(self, "_mmap", None) is not None:
            self._mmap.flush()
            self._mmap.close()
            self._mmap = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
