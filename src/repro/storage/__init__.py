"""Simulated storage stack: pages, disk cost model, prefetch cache.

The paper's experiments run against a 4-disk SAS array with 4 KB pages.
Per the substitution rule in DESIGN.md we replace the physical array
with a deterministic cost model: each page read charges seek/rotational
latency (discounted for sequential runs and amortized across stripes)
plus transfer time.  The prefetch cache is a page-granular LRU with the
4 GB budget of the paper scaled to the synthetic datasets.
"""

from repro.storage.page import PageTable
from repro.storage.disk import DiskModel, DiskParameters
from repro.storage.cache import PrefetchCache
from repro.storage.faults import CircuitBreaker, FaultPlan, FaultyDiskModel, ReadFailure
from repro.storage.pagefile import PageFile, PageFileError, TornPageError
from repro.storage.stats import IOStats
from repro.storage.sharded import (
    PARTITIONS,
    ShardedCache,
    ShardSpec,
    make_sharded_cache,
)
from repro.storage.tiered import (
    MISS_PATHS,
    STORAGE_BACKENDS,
    StorageSpec,
    TieredStore,
    TierStats,
    make_storage,
)

__all__ = [
    "MISS_PATHS",
    "PARTITIONS",
    "STORAGE_BACKENDS",
    "CircuitBreaker",
    "DiskModel",
    "DiskParameters",
    "FaultPlan",
    "FaultyDiskModel",
    "IOStats",
    "PageFile",
    "PageFileError",
    "PageTable",
    "PrefetchCache",
    "ReadFailure",
    "ShardSpec",
    "ShardedCache",
    "StorageSpec",
    "TierStats",
    "TieredStore",
    "TornPageError",
    "make_sharded_cache",
    "make_storage",
]
