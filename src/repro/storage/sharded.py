"""Sharded data plane: Hilbert-partitioned cache shards with rebalancing.

The serving stack so far funnels every client through ONE shared cache
-- a single simulated node.  The paper's workloads are spatially
clustered, and the repo already computes a Hilbert order
(:mod:`repro.geometry.hilbert`) that turns spatial locality into key
locality; this module partitions the page space along that order into
``K`` cache shards, each an ordinary cache backend
(:class:`~repro.storage.cache.PrefetchCache` or
:class:`~repro.storage.cache.ArrayCache`), behind the *same* observable
cache contract, so every consumer -- ``QuerySession``,
``ServingSimulator`` (both schedulers), the serving daemon -- takes a
:class:`ShardedCache` unchanged.

Partitioning is compiled once by :func:`make_sharded_cache` from a
picklable :class:`ShardSpec`:

* ``hilbert`` -- range partitioning over per-page Hilbert keys derived
  from the page table (each page's object-centroid mean, quantized to a
  ``2**hilbert_bits`` grid over the dataset bounds, Skilling-encoded).
  ``K - 1`` split keys cut the sorted key sequence into equal page
  counts; routing a batch is ONE ``np.searchsorted`` over the split
  keys (:meth:`ShardedCache.route_many`), so the lockstep scheduler
  keeps its single-pass shape.
* ``hash`` -- :func:`repro.util.slice_of` over raw page ids, the same
  documented "key -> slice i of n" rule the sharded result store uses.

Every lookup/insert routes to its owning shard and lands in that
shard's own counters, so the per-shard counters *exactly partition* the
request stream: ``requests == sum(shard.hits + shard.misses)`` holds by
construction and is hypothesis-checked in the test-suite.

**Hot-shard rebalancing** (``rebalance=True``, range partitioning
only): the detector keeps an EWMA of per-shard demand load, fed once
per :meth:`~ShardedCache.touch_many` batch (the serve path).  When one
shard's EWMA exceeds ``rebalance_threshold`` times the mean, the
rebalancer deterministically moves the split point: the hot shard's
owned key range is cut at the median of its owned page keys and the
released half is donated to the colder adjacent shard; cached pages
whose owner changed migrate (``discard`` + re-insert, preserving LRU
order and owner tags -- no eviction accounting, the pages are moving,
not dying).  ``rebalance_events`` and ``pages_moved`` are reported.
Both the EWMA and the split moves are pure functions of the touch
sequence, so round-robin and lockstep serving -- which issue identical
batch sequences -- rebalance identically.

**Hop latency** (``hop_latency_s > 0``): a batch that fans out to ``S``
distinct shards charges ``(S - 1) * hop_latency_s`` of *simulated* time
into :attr:`ShardedCache.hop_seconds` -- the coordinator pays one hop
per extra shard contacted on the demand path.  ``QuerySession``
attributes the delta per client, exactly like tier stalls.

With ``K = 1`` every method delegates directly to the single inner
cache -- op-by-op identical to the unsharded backend, no routing, no
hops, no rebalancing -- preserving the repo's determinism contract and
every golden fixture.
"""

from __future__ import annotations

import weakref
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterable, Mapping

import numpy as np

from repro.geometry.hilbert import hilbert_encode
from repro.storage.cache import NO_OWNER, ArrayCache, PrefetchCache, make_cache
from repro.util import slice_of

__all__ = [
    "PARTITIONS",
    "ShardSpec",
    "ShardedCache",
    "make_sharded_cache",
    "page_hilbert_keys",
]

#: Registered partitioning schemes.
PARTITIONS = ("hilbert", "hash")


@dataclass(frozen=True)
class ShardSpec:
    """Picklable spec of the sharded cache layout.

    Frozen and hashable so it can ride inside frozen simulation configs
    and cell specs, like :class:`~repro.storage.tiered.StorageSpec`.
    ``ShardSpec(n_shards=1)`` compiles to a pure pass-through wrapper,
    op-by-op identical to the unsharded cache.
    """

    #: Number of cache shards (simulated nodes); 1 = pass-through.
    n_shards: int = 1
    #: Partitioning scheme: one of :data:`PARTITIONS`.
    partition: str = "hilbert"
    #: Cache pages *per shard*; ``None`` splits the caller's total
    #: capacity as evenly as possible (first shards take the remainder).
    shard_cache_pages: int | None = None
    #: Simulated seconds charged per extra shard a demand batch fans
    #: out to (0 disables hop accounting).
    hop_latency_s: float = 0.0
    #: Enable the hot-shard detector + split-point rebalancer
    #: (range/``hilbert`` partitioning only).
    rebalance: bool = False
    #: EWMA smoothing factor for per-shard demand load.
    rebalance_lambda: float = 0.25
    #: A shard is hot when its EWMA exceeds ``threshold * mean``.
    rebalance_threshold: float = 2.0
    #: Demand batches between hot-shard checks.
    rebalance_interval: int = 32
    #: Hilbert grid resolution: page centroids quantize to a
    #: ``2**hilbert_bits`` grid per axis before encoding.
    hilbert_bits: int = 6

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"unknown partition {self.partition!r}; known: {list(PARTITIONS)}"
            )
        if self.shard_cache_pages is not None and self.shard_cache_pages < 0:
            raise ValueError(
                f"shard_cache_pages must be >= 0, got {self.shard_cache_pages}"
            )
        if self.hop_latency_s < 0:
            raise ValueError(f"hop_latency_s must be >= 0, got {self.hop_latency_s}")
        if self.rebalance and self.partition != "hilbert":
            raise ValueError("rebalance requires range (hilbert) partitioning")
        if not 0.0 < self.rebalance_lambda <= 1.0:
            raise ValueError(
                f"rebalance_lambda must be in (0, 1], got {self.rebalance_lambda}"
            )
        if self.rebalance_threshold <= 1.0:
            raise ValueError(
                f"rebalance_threshold must be > 1, got {self.rebalance_threshold}"
            )
        if self.rebalance_interval < 1:
            raise ValueError(
                f"rebalance_interval must be >= 1, got {self.rebalance_interval}"
            )
        if not 1 <= self.hilbert_bits <= 16:
            raise ValueError(f"hilbert_bits must be in [1, 16], got {self.hilbert_bits}")

    @property
    def sharding_active(self) -> bool:
        """Whether routing can differ from a single shared cache."""
        return self.n_shards > 1

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown shard spec key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


def page_hilbert_keys(index, bits: int) -> np.ndarray:
    """Hilbert key of every page in ``index``'s page table.

    A page's key is the Hilbert encoding of its object-centroid mean,
    quantized to a ``2**bits`` grid over the (slightly inflated)
    dataset bounds -- the same quantization the Hilbert-Prefetch
    baseline uses for query centers, so page order and query order live
    on the same curve.  Empty pages key to the bounds center.
    """
    dataset = index.dataset
    table = index.page_table
    bounds = dataset.bounds.inflate(1e-6)
    lo = np.asarray(bounds.lo, dtype=np.float64)
    extent = np.asarray(bounds.hi, dtype=np.float64) - lo
    extent = np.where(extent > 0, extent, 1.0)
    cells = 1 << bits
    centroids = dataset.centroids
    dims = dataset.dims
    keys = np.empty(table.n_pages, dtype=np.int64)
    for page in range(table.n_pages):
        objects = table.objects_of_page(page)
        if len(objects):
            center = centroids[objects].mean(axis=0)
        else:
            center = lo + extent / 2.0
        frac = np.clip((center - lo) / extent, 0.0, 1.0)
        coord = np.minimum((frac * cells).astype(np.int64), cells - 1)
        keys[page] = hilbert_encode([int(c) for c in coord[:dims]], bits)
    return keys


#: index -> {bits: keys}.  Page tables are immutable once built, so the
#: derivation is a pure function of (index, bits); memoizing it keeps
#: repeated ``make_sharded_cache`` calls (one per timed serving run, one
#: per sweep cell) off the per-page encoding loop.
_PAGE_KEY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _cached_page_keys(index, bits: int) -> np.ndarray:
    try:
        per_index = _PAGE_KEY_CACHE.setdefault(index, {})
    except TypeError:  # index type refuses weak references
        return page_hilbert_keys(index, bits)
    keys = per_index.get(bits)
    if keys is None:
        keys = page_hilbert_keys(index, bits)
        keys.flags.writeable = False  # shared across caches; splits copy it
        per_index[bits] = keys
    return keys


def _split_keys(page_keys: np.ndarray, n_shards: int) -> np.ndarray:
    """``n_shards - 1`` split keys cutting the sorted key sequence into
    (as close as possible) equal page counts.  Shard of a key is
    ``searchsorted(splits, key, side="right")``: split ``i`` is the
    lowest key owned by shard ``i + 1``.
    """
    ordered = np.sort(np.asarray(page_keys, dtype=np.int64))
    n = ordered.size
    positions = [min(round(i * n / n_shards), n - 1) for i in range(1, n_shards)]
    return ordered[positions].copy()


class ShardedCache:
    """K cache shards behind the single-cache observable contract.

    Top-level counters (``hits``/``misses``/``evictions``/
    ``insertions``, ``capacity_pages``, ``len``) are sums over the
    shards, so they exactly partition the request stream.  Batch
    operations route once (:meth:`route_many`), fan out per shard in
    input order, and reassemble results into input order.

    ``cached_pages()`` concatenates per-shard LRU-first listings in
    shard order; a *global* recency order across shards does not exist
    (each node ages independently), and with ``K = 1`` the listing is
    exactly the unsharded one.
    """

    def __init__(
        self,
        spec: ShardSpec,
        shards: Iterable[PrefetchCache | ArrayCache],
        page_keys: np.ndarray | None = None,
        splits: np.ndarray | None = None,
    ) -> None:
        self.spec = spec
        self._shards = list(shards)
        if len(self._shards) != spec.n_shards:
            raise ValueError(
                f"spec names {spec.n_shards} shards, got {len(self._shards)}"
            )
        self._k = spec.n_shards
        if spec.partition == "hilbert" and self._k > 1:
            if page_keys is None:
                raise ValueError("hilbert partitioning needs per-page keys")
            self._page_keys = np.asarray(page_keys, dtype=np.int64)
            self._splits = (
                np.asarray(splits, dtype=np.int64)
                if splits is not None
                else _split_keys(self._page_keys, self._k)
            )
            if self._splits.size != self._k - 1:
                raise ValueError(
                    f"need {self._k - 1} split keys, got {self._splits.size}"
                )
        else:
            self._page_keys = None
            self._splits = None
        # Routing / rebalancing state and counters.
        self.hops = 0
        self.hop_seconds = 0.0
        self.rebalance_events = 0
        self.pages_moved = 0
        self._ewma = np.zeros(self._k, dtype=np.float64)
        self._batches = 0
        if self._k == 1:
            # Compile the pass-through: bind the single shard's bound
            # methods onto the instance so every K = 1 operation costs
            # one attribute lookup, nothing else (the routing guards in
            # the class methods below never run).
            inner = self._shards[0]
            for name in (
                "touch",
                "insert",
                "insert_many",
                "discard",
                "touch_many",
                "contains_many",
                "missing_many",
                "owners_many",
                "evicted_many",
            ):
                setattr(self, name, getattr(inner, name))

    # -- routing --------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._k

    @property
    def shards(self) -> list[PrefetchCache | ArrayCache]:
        """The inner per-shard caches (read-only use intended)."""
        return self._shards

    @property
    def split_keys(self) -> np.ndarray | None:
        """Current range-partition split keys (``None`` for hash/K=1)."""
        return None if self._splits is None else self._splits.copy()

    def route(self, page_id: int) -> int:
        """Owning shard of one page under the current partition."""
        if self._k == 1:
            return 0
        if self._splits is None:
            return int(slice_of(int(page_id), self._k))
        return int(
            np.searchsorted(self._splits, self._page_keys[int(page_id)], side="right")
        )

    def route_many(self, page_ids) -> np.ndarray:
        """Owning shard of each page: ONE ``searchsorted`` per batch."""
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return np.zeros(pages.size, dtype=np.int64)
        if self._splits is None:
            return slice_of(pages, self._k)
        return np.searchsorted(self._splits, self._page_keys[pages], side="right")

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, page_id: int) -> bool:
        return int(page_id) in self._shards[self.route(int(page_id))]

    @property
    def capacity_pages(self) -> int:
        return sum(shard.capacity_pages for shard in self._shards)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity_pages

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    @property
    def insertions(self) -> int:
        return sum(shard.insertions for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def cached_pages(self) -> list[int]:
        """Cached pages, shard order, LRU-first within each shard."""
        out: list[int] = []
        for shard in self._shards:
            out.extend(shard.cached_pages())
        return out

    def owner_of(self, page_id: int) -> int | None:
        return self._shards[self.route(int(page_id))].owner_of(page_id)

    def was_evicted(self, page_id: int) -> bool:
        return self._shards[self.route(int(page_id))].was_evicted(page_id)

    def per_shard_stats(self) -> list[dict[str, int]]:
        """Per-shard counter snapshot (the report's ``shards`` rows)."""
        return [
            {
                "hits": shard.hits,
                "misses": shard.misses,
                "evictions": shard.evictions,
                "insertions": shard.insertions,
                "occupancy": len(shard),
                "capacity_pages": shard.capacity_pages,
            }
            for shard in self._shards
        ]

    # -- operations -----------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        return self._shards[self.route(int(page_id))].touch(page_id)

    def insert(self, page_id: int, owner: int | None = None) -> None:
        self._shards[self.route(int(page_id))].insert(page_id, owner)

    def insert_many(self, page_ids, owner: int | None = None) -> None:
        if self._k == 1:
            self._shards[0].insert_many(page_ids, owner)
            return
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if pages.size == 0:
            return
        routed = self.route_many(pages)
        first = int(routed[0])
        if np.all(routed == first):
            self._shards[first].insert_many(pages, owner)
            return
        for shard_id in np.unique(routed):
            self._shards[shard_id].insert_many(pages[routed == shard_id], owner)

    def discard(self, page_id: int) -> bool:
        return self._shards[self.route(int(page_id))].discard(page_id)

    def clear(self) -> None:
        """Drop all cached pages; load history and splits persist."""
        for shard in self._shards:
            shard.clear()

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.reset_stats()
        self.hops = 0
        self.hop_seconds = 0.0
        self.rebalance_events = 0
        self.pages_moved = 0

    # -- batch operations -----------------------------------------------------

    def touch_many(self, page_ids) -> np.ndarray:
        """Touch every page on its owning shard; boolean hit mask.

        The demand path: this is where hop latency accrues (one hop per
        extra shard the batch fans out to) and where the hot-shard
        EWMA is fed.  Per-shard sub-batches preserve input order, so
        each shard sees exactly the touches it would have seen had
        every element been routed individually.
        """
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return self._shards[0].touch_many(pages)
        if pages.size == 0:
            return np.zeros(0, dtype=bool)
        routed = self.route_many(pages)
        counts = np.bincount(routed, minlength=self._k)
        contacted = np.flatnonzero(counts)
        if contacted.size == 1:
            # The common case under Hilbert locality: a query's pages
            # land on one shard, so the whole batch delegates intact.
            hit = self._shards[int(contacted[0])].touch_many(pages)
        else:
            hit = np.zeros(pages.size, dtype=bool)
            for shard_id in contacted:
                mask = routed == shard_id
                hit[mask] = self._shards[shard_id].touch_many(pages[mask])
        extra = int(contacted.size) - 1
        if extra > 0:
            self.hops += extra
            self.hop_seconds += extra * self.spec.hop_latency_s
        lam = self.spec.rebalance_lambda
        self._ewma = (1.0 - lam) * self._ewma + lam * counts
        self._batches += 1
        if self.spec.rebalance and self._batches % self.spec.rebalance_interval == 0:
            self._maybe_rebalance()
        return hit

    def contains_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return self._shards[0].contains_many(pages)
        if pages.size == 0:
            return np.zeros(0, dtype=bool)
        routed = self.route_many(pages)
        first = int(routed[0])
        if np.all(routed == first):
            return self._shards[first].contains_many(pages)
        out = np.zeros(pages.size, dtype=bool)
        for shard_id in np.unique(routed):
            mask = routed == shard_id
            out[mask] = self._shards[shard_id].contains_many(pages[mask])
        return out

    def missing_many(self, page_ids) -> list[int]:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return self._shards[0].missing_many(pages)
        if pages.size == 0:
            return []
        routed = self.route_many(pages)
        first = int(routed[0])
        if np.all(routed == first):
            return self._shards[first].missing_many(pages)
        return [int(p) for p in pages[~self.contains_many(pages)]]

    def owners_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return self._shards[0].owners_many(pages)
        if pages.size == 0:
            return np.full(0, NO_OWNER, dtype=np.int64)
        routed = self.route_many(pages)
        first = int(routed[0])
        if np.all(routed == first):
            return self._shards[first].owners_many(pages)
        out = np.full(pages.shape, NO_OWNER, dtype=np.int64)
        for shard_id in np.unique(routed):
            mask = routed == shard_id
            out[mask] = self._shards[shard_id].owners_many(pages[mask])
        return out

    def evicted_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if self._k == 1:
            return self._shards[0].evicted_many(pages)
        if pages.size == 0:
            return np.zeros(0, dtype=bool)
        routed = self.route_many(pages)
        first = int(routed[0])
        if np.all(routed == first):
            return self._shards[first].evicted_many(pages)
        out = np.zeros(pages.shape, dtype=bool)
        for shard_id in np.unique(routed):
            mask = routed == shard_id
            out[mask] = self._shards[shard_id].evicted_many(pages[mask])
        return out

    # -- rebalancing ----------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        """Move one split point off the hottest shard, if any is hot.

        Deterministic: driven solely by the EWMA state (a pure function
        of the touch sequence) and the static page keys.  The hot
        shard's owned key range is cut at the median owned key; the
        released half goes to the colder adjacent shard.  Cached pages
        whose owner changed migrate in LRU-first order with their owner
        tags (``discard`` + ``insert``: no eviction accounting at the
        source; migrations do count as insertions at the destination).
        """
        mean = float(self._ewma.mean())
        if mean <= 0.0:
            return
        hot = int(np.argmax(self._ewma))
        if float(self._ewma[hot]) <= self.spec.rebalance_threshold * mean:
            return
        owners = np.searchsorted(self._splits, self._page_keys, side="right")
        hot_keys = np.sort(self._page_keys[owners == hot])
        if hot_keys.size < 2:
            return
        median = int(hot_keys[hot_keys.size // 2])
        lower = int(self._splits[hot - 1]) if hot > 0 else None
        upper = int(self._splits[hot]) if hot < self._k - 1 else None
        # Donating down (raise splits[hot-1] to the median) hands keys in
        # [lower, median) to shard hot-1; donating up (drop splits[hot] to
        # the median) hands keys in [median, upper) to shard hot+1.  A
        # direction is viable when it actually moves the boundary and
        # keeps the split keys sorted.
        can_down = lower is not None and median > lower and (upper is None or median <= upper)
        can_up = upper is not None and median < upper and (lower is None or median > lower)
        if can_down and can_up:
            down = float(self._ewma[hot - 1]) <= float(self._ewma[hot + 1])
        elif can_down or can_up:
            down = can_down
        else:
            return
        if down:
            destination = hot - 1
            self._splits[hot - 1] = median
        else:
            destination = hot + 1
            self._splits[hot] = median
        source_cache = self._shards[hot]
        moved = [
            page
            for page in source_cache.cached_pages()
            if (int(self._page_keys[page]) < median) == down
        ]
        for page in moved:
            owner = source_cache.owner_of(page)
            source_cache.discard(page)
            self._shards[destination].insert(page, owner)
        self.pages_moved += len(moved)
        self.rebalance_events += 1
        # Cool the pair to their joint mean so the same imbalance does
        # not re-trigger before fresh load is observed.
        pair_mean = (self._ewma[hot] + self._ewma[destination]) / 2.0
        self._ewma[hot] = pair_mean
        self._ewma[destination] = pair_mean


def make_sharded_cache(
    spec: ShardSpec,
    backend: str,
    capacity_pages: int,
    index=None,
) -> ShardedCache:
    """Compile ``spec`` into a :class:`ShardedCache` of ``backend`` shards.

    ``capacity_pages`` is the *total* budget unless the spec pins
    ``shard_cache_pages`` (per shard -- the scale-out story: each shard
    is its own node with its own memory).  ``hilbert`` partitioning
    with ``K > 1`` derives page keys from ``index`` (its dataset and
    page table); ``hash`` and ``K = 1`` need no index.
    """
    if spec.shard_cache_pages is not None:
        capacities = [spec.shard_cache_pages] * spec.n_shards
    else:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        base, remainder = divmod(int(capacity_pages), spec.n_shards)
        capacities = [
            base + (1 if shard < remainder else 0) for shard in range(spec.n_shards)
        ]
    shards = [make_cache(backend, pages) for pages in capacities]
    page_keys = None
    if spec.partition == "hilbert" and spec.n_shards > 1:
        if index is None:
            raise ValueError("hilbert partitioning needs the spatial index")
        page_keys = _cached_page_keys(index, spec.hilbert_bits)
    return ShardedCache(spec, shards, page_keys=page_keys)
