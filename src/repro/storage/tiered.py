"""Tiered storage: a second cache tier plus pluggable miss-path mechanisms.

The serving stack so far reads every miss straight from the analytic
disk model.  Real deployments interpose a storage-side tier (an SSD or
host-memory page cache in front of the array) and, below it, small
hardware-ish structures that absorb specific miss patterns.  This module
models that hierarchy as a :class:`TieredStore` that is
interface-identical to :class:`~repro.storage.disk.DiskModel` /
:class:`~repro.storage.faults.FaultyDiskModel`, so every consumer --
``QuerySession``, ``ServingSimulator`` (both schedulers), the serving
daemon -- takes it unchanged.

The miss path follows the SimpleScalar memory-hierarchy taxonomy
(SNIPPETS.md, Snippet 3): on a tier miss the request probes, in order,

* a **victim buffer** -- a small fully-associative LRU holding pages
  recently evicted from the tier; a hit swaps the page back without
  touching the backing store;
* a **stream buffer** -- sequential-run readahead: each backing read
  prefills the next ``stream_depth`` page ids after every contiguous
  run, so sequential sweeps (exactly what prefetch plans emit) hit
  without re-positioning;
* a **miss cache** -- an LRU of recently *missed* page tags; a tag hit
  counts the request as resolved at the miss cache and bypasses the
  backing store (the structure measures what a small miss-holding
  buffer would absorb).

Mechanism hits are free, per the snippet's "no additional timing
penalty" modeling assumption; only backing reads charge time, through
the wrapped inner model (the sole mover of the simulated disk head), so
the per-tier partition invariant holds on every fault-free run::

    requests == tier_hits + victim_hits + stream_hits + miss_hits
                + backing_pages (+ failed_fills under faults)

With the tier disabled (``tier_pages=0`` and ``miss_path="none"``) every
call delegates verbatim to the inner model -- bit-identical times and
:class:`~repro.storage.stats.IOStats`, preserving the repo's determinism
contract and every golden fixture.  The ``mmap`` backend additionally
serves *real bytes* from a :class:`~repro.storage.pagefile.PageFile`
(checksum-verified per slot; torn slots are repaired from the page
table, never served) while simulated time still comes from the inner
model, so a healthy page file is also metric-identical.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Mapping

from repro.storage.disk import DiskModel, DiskParameters
from repro.storage.faults import FaultyDiskModel, ReadFailure
from repro.storage.pagefile import PageFile, TornPageError
from repro.storage.stats import IOStats

__all__ = [
    "MISS_PATHS",
    "STORAGE_BACKENDS",
    "StorageSpec",
    "TierStats",
    "TieredStore",
    "make_storage",
]

#: Miss-path mechanism names, per the SimpleScalar taxonomy.
MISS_PATHS = ("none", "victim", "miss", "stream", "combined")

#: Registered page-store backend names (the keys of the builder registry).
STORAGE_BACKENDS = ("ram", "mmap")


@dataclass(frozen=True)
class StorageSpec:
    """Picklable spec of the storage hierarchy in front of the disk.

    Frozen and hashable so it can ride inside frozen simulation configs
    and cell specs, like :class:`~repro.storage.faults.FaultPlan`.  The
    default spec (``ram`` backend, no tier, no miss path) is a pure
    pass-through, bit-identical to the bare disk model.
    """

    #: Where page bytes live: ``ram`` (the page table itself) or
    #: ``mmap`` (an on-disk :class:`~repro.storage.pagefile.PageFile`).
    backend: str = "ram"
    #: Miss-path mechanism: one of :data:`MISS_PATHS`.
    miss_path: str = "none"
    #: Capacity of the storage-side tier cache, in pages; 0 disables it.
    tier_pages: int = 0
    #: Entries in the fully-associative victim buffer.
    victim_entries: int = 8
    #: Entries in the miss-cache tag store.
    miss_entries: int = 16
    #: Pages of sequential readahead per contiguous run.
    stream_depth: int = 4
    #: Simulated stall charged per backing fill call, in seconds --
    #: the tier's analogue of the fault plane's latency surcharges.
    fill_stall_s: float = 0.0
    #: Page-file location for the ``mmap`` backend; ``None`` uses a
    #: private temporary file (kept out of cell specs so content hashes
    #: stay machine-independent).
    path: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in STORAGE_BACKENDS:
            raise ValueError(
                f"unknown storage backend {self.backend!r}; known: {list(STORAGE_BACKENDS)}"
            )
        if self.miss_path not in MISS_PATHS:
            raise ValueError(
                f"unknown miss path {self.miss_path!r}; known: {list(MISS_PATHS)}"
            )
        if self.tier_pages < 0:
            raise ValueError(f"tier_pages must be >= 0, got {self.tier_pages}")
        if self.victim_entries < 1 or self.miss_entries < 1 or self.stream_depth < 1:
            raise ValueError("mechanism capacities must be >= 1")
        if self.fill_stall_s < 0:
            raise ValueError(f"fill_stall_s must be >= 0, got {self.fill_stall_s}")

    @property
    def tiering_active(self) -> bool:
        """Whether any tier structure can change the backing read set."""
        return self.tier_pages > 0 or self.miss_path != "none"

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StorageSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown storage spec key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass
class TierStats:
    """Per-layer counters of the tiered store (hits, fills, writebacks).

    One instance per store; the serving layer snapshots it around each
    session phase to attribute deltas per client.  All fields are
    additive, so :meth:`merged_with` mirrors
    :class:`~repro.storage.stats.IOStats`.
    """

    #: Pages requested through the tiered read path.
    requests: int = 0
    #: Requests satisfied by the tier cache.
    tier_hits: int = 0
    #: Requests satisfied by the victim buffer (swapped back, no I/O).
    victim_hits: int = 0
    #: Requests satisfied by the stream buffer's readahead.
    stream_hits: int = 0
    #: Requests resolved at the miss cache (backing store bypassed).
    miss_hits: int = 0
    #: Pages filled into the tier from the backing store.
    backing_pages: int = 0
    #: Backing-store read calls issued.
    backing_calls: int = 0
    #: Pages evicted from the tier cache.
    tier_evictions: int = 0
    #: Evicted pages written back into the victim buffer.
    writebacks: int = 0
    #: Pages whose backing fill failed (exhausted-retries read faults).
    failed_fills: int = 0
    #: Simulated fill-stall seconds charged (included in ``seconds_busy``).
    stall_seconds: float = 0.0
    #: Page-file slots that failed checksum verification when served.
    torn_detected: int = 0
    #: Torn slots repaired from the page table (and cleanly re-read).
    torn_repaired: int = 0

    def merged_with(self, other: "TierStats") -> "TierStats":
        return TierStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def snapshot(self) -> "TierStats":
        return TierStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    @property
    def mechanism_hits(self) -> int:
        """Hits absorbed by the miss-path mechanisms (below the tier)."""
        return self.victim_hits + self.stream_hits + self.miss_hits


class TieredStore:
    """A disk-interface-identical wrapper adding a tier and miss path.

    Wraps a :class:`~repro.storage.disk.DiskModel` or
    :class:`~repro.storage.faults.FaultyDiskModel` and exposes the exact
    same surface (``params`` / ``stats`` / ``read_pages`` /
    ``trim_to_budget`` / ``cost_if_cold`` / ``estimate_read_time`` /
    ``reset_head`` / ``reset_stats``) plus the fault plane's recovery
    surface when the inner model carries one.  Planning calls
    (``trim_to_budget``, ``cost_if_cold``, ``estimate_read_time``)
    delegate to the inner model unconditionally: windows are sized from
    nominal device cost, conservatively ignoring tier hits, exactly as
    the fault layer sizes them from the healthy model.
    """

    def __init__(
        self,
        inner: DiskModel | FaultyDiskModel | None = None,
        spec: StorageSpec | None = None,
        page_table=None,
    ) -> None:
        self._inner = inner if inner is not None else DiskModel()
        self.spec = spec or StorageSpec()
        self.tier_stats = TierStats()
        self._tier: OrderedDict[int, None] = OrderedDict()
        self._victim: OrderedDict[int, None] = OrderedDict()
        self._stream: OrderedDict[int, None] = OrderedDict()
        self._miss_tags: OrderedDict[int, None] = OrderedDict()
        self._use_victim = self.spec.miss_path in ("victim", "combined")
        self._use_stream = self.spec.miss_path in ("stream", "combined")
        self._use_miss = self.spec.miss_path in ("miss", "combined")
        self._tiering = self.spec.tiering_active
        self._page_table = None
        self._pagefile: PageFile | None = None
        self._owns_pagefile = False
        if page_table is not None:
            self.bind_page_table(page_table)

    # -- delegated surface --------------------------------------------------

    @property
    def params(self) -> DiskParameters:
        return self._inner.params

    @property
    def stats(self) -> IOStats:
        return self._inner.stats

    @property
    def fault_disk(self) -> FaultyDiskModel | None:
        """The wrapped fault surface, if the inner model carries one."""
        return self._inner if isinstance(self._inner, FaultyDiskModel) else None

    @property
    def tiering_active(self) -> bool:
        return self._tiering

    def reset_head(self) -> None:
        self._inner.reset_head()

    def reset_stats(self) -> None:
        self._inner.reset_stats()
        self.tier_stats = TierStats()
        self._tier.clear()
        self._victim.clear()
        self._stream.clear()
        self._miss_tags.clear()

    def trim_to_budget(
        self, page_ids: Sequence[int] | Iterable[int], budget_s: float
    ) -> list[int]:
        return self._inner.trim_to_budget(page_ids, budget_s)

    def cost_if_cold(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        return self._inner.cost_if_cold(page_ids)

    def estimate_read_time(self, n_pages: int, contiguous_fraction: float = 0.5) -> float:
        return self._inner.estimate_read_time(n_pages, contiguous_fraction)

    def verify_delivery(self, page_ids: Sequence[int] | Iterable[int], page_table) -> float:
        faulty = self.fault_disk
        return 0.0 if faulty is None else faulty.verify_delivery(page_ids, page_table)

    def recover_read(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        faulty = self.fault_disk
        if faulty is not None:
            return faulty.recover_read(page_ids)
        return self._inner.read_pages(page_ids)

    # -- the tiered read path ------------------------------------------------

    def read_pages(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        """Charge and return the time to read the pages through the tiers.

        Each page resolves at exactly one layer (tier cache, victim
        buffer, stream buffer, miss cache, or the backing store), and
        only the backing batch charges time.  With tiering disabled the
        call is a verbatim delegation -- no extra float operations, no
        randomness -- so the disabled store is bit-identical to the
        inner model.
        """
        if not self._tiering:
            elapsed = self._inner.read_pages(page_ids)
            if self._pagefile is not None:
                elapsed += self._serve_slots(sorted(set(int(p) for p in page_ids)))
            return elapsed

        pages = sorted(set(int(p) for p in page_ids))
        if not pages:
            return 0.0
        ts = self.tier_stats
        ts.requests += len(pages)
        misses: list[int] = []
        for page in pages:
            if self._tier_touch(page):
                ts.tier_hits += 1
            elif self._use_victim and page in self._victim:
                del self._victim[page]
                ts.victim_hits += 1
                self._tier_fill(page)
            elif self._use_stream and page in self._stream:
                del self._stream[page]
                ts.stream_hits += 1
                self._tier_fill(page)
            elif self._use_miss and page in self._miss_tags:
                ts.miss_hits += 1
                self._miss_tags.move_to_end(page)
                self._tier_fill(page)
            else:
                misses.append(page)
        if not misses:
            return 0.0

        try:
            elapsed = self._inner.read_pages(misses)
        except ReadFailure:
            ts.failed_fills += len(misses)
            raise
        ts.backing_pages += len(misses)
        ts.backing_calls += 1
        stall = self.spec.fill_stall_s
        if stall:
            ts.stall_seconds += stall
            self._inner.stats.seconds_busy += stall
            elapsed += stall
        if self._pagefile is not None:
            elapsed += self._serve_slots(misses)
        if self._use_miss:
            for page in misses:
                self._miss_tags[page] = None
                self._miss_tags.move_to_end(page)
                if len(self._miss_tags) > self.spec.miss_entries:
                    self._miss_tags.popitem(last=False)
        if self._use_stream:
            self._stream_fill(misses)
        for page in misses:
            self._tier_fill(page)
        return elapsed

    # -- tier structures ----------------------------------------------------

    def _tier_touch(self, page: int) -> bool:
        if page in self._tier:
            self._tier.move_to_end(page)
            return True
        return False

    def _tier_fill(self, page: int) -> None:
        if self.spec.tier_pages <= 0:
            return
        self._tier[page] = None
        self._tier.move_to_end(page)
        if len(self._tier) > self.spec.tier_pages:
            evicted, _ = self._tier.popitem(last=False)
            self.tier_stats.tier_evictions += 1
            if self._use_victim:
                self.tier_stats.writebacks += 1
                self._victim[evicted] = None
                self._victim.move_to_end(evicted)
                if len(self._victim) > self.spec.victim_entries:
                    self._victim.popitem(last=False)

    def _stream_fill(self, misses: Sequence[int]) -> None:
        """Prefill the successors of every contiguous run of the batch."""
        depth = self.spec.stream_depth
        capacity = depth * 4
        limit = None if self._page_table is None else self._page_table.n_pages
        for i, page in enumerate(misses):
            if i + 1 < len(misses) and misses[i + 1] == page + 1:
                continue  # not a run tail
            for ahead in range(page + 1, page + 1 + depth):
                if limit is not None and ahead >= limit:
                    break
                self._stream[ahead] = None
                self._stream.move_to_end(ahead)
        while len(self._stream) > capacity:
            self._stream.popitem(last=False)

    # -- byte service (mmap backend) ----------------------------------------

    def bind_page_table(self, page_table) -> None:
        """Attach the ground-truth page table (and open the page file).

        The ``mmap`` backend needs the table both to build its slots and
        to repair torn ones; the ``ram`` backend ignores it beyond using
        ``n_pages`` to bound stream readahead.  Safe to call repeatedly
        with the same table.
        """
        if page_table is self._page_table:
            return
        self._page_table = page_table
        if self.spec.backend != "mmap" or page_table is None:
            return
        if self._pagefile is not None:
            self._pagefile.close()
        if self.spec.path is not None:
            path = Path(self.spec.path)
            if path.exists():
                self._pagefile = PageFile(path)
                self._owns_pagefile = False
                return
        else:
            fd, name = tempfile.mkstemp(prefix="scout-pages-", suffix=".pf")
            os.close(fd)
            os.unlink(name)
            path = Path(name)
        self._pagefile = PageFile.create(path, page_table)
        self._owns_pagefile = self.spec.path is None

    def _serve_slots(self, pages: Sequence[int]) -> float:
        """Fetch real bytes for the pages; repair (never serve) torn slots.

        Verified slots cost nothing extra in simulated time -- the inner
        model already charged the read.  A torn slot (crashed writer) is
        detected by checksum, repaired from the page table, and charged
        one clean re-read, mirroring the fault plane's read-repair.
        """
        repair = 0.0
        for page in pages:
            if page >= self._pagefile.n_pages:
                continue
            try:
                self._pagefile.read_page(page)
            except TornPageError:
                self.tier_stats.torn_detected += 1
                self._pagefile.repair_page(page, self._page_table)
                self.tier_stats.torn_repaired += 1
                repair += self._inner.read_pages([page])
        return repair

    @property
    def pagefile(self) -> PageFile | None:
        return self._pagefile

    def close(self) -> None:
        """Flush and close the page file; remove it if it was private."""
        if self._pagefile is None:
            return
        path = self._pagefile.path
        self._pagefile.close()
        self._pagefile = None
        if self._owns_pagefile:
            try:
                os.unlink(path)
            except OSError:
                pass


def _build_ram(inner, spec: StorageSpec, page_table) -> TieredStore:
    return TieredStore(inner, spec, page_table=page_table)


def _build_mmap(inner, spec: StorageSpec, page_table) -> TieredStore:
    return TieredStore(inner, spec, page_table=page_table)


#: Storage backend registry; mirrors ``repro.storage.cache.make_cache``.
_STORAGE_BACKENDS = {"ram": _build_ram, "mmap": _build_mmap}


def make_storage(
    inner: DiskModel | FaultyDiskModel,
    spec: StorageSpec,
    page_table=None,
) -> TieredStore:
    """Build the configured storage stack around an inner disk model.

    ``spec.backend`` selects the byte service from the backend registry
    (``ram`` serves from the page table, ``mmap`` from a checksummed
    page file); the tier cache and miss-path mechanism ride on top in
    either case.
    """
    builder = _STORAGE_BACKENDS.get(spec.backend)
    if builder is None:
        raise ValueError(
            f"unknown storage backend {spec.backend!r}; "
            f"known: {sorted(_STORAGE_BACKENDS)}"
        )
    return builder(inner, spec, page_table)
