"""Page-granular LRU prefetch cache.

The paper reserves 4 GB of RAM for prefetched data (§7.1) and clears the
cache between sequences.  Capacity here is expressed in pages; the
simulator scales it with the dataset so that the *ratio* of cache size to
query result size matches the paper's regime.  Section 7.4.4 notes that a
small cache halts prefetching prematurely exactly like a short prefetch
window -- the eviction-on-full behaviour below is what produces that
effect in the sensitivity benchmarks.

The serving layer (DESIGN.md §6) shares one cache between many client
sessions, so every cached page carries an optional *owner* tag (the
client that prefetched it) and the cache remembers which pages it has
evicted: together these let :class:`~repro.sim.serve.ServingSimulator`
attribute a hit to the client whose prefetch produced it (cross-client
hits) and a miss to contention (eviction-induced misses).  Single-client
callers ignore both facilities; they change no eviction or counting
behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

__all__ = ["PrefetchCache"]


class PrefetchCache:
    """A bounded set of cached page ids with least-recently-used eviction."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_pages = int(capacity_pages)
        # page id -> owner tag of the client that first inserted it
        # (None for untagged single-client use).
        self._pages: OrderedDict[int, int | None] = OrderedDict()
        self._evicted: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return int(page_id) in self._pages

    @property
    def is_full(self) -> bool:
        return len(self._pages) >= self.capacity_pages

    def cached_pages(self) -> list[int]:
        """Page ids currently cached, least-recently-used first."""
        return list(self._pages.keys())

    def owner_of(self, page_id: int) -> int | None:
        """Owner tag of a cached page (``None`` if untagged or absent).

        Ownership is first-inserter-wins: a re-insert refreshes recency
        but keeps the original tag, so a cross-client hit credits the
        client whose prefetch actually brought the page in.
        """
        return self._pages.get(int(page_id))

    def was_evicted(self, page_id: int) -> bool:
        """Whether the page was cached at some point and then evicted.

        A miss on such a page is *eviction-induced*: the data had been
        prefetched but was pushed out (by cache pressure, e.g. from
        other clients sharing the cache) before it was used.  Re-inserting
        the page clears the mark.
        """
        return int(page_id) in self._evicted

    # -- operations ----------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        """Record an access; returns ``True`` on a hit.

        Hits refresh recency.  Misses only count -- the caller decides
        whether to :meth:`insert` the page after reading it from disk.
        """
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page_id: int, owner: int | None = None) -> None:
        """Add a page, evicting the least recently used page when full.

        ``owner`` tags the page with the inserting client for shared-cache
        accounting; re-inserts keep the original tag (and recency moves
        to the end, as before).
        """
        if self.capacity_pages == 0:
            return
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return
        while len(self._pages) >= self.capacity_pages:
            evicted, _ = self._pages.popitem(last=False)
            self._evicted.add(evicted)
            self.evictions += 1
        self._pages[page_id] = owner
        self._evicted.discard(page_id)
        self.insertions += 1

    def insert_many(self, page_ids: Iterable[int], owner: int | None = None) -> None:
        for page_id in page_ids:
            self.insert(page_id, owner)

    def clear(self) -> None:
        """Drop all cached pages (the paper clears caches between sequences)."""
        self._pages.clear()
        self._evicted.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
