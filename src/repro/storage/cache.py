"""Page-granular LRU prefetch cache.

The paper reserves 4 GB of RAM for prefetched data (§7.1) and clears the
cache between sequences.  Capacity here is expressed in pages; the
simulator scales it with the dataset so that the *ratio* of cache size to
query result size matches the paper's regime.  Section 7.4.4 notes that a
small cache halts prefetching prematurely exactly like a short prefetch
window -- the eviction-on-full behaviour below is what produces that
effect in the sensitivity benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

__all__ = ["PrefetchCache"]


class PrefetchCache:
    """A bounded set of cached page ids with least-recently-used eviction."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_pages = int(capacity_pages)
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return int(page_id) in self._pages

    @property
    def is_full(self) -> bool:
        return len(self._pages) >= self.capacity_pages

    def cached_pages(self) -> list[int]:
        """Page ids currently cached, least-recently-used first."""
        return list(self._pages.keys())

    # -- operations ----------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        """Record an access; returns ``True`` on a hit.

        Hits refresh recency.  Misses only count -- the caller decides
        whether to :meth:`insert` the page after reading it from disk.
        """
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page_id: int) -> None:
        """Add a page, evicting the least recently used page when full."""
        if self.capacity_pages == 0:
            return
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[page_id] = None
        self.insertions += 1

    def insert_many(self, page_ids: Iterable[int]) -> None:
        for page_id in page_ids:
            self.insert(page_id)

    def clear(self) -> None:
        """Drop all cached pages (the paper clears caches between sequences)."""
        self._pages.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
