"""Page-granular LRU prefetch cache.

The paper reserves 4 GB of RAM for prefetched data (§7.1) and clears the
cache between sequences.  Capacity here is expressed in pages; the
simulator scales it with the dataset so that the *ratio* of cache size to
query result size matches the paper's regime.  Section 7.4.4 notes that a
small cache halts prefetching prematurely exactly like a short prefetch
window -- the eviction-on-full behaviour below is what produces that
effect in the sensitivity benchmarks.

The serving layer (DESIGN.md §6) shares one cache between many client
sessions, so every cached page carries an optional *owner* tag (the
client that prefetched it) and the cache remembers which pages it has
evicted: together these let :class:`~repro.sim.serve.ServingSimulator`
attribute a hit to the client whose prefetch produced it (cross-client
hits) and a miss to contention (eviction-induced misses).  Single-client
callers ignore both facilities; they change no eviction or counting
behaviour.

Two interchangeable implementations share one observable contract:

* :class:`PrefetchCache` -- the original ``OrderedDict`` cache, one
  Python dict operation per page;
* :class:`ArrayCache` -- a slot-array cache (page-id -> slot lookup
  table, epoch-counter LRU) whose batch operations are vectorized for
  the many-client serving plane.

Both expose the same scalar methods plus the batch API
(:meth:`touch_many`, :meth:`contains_many`, :meth:`missing_many`,
:meth:`owners_many`, :meth:`evicted_many`); the property suite in
``tests/test_cache_properties.py`` runs random operation sequences
against both and requires identical observable state after every step.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

import numpy as np

__all__ = ["ArrayCache", "PrefetchCache", "make_cache"]

#: Owner sentinel used by the vectorized owner lookups: untagged pages
#: (single-client use) report ``-1``, which never equals a client id.
NO_OWNER = -1

#: Sentinel distinguishing "absent" from a cached ``None`` owner tag.
_MISSING = object()


class PrefetchCache:
    """A bounded set of cached page ids with least-recently-used eviction."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_pages = int(capacity_pages)
        # page id -> owner tag of the client that first inserted it
        # (None for untagged single-client use).
        self._pages: OrderedDict[int, int | None] = OrderedDict()
        self._evicted: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return int(page_id) in self._pages

    @property
    def is_full(self) -> bool:
        return len(self._pages) >= self.capacity_pages

    def cached_pages(self) -> list[int]:
        """Page ids currently cached, least-recently-used first."""
        return list(self._pages.keys())

    def owner_of(self, page_id: int) -> int | None:
        """Owner tag of a cached page (``None`` if untagged or absent).

        Ownership is first-inserter-wins: a re-insert refreshes recency
        but keeps the original tag, so a cross-client hit credits the
        client whose prefetch actually brought the page in.
        """
        return self._pages.get(int(page_id))

    def was_evicted(self, page_id: int) -> bool:
        """Whether the page was cached at some point and then evicted.

        A miss on such a page is *eviction-induced*: the data had been
        prefetched but was pushed out (by cache pressure, e.g. from
        other clients sharing the cache) before it was used.  Re-inserting
        the page clears the mark.
        """
        return int(page_id) in self._evicted

    # -- operations ----------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        """Record an access; returns ``True`` on a hit.

        Hits refresh recency.  Misses only count -- the caller decides
        whether to :meth:`insert` the page after reading it from disk.
        """
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page_id: int, owner: int | None = None) -> None:
        """Add a page, evicting the least recently used page when full.

        ``owner`` tags the page with the inserting client for shared-cache
        accounting; re-inserts keep the original tag (and recency moves
        to the end, as before).
        """
        if self.capacity_pages == 0:
            return
        page_id = int(page_id)
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            return
        while len(self._pages) >= self.capacity_pages:
            evicted, _ = self._pages.popitem(last=False)
            self._evicted.add(evicted)
            self.evictions += 1
        self._pages[page_id] = owner
        self._evicted.discard(page_id)
        self.insertions += 1

    def insert_many(self, page_ids: Iterable[int], owner: int | None = None) -> None:
        for page_id in page_ids:
            self.insert(page_id, owner)

    def discard(self, page_id: int) -> bool:
        """Remove a page without eviction accounting; ``True`` if removed.

        Unlike an eviction this neither bumps the eviction counter nor
        sets the eviction-memory mark: the page is leaving on purpose,
        not under pressure.  The sharded cache's rebalancer uses this to
        migrate pages between shards.
        """
        return self._pages.pop(int(page_id), _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop all cached pages (the paper clears caches between sequences)."""
        self._pages.clear()
        self._evicted.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    # -- batch operations -----------------------------------------------------
    #
    # Loop-based here; :class:`ArrayCache` vectorizes the same contract.
    # Each batch call is defined to be element-wise identical to the
    # scalar loop, so the serving plane can use either backend.

    def touch_many(self, page_ids) -> np.ndarray:
        """Touch every page in order; boolean hit mask (counts as touches)."""
        return np.fromiter(
            (self.touch(p) for p in page_ids), dtype=bool, count=len(page_ids)
        )

    def contains_many(self, page_ids) -> np.ndarray:
        """Boolean membership mask; no counters, no recency changes."""
        return np.fromiter(
            (int(p) in self._pages for p in page_ids), dtype=bool, count=len(page_ids)
        )

    def missing_many(self, page_ids) -> list[int]:
        """The pages *not* cached, in input order (no counters)."""
        return [int(p) for p in page_ids if int(p) not in self._pages]

    def owners_many(self, page_ids) -> np.ndarray:
        """Owner tags (``NO_OWNER`` for untagged or absent pages)."""
        return np.fromiter(
            (
                NO_OWNER if (owner := self._pages.get(int(p))) is None else owner
                for p in page_ids
            ),
            dtype=np.int64,
            count=len(page_ids),
        )

    def evicted_many(self, page_ids) -> np.ndarray:
        """Boolean was-evicted mask (see :meth:`was_evicted`)."""
        return np.fromiter(
            (int(p) in self._evicted for p in page_ids), dtype=bool, count=len(page_ids)
        )


class ArrayCache:
    """Array-backed LRU cache, observably identical to :class:`PrefetchCache`.

    Layout: cached pages live in slots ``0..len-1`` of three parallel
    arrays (page id, owner tag, recency epoch); a dense page-id -> slot
    table answers membership in O(1) and vectorizes over page batches.
    Recency is an epoch counter bumped once per recency event (touch hit
    or insert); the LRU victim is the occupied slot with the smallest
    epoch, and ``cached_pages()`` is the occupied slots sorted by epoch
    -- exactly the ``OrderedDict`` order of the dict cache.

    Batch inserts take a vectorized fast path whenever the batch cannot
    evict (the common case: mostly-cached batches, or a cache that is
    not yet full); batches that must evict fall back to the exact scalar
    loop, because mid-batch evictions can re-evict pages of the batch
    itself and only the sequential order reproduces that.

    Page ids must be non-negative (they index the slot table); owner
    tags must be non-negative client ids or ``None``.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_pages = int(capacity_pages)
        self._slot_page = np.full(self.capacity_pages, -1, dtype=np.int64)
        self._slot_owner = np.full(self.capacity_pages, NO_OWNER, dtype=np.int64)
        self._slot_epoch = np.zeros(self.capacity_pages, dtype=np.int64)
        self._n = 0
        self._clock = 0
        # page id -> slot (-1 when absent) and the eviction-memory mark,
        # grown together on demand to cover the largest page id seen.
        self._slot_of = np.full(0, -1, dtype=np.int64)
        self._evicted_mark = np.zeros(0, dtype=bool)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # -- internals ------------------------------------------------------------

    def _ensure_table(self, max_page: int) -> None:
        need = max_page + 1
        if need <= self._slot_of.size:
            return
        size = max(need, 2 * self._slot_of.size, 1024)
        slot_of = np.full(size, -1, dtype=np.int64)
        slot_of[: self._slot_of.size] = self._slot_of
        evicted = np.zeros(size, dtype=bool)
        evicted[: self._evicted_mark.size] = self._evicted_mark
        self._slot_of = slot_of
        self._evicted_mark = evicted

    def _lookup(self, pages: np.ndarray) -> np.ndarray:
        """Slot of each page (-1 when absent); out-of-table ids are absent."""
        table = self._slot_of
        if table.size == 0 or pages.size == 0:
            return np.full(pages.shape, -1, dtype=np.int64)
        # Fast path: after warmup the table covers every page id seen,
        # so the range check almost always passes in one min/max scan.
        if int(pages.min()) >= 0 and int(pages.max()) < table.size:
            return table[pages]
        valid = (pages >= 0) & (pages < table.size)
        return np.where(valid, table[np.where(valid, pages, 0)], -1)

    def _slot_scalar(self, page_id: int) -> int:
        if 0 <= page_id < self._slot_of.size:
            return int(self._slot_of[page_id])
        return -1

    def _insert_scalar(self, page_id: int, owner: int | None) -> None:
        if page_id < 0:
            raise ValueError("ArrayCache page ids must be non-negative")
        slot = self._slot_scalar(page_id)
        if slot >= 0:
            self._clock += 1
            self._slot_epoch[slot] = self._clock
            return
        while self._n >= self.capacity_pages:
            victim = int(np.argmin(self._slot_epoch[: self._n]))
            victim_page = int(self._slot_page[victim])
            self._slot_of[victim_page] = -1
            self._evicted_mark[victim_page] = True
            self.evictions += 1
            if victim != self._n - 1:
                # Keep occupancy dense: move the last slot into the hole.
                last = self._n - 1
                self._slot_page[victim] = self._slot_page[last]
                self._slot_owner[victim] = self._slot_owner[last]
                self._slot_epoch[victim] = self._slot_epoch[last]
                self._slot_of[self._slot_page[victim]] = victim
            self._n -= 1
        slot = self._n
        self._clock += 1
        self._slot_page[slot] = page_id
        self._slot_owner[slot] = NO_OWNER if owner is None else int(owner)
        self._slot_epoch[slot] = self._clock
        self._ensure_table(page_id)
        self._slot_of[page_id] = slot
        self._evicted_mark[page_id] = False
        self._n += 1
        self.insertions += 1

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, page_id: int) -> bool:
        return self._slot_scalar(int(page_id)) >= 0

    @property
    def is_full(self) -> bool:
        return self._n >= self.capacity_pages

    def cached_pages(self) -> list[int]:
        """Page ids currently cached, least-recently-used first."""
        order = np.argsort(self._slot_epoch[: self._n])
        return [int(p) for p in self._slot_page[: self._n][order]]

    def owner_of(self, page_id: int) -> int | None:
        slot = self._slot_scalar(int(page_id))
        if slot < 0:
            return None
        owner = int(self._slot_owner[slot])
        return None if owner == NO_OWNER else owner

    def was_evicted(self, page_id: int) -> bool:
        page_id = int(page_id)
        if 0 <= page_id < self._evicted_mark.size:
            return bool(self._evicted_mark[page_id])
        return False

    # -- operations ----------------------------------------------------------

    def touch(self, page_id: int) -> bool:
        slot = self._slot_scalar(int(page_id))
        if slot >= 0:
            self._clock += 1
            self._slot_epoch[slot] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page_id: int, owner: int | None = None) -> None:
        if self.capacity_pages == 0:
            return
        self._insert_scalar(int(page_id), owner)

    def insert_many(self, page_ids, owner: int | None = None) -> None:
        if self.capacity_pages == 0:
            return
        pages = np.asarray(
            page_ids if not isinstance(page_ids, (list, tuple)) else page_ids,
            dtype=np.int64,
        ).ravel()
        if pages.size == 0:
            return
        if int(pages.min()) < 0:
            raise ValueError("ArrayCache page ids must be non-negative")
        slots = self._lookup(pages)
        new = pages[slots < 0]
        n_new = int(np.unique(new).size) if new.size else 0
        if self._n + n_new > self.capacity_pages:
            # The batch evicts; mid-batch evictions may hit pages of the
            # batch itself, so only the sequential order is exact.
            for page in pages.tolist():
                self._insert_scalar(page, owner)
            return
        # Vectorized fast path: no evictions possible.  Each batch
        # element is one recency event; a page's final epoch is that of
        # its last occurrence, exactly as sequential insertion leaves it.
        reversed_unique, reversed_index = np.unique(pages[::-1], return_index=True)
        last_position = pages.size - 1 - reversed_index
        self._ensure_table(int(pages.max()))
        unique_slots = self._lookup(reversed_unique)
        cached = unique_slots >= 0
        self._slot_epoch[unique_slots[cached]] = self._clock + 1 + last_position[cached]
        new_pages = reversed_unique[~cached]
        if new_pages.size:
            allotted = np.arange(self._n, self._n + new_pages.size)
            self._slot_page[allotted] = new_pages
            self._slot_owner[allotted] = NO_OWNER if owner is None else int(owner)
            self._slot_epoch[allotted] = self._clock + 1 + last_position[~cached]
            self._slot_of[new_pages] = allotted
            self._evicted_mark[new_pages] = False
            self._n += new_pages.size
            self.insertions += int(new_pages.size)
        self._clock += pages.size

    def discard(self, page_id: int) -> bool:
        """Remove a page without eviction accounting; ``True`` if removed.

        See :meth:`PrefetchCache.discard`: no eviction counter, no
        eviction-memory mark.  The hole left by the removed slot is
        filled by the last occupied slot, as on eviction.
        """
        page_id = int(page_id)
        slot = self._slot_scalar(page_id)
        if slot < 0:
            return False
        self._slot_of[page_id] = -1
        last = self._n - 1
        if slot != last:
            self._slot_page[slot] = self._slot_page[last]
            self._slot_owner[slot] = self._slot_owner[last]
            self._slot_epoch[slot] = self._slot_epoch[last]
            self._slot_of[self._slot_page[slot]] = slot
        self._n -= 1
        return True

    def clear(self) -> None:
        """Drop all cached pages (the paper clears caches between sequences)."""
        self._slot_page[: self._n] = -1
        self._slot_owner[: self._n] = NO_OWNER
        self._slot_epoch[: self._n] = 0
        self._slot_of.fill(-1)
        self._evicted_mark.fill(False)
        self._n = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    # -- batch operations (vectorized) ---------------------------------------

    def touch_many(self, page_ids) -> np.ndarray:
        """Touch every page in order; boolean hit mask (counts as touches)."""
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if pages.size == 0:
            return np.zeros(0, dtype=bool)
        slots = self._lookup(pages)
        hit = slots >= 0
        n_hits = int(np.count_nonzero(hit))
        if n_hits:
            # Epochs in occurrence order; duplicates keep the largest
            # (= last occurrence), as sequential touches would.
            epochs = np.arange(self._clock + 1, self._clock + 1 + n_hits)
            np.maximum.at(self._slot_epoch, slots[hit], epochs)
            self._clock += n_hits
        self.hits += n_hits
        self.misses += pages.size - n_hits
        return hit

    def contains_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        return self._lookup(pages) >= 0

    def missing_many(self, page_ids) -> list[int]:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if pages.size == 0:
            return []
        return [int(p) for p in pages[self._lookup(pages) < 0]]

    def owners_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        slots = self._lookup(pages)
        owners = np.full(pages.shape, NO_OWNER, dtype=np.int64)
        present = slots >= 0
        owners[present] = self._slot_owner[slots[present]]
        return owners

    def evicted_many(self, page_ids) -> np.ndarray:
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        marks = self._evicted_mark
        if marks.size == 0 or pages.size == 0:
            return np.zeros(pages.shape, dtype=bool)
        if int(pages.min()) >= 0 and int(pages.max()) < marks.size:
            return marks[pages]
        valid = (pages >= 0) & (pages < marks.size)
        return np.where(valid, marks[np.where(valid, pages, 0)], False)


#: Cache backend registry used by the serving layer's ``cache_backend``
#: knob; both classes satisfy the same observable contract.
_BACKENDS = {"dict": PrefetchCache, "array": ArrayCache}


def make_cache(backend: str, capacity_pages: int) -> PrefetchCache | ArrayCache:
    """Build a cache of the named backend (``dict`` or ``array``)."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {backend!r}; known: {sorted(_BACKENDS)}"
        ) from None
    return cls(capacity_pages)
