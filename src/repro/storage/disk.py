"""Deterministic disk cost model.

The paper measures wall-clock response times on a 4x300 GB SAS stripe.
We replace the hardware with an analytic model so experiments are
deterministic and laptop-sized (see DESIGN.md §2).  The model captures
the two properties the prefetching results depend on:

1. random page reads are dominated by positioning time (seek +
   rotational latency), while pages contiguous with the previous read
   only pay transfer time -- this is what makes residual I/O after a
   misprediction expensive; and
2. striping divides positioning time across spindles for batched reads.

Times are returned in (simulated) seconds and accumulated by the caller;
the model never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.storage.stats import IOStats

__all__ = ["DiskModel", "DiskParameters"]


@dataclass(frozen=True)
class DiskParameters:
    """Tunable characteristics of the simulated disk array.

    Defaults approximate a 15k RPM SAS drive: ~5 ms average seek, 2 ms
    average rotational delay, ~150 MB/s streaming transfer, 4 KB pages,
    4-way striping (as in the paper's testbed).
    """

    seek_s: float = 0.005
    rotational_s: float = 0.002
    transfer_mb_per_s: float = 150.0
    page_bytes: int = 4096
    stripe_ways: int = 4

    #: When ``True``, a page contiguous with the previously read page
    #: only pays transfer time.  Off by default: the paper identifies
    #: *random reads in spatial indexes* as the bottleneck (§3.1), and
    #: range queries over bulk-loaded spatial data fetch scattered
    #: leaves, so each page read pays (striped) positioning time.
    sequential_discount: bool = False

    def __post_init__(self) -> None:
        if self.seek_s < 0 or self.rotational_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.transfer_mb_per_s <= 0:
            raise ValueError("transfer rate must be positive")
        if self.page_bytes <= 0 or self.stripe_ways <= 0:
            raise ValueError("page size and stripe ways must be positive")

    @property
    def positioning_s(self) -> float:
        """Seek + rotational cost of one random access."""
        return self.seek_s + self.rotational_s

    @property
    def transfer_s_per_page(self) -> float:
        return self.page_bytes / (self.transfer_mb_per_s * 1024.0 * 1024.0)


class DiskModel:
    """Charges simulated time for page reads and tracks statistics.

    Page ids are assumed to reflect physical layout: page ``i + 1`` is
    contiguous with page ``i`` (the STR bulkload and FLAT both emit
    spatially-clustered page orders, as the paper's indexes do).
    """

    def __init__(self, params: DiskParameters | None = None) -> None:
        self.params = params or DiskParameters()
        self.stats = IOStats()
        self._last_page: int | None = None

    def reset_head(self) -> None:
        """Forget the head position (e.g. after the OS cache is dropped)."""
        self._last_page = None

    def reset_stats(self) -> None:
        self.stats = IOStats()
        self.reset_head()

    # -- cost accounting ----------------------------------------------------

    def read_pages(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        """Charge and return the time to read the given pages.

        The pages are fetched in sorted order (as an elevator scheduler
        would); each run of consecutive page ids pays one positioning
        cost (amortized across stripe ways) plus per-page transfer.
        """
        pages = sorted(set(int(p) for p in page_ids))
        if not pages:
            return 0.0

        params = self.params
        if params.sequential_discount:
            runs = 0
            previous = self._last_page
            for page in pages:
                if previous is None or page != previous + 1:
                    runs += 1
                previous = page
        else:
            runs = len(pages)
        self._last_page = pages[-1]

        positioning = runs * params.positioning_s / params.stripe_ways
        transfer = len(pages) * params.transfer_s_per_page
        elapsed = positioning + transfer

        self.stats.pages_read += len(pages)
        self.stats.random_positionings += runs
        self.stats.seconds_busy += elapsed
        return elapsed

    def trim_to_budget(
        self, page_ids: Sequence[int] | Iterable[int], budget_s: float
    ) -> list[int]:
        """Longest sorted prefix of the pages readable within ``budget_s``.

        Models the window closing mid-batch: the page read in flight when
        the budget runs out still completes, so when the pages are
        trimmed at all, the result includes exactly the page that crossed
        the budget line -- the caller overshoots by at most one page
        read.  Does not charge time or move the head; call
        :meth:`read_pages` on the result to do that.
        """
        pages = sorted(set(int(p) for p in page_ids))
        params = self.params
        kept: list[int] = []
        cost = 0.0
        previous = self._last_page
        for page in pages:
            if params.sequential_discount and previous is not None and page == previous + 1:
                step = params.transfer_s_per_page
            else:
                step = params.positioning_s / params.stripe_ways + params.transfer_s_per_page
            cost += step
            kept.append(page)
            previous = page
            if cost >= budget_s:
                break
        return kept

    def cost_if_cold(self, page_ids: Sequence[int] | Iterable[int]) -> float:
        """Time to read the pages from a cold start, without charging it.

        Used to size prefetch windows: the paper defines the window as
        ``ratio * d`` with ``d`` the cold retrieval time of the query.
        """
        pages = sorted(set(int(p) for p in page_ids))
        if not pages:
            return 0.0
        params = self.params
        if params.sequential_discount:
            runs = 1 + sum(1 for a, b in zip(pages, pages[1:]) if b != a + 1)
        else:
            runs = len(pages)
        return (
            runs * params.positioning_s / params.stripe_ways
            + len(pages) * params.transfer_s_per_page
        )

    def estimate_read_time(self, n_pages: int, contiguous_fraction: float = 0.5) -> float:
        """Cost estimate for ``n_pages`` without reading them.

        Used to size prefetch windows: the paper defines the window as
        ``ratio * d`` where ``d`` is the cold read time of a query.
        ``contiguous_fraction`` is the assumed fraction of pages that
        follow their predecessor contiguously.
        """
        if n_pages <= 0:
            return 0.0
        if not 0.0 <= contiguous_fraction <= 1.0:
            raise ValueError("contiguous_fraction must be within [0, 1]")
        params = self.params
        runs = max(1, round(n_pages * (1.0 - contiguous_fraction)))
        return (
            runs * params.positioning_s / params.stripe_ways
            + n_pages * params.transfer_s_per_page
        )
