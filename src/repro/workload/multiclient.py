"""Multi-client navigation workloads for the serving layer.

The paper evaluates SCOUT behind a *single* interactive client; the
serving layer (DESIGN.md §6) models many concurrent users contending
for one shared prefetch cache and disk.  This module synthesizes those
users: each client is one guided navigation session
(:class:`ClientWorkload` = a client id, its query sequence, and the
scheduler tick at which it joins), generated deterministically from one
seed so serving runs are reproducible cell values like everything else
in the sweep engine.

Two contention regimes:

* ``independent`` -- every client walks its own region of the dataset
  (independent child RNGs, exactly the sequences a single-client
  experiment would generate).  Clients compete for cache *capacity* but
  rarely for the same pages;
* ``hotspot`` -- clients draw their session from a small pool of hot
  walks with Zipf-skewed popularity, so many clients navigate the same
  region.  This is the cross-client sharing regime: a popular region's
  pages are prefetched once and hit by every follower, while unpopular
  sessions suffer eviction pressure from the hot set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.workload.sequence import QuerySequence, generate_sequences

__all__ = ["ClientWorkload", "multiclient_sessions", "zipf_weights"]


@dataclass(frozen=True)
class ClientWorkload:
    """One client's navigation session in a serving run.

    ``start_tick`` staggers session arrival: the round-robin scheduler
    leaves the client idle until that many scheduler passes have
    elapsed, modelling users joining over time instead of all at once.
    """

    client_id: int
    sequence: QuerySequence
    start_tick: int = 0


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Zipf popularity over ``n`` ranks: ``w_k ∝ 1/(k+1)^s``, normalized."""
    if n < 1:
        raise ValueError("need at least one rank")
    if s < 0:
        raise ValueError("zipf exponent must be non-negative")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return weights / weights.sum()


def multiclient_sessions(
    dataset: Dataset,
    n_clients: int,
    seed: int,
    n_queries: int,
    volume: float,
    gap: float = 0.0,
    aspect: str = "cube",
    window_ratio: float = 1.0,
    mode: str = "independent",
    stagger: int = 0,
    hot_pool: int = 4,
    zipf_s: float = 1.2,
) -> list[ClientWorkload]:
    """Generate ``n_clients`` staggered navigation sessions.

    ``independent`` mode generates exactly the sequences
    :func:`~repro.workload.sequence.generate_sequences` would for a
    single-client experiment (one deterministic child RNG per client),
    so a one-client serving run reproduces the classic engine
    bit-for-bit.  ``hotspot`` mode instead builds a pool of ``hot_pool``
    walks and assigns each client one of them with Zipf(``zipf_s``)
    popularity -- clients sharing a walk navigate the same hot region.
    Client ``i`` joins at tick ``i * stagger``.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if stagger < 0:
        raise ValueError("stagger must be non-negative")
    if mode not in ("independent", "hotspot"):
        raise ValueError(f"unknown mode {mode!r} (expected 'independent' or 'hotspot')")
    if hot_pool < 1:
        raise ValueError("hot_pool must be >= 1")

    def sequences(count: int) -> list[QuerySequence]:
        return generate_sequences(
            dataset,
            n_sequences=count,
            seed=seed,
            n_queries=n_queries,
            volume=volume,
            gap=gap,
            aspect=aspect,
            window_ratio=window_ratio,
        )

    if mode == "independent":
        assigned = sequences(n_clients)
    else:
        pool = sequences(min(hot_pool, n_clients))
        # Popularity assignment draws from its own deterministic stream
        # (offset seed) so it can never perturb sequence generation.
        assign_rng = np.random.default_rng([seed, len(pool), n_clients])
        ranks = assign_rng.choice(len(pool), size=n_clients, p=zipf_weights(len(pool), zipf_s))
        assigned = [pool[int(rank)] for rank in ranks]

    return [
        ClientWorkload(client_id=i, sequence=sequence, start_tick=i * stagger)
        for i, sequence in enumerate(assigned)
    ]
