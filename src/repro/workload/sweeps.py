"""Parameter sweeps for the paper's evaluation grids (Figs 10-13, 17).

Three families of declarative grids live here:

* the **microbenchmark grids** -- :func:`fig10_matrix` (the Figure-10
  workload registry under one prefetcher), :func:`fig11_matrix` (the
  no-gap microbenchmarks crossed with the standard prefetcher
  comparison set) and :func:`fig12_matrix` (the with-gap rows, adding
  SCOUT-OPT) -- built straight from
  :data:`repro.workload.benchmarks.MICROBENCHMARKS`;
* the **sensitivity sweeps** (paper §7.4, Fig 13): each panel fixes the
  §7.4 defaults -- 25-query sequences, 80,000 µm³ cubes,
  prefetch-window ratio 1 -- and varies one parameter.  The paper
  sweeps absolute values tied to its 450M-object tissue; we keep the
  paper's values where units transfer (volume, window ratio, sequence
  length, grid resolution, gap distance) and scale the density axis to
  synthetic-tissue sizes (Fig 13b varies objects at fixed volume);
* the **applicability grid** (paper §8.4, Fig 17):
  :func:`fig17_matrix` crosses the cross-domain datasets (lung airway
  mesh, arterial tree, road network) with the standard prefetcher set,
  one panel per query-size regime (small / large, sized as fractions of
  each dataset's volume);
* the **client-scaling grid** (serving layer, DESIGN.md §6 -- an
  extension beyond the paper): :func:`clients_matrix` crosses client
  counts with prefetchers and shared-cache sizes, each cell a
  multi-client :class:`~repro.sim.serve.ServingSimulator` run over one
  shared cache and disk.

All builders return pure-data :class:`~repro.sim.ExperimentMatrix`
values (Fig 17 and the clients grid return cell lists, because their
cells vary per-dataset query volumes or per-cell serving parameters);
run them with :class:`~repro.sim.ParallelRunner` (cells are keyed by
content hash, so repeated runs resume from the store).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.workload.benchmarks import MICROBENCHMARKS, microbenchmark_names

__all__ = [
    "CHAOS_RATES",
    "FIG11_PREFETCHERS",
    "FIG12_PREFETCHERS",
    "FIG13_PANELS",
    "FIG17_DATASET_PARAMS",
    "FIG17_PANELS",
    "FIGURE_MATRICES",
    "SENSITIVITY_DEFAULTS",
    "SERVE_CACHE_PAGES",
    "SERVE_CLIENTS",
    "SERVE_CLIENTS_LARGE",
    "SERVE_PREFETCHERS",
    "SHARD_CLIENTS",
    "SHARD_COUNTS",
    "SHARD_PARTITIONS",
    "TIER_MISS_PATHS",
    "TIER_SIZES",
    "SweepDefaults",
    "chaos_breaker_of",
    "chaos_matrix",
    "chaos_rate_of",
    "clients_matrix",
    "fig10_matrix",
    "fig11_matrix",
    "fig12_matrix",
    "fig13_axes",
    "fig13_axis_value",
    "fig13_matrix",
    "fig17_dataset_of",
    "fig17_matrix",
    "fig17_query_volume",
    "microbenchmark_of",
    "scale_factor",
    "serve_cache_label",
    "serve_clients_of",
    "shards_k_of",
    "shards_matrix",
    "shards_partition_of",
    "tiers_matrix",
    "tiers_path_of",
    "tiers_size_of",
]


def scale_factor() -> float:
    """Global experiment scale from the ``REPRO_SCALE`` environment knob.

    1.0 (default) keeps the bench suite laptop-sized; larger values grow
    datasets and sequence counts proportionally.
    """
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class SweepDefaults:
    """The §7.4 defaults shared by all sensitivity experiments."""

    n_queries: int = 25
    volume: float = 80_000.0
    window_ratio: float = 1.0
    aspect: str = "cube"
    gap: float = 0.0
    n_sequences: int = 8
    n_neurons: int = 80


SENSITIVITY_DEFAULTS = SweepDefaults()


def fig13_axes() -> dict[str, list]:
    """The x-axes of the six Fig-13 panels.

    Keys match the panel letters; values follow the paper's tick values
    except for density, which is expressed in neuron counts scaled to
    the synthetic tissue (the paper adds 50M objects per step).
    """
    return {
        "a_query_volume": [10_000.0, 45_000.0, 80_000.0, 115_000.0, 150_000.0, 185_000.0],
        "b_density_neurons": [40, 60, 80, 100, 120],
        "c_sequence_length": [5, 15, 25, 35, 45, 55],
        "d_window_ratio": [0.1, 0.7, 1.3, 1.9, 2.5],
        "e_grid_resolution": [32_768, 4_096, 512, 64, 8],
        "f_gap_distance": [10.0, 15.0, 20.0, 25.0],
    }


# -- the Fig-13 grid as experiment matrices -----------------------------------------

#: Panel letter -> (axis key in :func:`fig13_axes`, human title).
FIG13_PANELS: dict[str, tuple[str, str]] = {
    "a": ("a_query_volume", "accuracy vs query volume"),
    "b": ("b_density_neurons", "accuracy vs dataset density"),
    "c": ("c_sequence_length", "accuracy vs sequence length"),
    "d": ("d_window_ratio", "accuracy vs prefetch window ratio"),
    "e": ("e_grid_resolution", "accuracy vs grid resolution"),
    "f": ("f_gap_distance", "accuracy vs gap distance"),
}


def fig13_matrix(
    panel: str,
    *,
    n_neurons: int | None = None,
    n_sequences: int | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 13,
    fanout: int = 16,
    axis: Sequence[Any] | None = None,
    density_extent: float = 700.0,
    density_seed: int = 13,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
):
    """One Fig-13 panel as a declarative :class:`ExperimentMatrix`.

    Every panel fixes the §7.4 defaults and varies one axis: (a) the
    query volume, (b) the dataset density (neuron count at fixed tissue
    extent), (c) the sequence length, (d) the prefetch-window ratio,
    (e) SCOUT's grid resolution, (f) the gap distance (where SCOUT-OPT
    joins SCOUT as a second prefetcher row).  ``axis`` overrides the
    paper's tick values, e.g. to truncate a panel for a smoke run.

    The returned matrix is pure data; run it with
    :class:`repro.sim.ParallelRunner` (cells are keyed by content hash,
    so repeated runs resume from the store).
    """
    # Imported here: repro.sim.runner imports repro.workload.sequence,
    # so a module-level import would be circular through repro.sim.
    from repro.sim.runner import (
        DatasetSpec,
        ExperimentMatrix,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )

    if panel not in FIG13_PANELS:
        known = ", ".join(sorted(FIG13_PANELS))
        raise ValueError(f"unknown Fig-13 panel {panel!r}; known: {known}")
    axis_key, _ = FIG13_PANELS[panel]
    values = list(fig13_axes()[axis_key] if axis is None else axis)
    if not values:
        raise ValueError(f"panel {panel!r} axis must not be empty")
    n_neurons = defaults.n_neurons if n_neurons is None else int(n_neurons)
    n_sequences = defaults.n_sequences if n_sequences is None else int(n_sequences)

    def workload(**overrides: Any) -> "WorkloadSpec":
        merged: dict[str, Any] = dict(
            n_sequences=n_sequences,
            n_queries=defaults.n_queries,
            volume=defaults.volume,
            gap=defaults.gap,
            aspect=defaults.aspect,
            window_ratio=defaults.window_ratio,
        )
        merged.update(overrides)
        return WorkloadSpec(**merged)

    datasets = (DatasetSpec("neuron", {"n_neurons": n_neurons, "seed": dataset_seed}),)
    indexes = (IndexSpec("flat", {"fanout": fanout}),)
    workloads = (workload(),)
    prefetchers = (PrefetcherSpec("scout"),)

    if panel == "a":
        workloads = tuple(workload(volume=float(v)) for v in values)
    elif panel == "b":
        # Fixed tissue volume, growing object count = growing density
        # (the paper adds 50M objects to the same 285 mm^3).
        datasets = tuple(
            DatasetSpec(
                "neuron",
                {"n_neurons": int(n), "seed": density_seed, "extent": float(density_extent)},
            )
            for n in values
        )
    elif panel == "c":
        workloads = tuple(workload(n_queries=int(n)) for n in values)
    elif panel == "d":
        workloads = tuple(workload(window_ratio=float(r)) for r in values)
    elif panel == "e":
        prefetchers = tuple(
            PrefetcherSpec("scout", {"grid_resolution": int(r)}) for r in values
        )
    elif panel == "f":
        workloads = tuple(workload(gap=float(g)) for g in values)
        prefetchers = (PrefetcherSpec("scout"), PrefetcherSpec("scout-opt"))

    return ExperimentMatrix(
        datasets=datasets,
        indexes=indexes,
        workloads=workloads,
        prefetchers=prefetchers,
        seeds=(workload_seed,),
    )


# -- the Fig-10/11/12 microbenchmark grids ------------------------------------------

#: The standard prefetcher comparison set of Figure 11 (kind, params).
FIG11_PREFETCHERS: tuple[tuple[str, dict], ...] = (
    ("ewma", {"lam": 0.3}),
    ("straight-line", {}),
    ("hilbert", {}),
    ("scout", {}),
)

#: Figure 12 adds SCOUT-OPT, whose index-assisted gap traversal is the
#: point of the with-gap comparison.
FIG12_PREFETCHERS: tuple[tuple[str, dict], ...] = FIG11_PREFETCHERS + (("scout-opt", {}),)


def _microbenchmark_matrix(
    benches: Sequence[str],
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]],
    *,
    n_neurons: int | None,
    n_sequences: int | None,
    dataset_seed: int,
    workload_seed: int,
    fanout: int,
    defaults: SweepDefaults,
):
    # Imported here: repro.sim.runner imports repro.workload.sequence,
    # so a module-level import would be circular through repro.sim.
    from repro.sim.runner import (
        DatasetSpec,
        ExperimentMatrix,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )

    if not benches:
        raise ValueError("benches must name at least one microbenchmark")
    unknown = [name for name in benches if name not in MICROBENCHMARKS]
    if unknown:
        known = ", ".join(MICROBENCHMARKS)
        raise ValueError(f"unknown microbenchmark(s) {', '.join(unknown)}; known: {known}")
    n_neurons = defaults.n_neurons if n_neurons is None else int(n_neurons)
    n_sequences = defaults.n_sequences if n_sequences is None else int(n_sequences)
    workloads = tuple(
        WorkloadSpec(
            n_sequences=n_sequences,
            n_queries=MICROBENCHMARKS[name].n_queries,
            volume=MICROBENCHMARKS[name].volume,
            gap=MICROBENCHMARKS[name].gap,
            aspect=MICROBENCHMARKS[name].aspect,
            window_ratio=MICROBENCHMARKS[name].window_ratio,
        )
        for name in benches
    )
    return ExperimentMatrix(
        datasets=(DatasetSpec("neuron", {"n_neurons": n_neurons, "seed": dataset_seed}),),
        indexes=(IndexSpec("flat", {"fanout": fanout}),),
        workloads=workloads,
        prefetchers=tuple(PrefetcherSpec(kind, dict(params)) for kind, params in prefetchers),
        seeds=(workload_seed,),
    )


def fig10_matrix(
    *,
    benches: Sequence[str] | None = None,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = (("scout", {}),),
    n_neurons: int | None = None,
    n_sequences: int | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 11,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
):
    """The full Figure-10 microbenchmark registry as one matrix.

    All seven workload rows (ad-hoc, model building, visualization with
    and without gaps) under a single prefetcher -- the grid behind the
    paper's headline SCOUT numbers, and the cheapest whole-registry
    smoke sweep.  ``benches`` restricts the rows (e.g. for CI slices).
    """
    benches = microbenchmark_names() if benches is None else list(benches)
    return _microbenchmark_matrix(
        benches,
        prefetchers,
        n_neurons=n_neurons,
        n_sequences=n_sequences,
        dataset_seed=dataset_seed,
        workload_seed=workload_seed,
        fanout=fanout,
        defaults=defaults,
    )


def fig11_matrix(
    *,
    benches: Sequence[str] | None = None,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = FIG11_PREFETCHERS,
    n_neurons: int | None = None,
    n_sequences: int | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 11,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
):
    """Figure 11: the no-gap microbenchmarks x the standard prefetchers.

    Matches the direct harness in ``benchmarks/test_fig11_microbenchmarks.py``
    (workload seed 11) cell for cell; the declarative form adds resume,
    sharding and fault tolerance on top.
    """
    benches = microbenchmark_names(with_gaps=False) if benches is None else list(benches)
    return _microbenchmark_matrix(
        benches,
        prefetchers,
        n_neurons=n_neurons,
        n_sequences=n_sequences,
        dataset_seed=dataset_seed,
        workload_seed=workload_seed,
        fanout=fanout,
        defaults=defaults,
    )


def fig12_matrix(
    *,
    benches: Sequence[str] | None = None,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = FIG12_PREFETCHERS,
    n_neurons: int | None = None,
    n_sequences: int | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 12,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
):
    """Figure 12: the with-gap microbenchmarks, with SCOUT-OPT added.

    Matches ``benchmarks/test_fig12_gaps.py`` (workload seed 12).
    """
    benches = microbenchmark_names(with_gaps=True) if benches is None else list(benches)
    return _microbenchmark_matrix(
        benches,
        prefetchers,
        n_neurons=n_neurons,
        n_sequences=n_sequences,
        dataset_seed=dataset_seed,
        workload_seed=workload_seed,
        fanout=fanout,
        defaults=defaults,
    )


# -- the Fig-17 applicability grid --------------------------------------------------

#: Panel letter -> (query-size regime, human title) of Figure 17.
FIG17_PANELS: dict[str, tuple[str, str]] = {
    "a": ("small", "applicability, small queries"),
    "b": ("large", "applicability, large queries"),
}

#: The §8.4 cross-domain datasets (kind -> generator params), ordered as
#: in the figure.  Laptop-scale stand-ins for the paper's lung airway
#: mesh (7.1M triangles), pig-heart arterial tree (2.1M cylinders) and
#: North-America road network (7.2M 2D segments).
FIG17_DATASET_PARAMS: dict[str, dict[str, Any]] = {
    "lung": {"seed": 17, "max_depth": 4},
    "arterial": {"seed": 17},
    "roads": {"seed": 17, "grid_size": 12},
}

#: §8.4 sizes queries as a fraction of the dataset volume; small queries
#: are 5e-7 of it.  Synthetic stand-ins are orders of magnitude smaller
#: than the paper's datasets, so the small volume is floored at one that
#: returns a handful of objects, and the large regime is a fixed factor
#: above the small one so the two regimes stay distinct even when the
#: floor binds (mirrors ``benchmarks/test_fig17_applicability.py``).
FIG17_SMALL_FRACTION = 5e-7
FIG17_LARGE_OVER_SMALL = 4.0


def fig17_query_volume(dataset: Any, regime: str) -> float:
    """The Fig-17 query volume (area for 2D data) of one built dataset."""
    if regime not in ("small", "large"):
        raise ValueError(f"regime must be 'small' or 'large', got {regime!r}")
    extent = dataset.bounds.extent
    if dataset.dims == 2:
        measure = float(extent[0] * extent[1])
    else:
        measure = float(extent[0] * extent[1] * extent[2])
    floor = 60.0 / max(dataset.density(), 1e-12)
    small = max(measure * FIG17_SMALL_FRACTION, floor)
    return small if regime == "small" else small * FIG17_LARGE_OVER_SMALL


def fig17_matrix(
    panel: str,
    *,
    datasets: Mapping[str, Mapping[str, Any]] | None = None,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = FIG11_PREFETCHERS,
    n_sequences: int | None = None,
    n_queries: int | None = None,
    workload_seed: int = 17,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
) -> list:
    """One Fig-17 panel: cross-domain datasets x standard prefetchers.

    Panel ``a`` uses the small query regime, ``b`` the large one.  Each
    dataset's query volume is derived from its own built extent and
    density (:func:`fig17_query_volume`), so the result is a *list of
    cells* -- the union of one single-workload matrix per dataset --
    rather than one cross-product matrix.  ``datasets`` overrides the
    generator parameters (e.g. to shrink the grid for smoke runs);
    building the datasets to size the queries goes through the runner's
    per-process memo, so a panel pair reuses one build per dataset.
    """
    # Imported here: repro.sim.runner imports repro.workload.sequence,
    # so a module-level import would be circular through repro.sim.
    from repro.sim.runner import (
        DatasetSpec,
        ExperimentMatrix,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
        cached_dataset,
    )

    if panel not in FIG17_PANELS:
        known = ", ".join(sorted(FIG17_PANELS))
        raise ValueError(f"unknown Fig-17 panel {panel!r}; known: {known}")
    regime, _ = FIG17_PANELS[panel]
    dataset_params = FIG17_DATASET_PARAMS if datasets is None else datasets
    if not dataset_params:
        raise ValueError("fig17_matrix needs at least one dataset")
    n_sequences = defaults.n_sequences if n_sequences is None else int(n_sequences)
    n_queries = defaults.n_queries if n_queries is None else int(n_queries)

    cells: list = []
    for kind, params in dataset_params.items():
        dataset_spec = DatasetSpec(kind, dict(params))
        volume = fig17_query_volume(cached_dataset(dataset_spec), regime)
        matrix = ExperimentMatrix(
            datasets=(dataset_spec,),
            indexes=(IndexSpec("flat", {"fanout": fanout}),),
            workloads=(
                WorkloadSpec(
                    n_sequences=n_sequences,
                    n_queries=n_queries,
                    volume=volume,
                    window_ratio=defaults.window_ratio,
                ),
            ),
            prefetchers=tuple(
                PrefetcherSpec(kind_, dict(params_)) for kind_, params_ in prefetchers
            ),
            seeds=(workload_seed,),
        )
        cells.extend(matrix.cells())
    return cells


def fig17_dataset_of(spec: Mapping[str, Any]) -> str:
    """The dataset column a Fig-17 cell-spec dict belongs to."""
    return spec["dataset"]["kind"]


# -- the client-scaling serving grid ------------------------------------------------

#: Concurrent-client counts of the serving sweep's x-axis.
SERVE_CLIENTS: tuple[int, ...] = (1, 2, 4, 8, 16)

#: The serving comparison set: the best trajectory baseline vs SCOUT.
SERVE_PREFETCHERS: tuple[tuple[str, dict], ...] = (
    ("ewma", {"lam": 0.3}),
    ("scout", {}),
)

#: Shared-cache capacities swept (``None`` = the engine's auto sizing,
#: ~12% of the dataset's pages; the small value models a cache under
#: heavy contention -- every client fights for the same few pages).
SERVE_CACHE_PAGES: tuple[int | None, ...] = (None, 128)

#: Large-fleet client counts for the lockstep serving plane (run with
#: ``--lockstep``; the round-robin reference is impractically slow past
#: a few hundred clients, and the schedulers are proven bit-identical).
SERVE_CLIENTS_LARGE: tuple[int, ...] = (64, 256, 1024)


def clients_matrix(
    *,
    clients: Sequence[int] = SERVE_CLIENTS,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = SERVE_PREFETCHERS,
    cache_pages: Sequence[int | None] = SERVE_CACHE_PAGES,
    mode: str = "independent",
    stagger: int = 1,
    n_neurons: int = 40,
    n_queries: int | None = None,
    volume: float | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 21,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
) -> list:
    """The client-scaling serving grid: clients x prefetchers x cache sizes.

    Every cell is a multi-client serving run (``serve`` mapping on the
    spec): N concurrent sessions round-robin over one shared prefetch
    cache and disk, client ``i`` joining ``stagger`` ticks after client
    ``i-1``.  ``mode`` picks the contention regime of
    :func:`repro.workload.multiclient.multiclient_sessions`
    (``independent`` walks vs Zipf-skewed ``hotspot`` sharing).  Cells
    order cache-size-major (then prefetcher, then client count) so each
    cache size renders as one table.  Returns a flat cell list, like
    :func:`fig17_matrix`, because the serving parameters vary per cell.
    """
    # Imported here: repro.sim.runner imports repro.workload.sequence,
    # so a module-level import would be circular through repro.sim.
    from repro.sim.runner import (
        CellSpec,
        DatasetSpec,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )

    client_counts = [int(n) for n in clients]
    if not client_counts or any(n < 1 for n in client_counts):
        raise ValueError(f"clients must be positive ints, got {list(clients)!r}")
    n_queries = defaults.n_queries if n_queries is None else int(n_queries)
    volume = defaults.volume if volume is None else float(volume)

    dataset = DatasetSpec("neuron", {"n_neurons": int(n_neurons), "seed": dataset_seed})
    index = IndexSpec("flat", {"fanout": fanout})
    cells: list = []
    for capacity in cache_pages:
        sim = {} if capacity is None else {"cache_capacity_pages": int(capacity)}
        for kind, params in prefetchers:
            for n in client_counts:
                cells.append(
                    CellSpec(
                        dataset=dataset,
                        index=index,
                        workload=WorkloadSpec(
                            n_sequences=n,  # one session per client
                            n_queries=n_queries,
                            volume=volume,
                            gap=defaults.gap,
                            aspect=defaults.aspect,
                            window_ratio=defaults.window_ratio,
                        ),
                        prefetcher=PrefetcherSpec(kind, dict(params)),
                        seed=workload_seed,
                        sim=sim,
                        serve={"n_clients": n, "mode": mode, "stagger": int(stagger)},
                    )
                )
    return cells


def serve_clients_of(spec: Mapping[str, Any]) -> int:
    """The client-count column a serving cell-spec dict belongs to."""
    return int(spec["serve"]["n_clients"])


def serve_cache_label(spec: Mapping[str, Any]) -> str:
    """Human label of a serving cell's shared-cache size ("auto" or pages)."""
    capacity = spec.get("sim", {}).get("cache_capacity_pages")
    return "auto" if capacity is None else f"{int(capacity)} pages"


# -- the chaos (fault-injection) serving grid ---------------------------------------

#: Fault intensities of the chaos sweep's x-axis: the headline
#: ``transient_rate``; corrupt and latency-spike rates ride at half of
#: it.  0.0 keeps the fault layer active but silent -- the degradation
#: baseline every other column is read against.  The ladder spans the
#: retry envelope: a read only *fails* after ``retry_limit + 1``
#: consecutive bad draws (probability ``rate**4`` at the defaults), so
#: 0.2 exercises pure retry/backoff pressure, 0.5 the first retry
#: exhaustions, and 0.7 sustained failure where the breaker earns its
#: keep.
CHAOS_RATES: tuple[float, ...] = (0.0, 0.2, 0.5, 0.7)


def chaos_matrix(
    *,
    rates: Sequence[float] = CHAOS_RATES,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = SERVE_PREFETCHERS,
    breakers: Sequence[bool] = (True, False),
    n_clients: int = 4,
    mode: str = "hotspot",
    stagger: int = 1,
    n_neurons: int = 40,
    n_queries: int | None = None,
    volume: float | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 21,
    fault_seed: int = 11,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
) -> list:
    """The graceful-degradation grid: fault rate x prefetcher x breaker.

    Every cell is a multi-client serving run whose shared disk is
    wrapped in a :class:`~repro.storage.faults.FaultyDiskModel`: the
    swept rate drives transient read errors, with torn-page corruption
    and latency spikes at half that rate, all drawn from seeded RNG
    streams so the grid is bit-identical across ``jobs=1``/``jobs=N``.
    The breaker axis toggles per-client circuit breaking (trip to
    demand paging after repeated prefetch-path failures), answering
    the sweep's question: how much hit rate does the prefetcher keep
    as the disk degrades, and does breaking early beat retrying?
    Cells order breaker-major (then prefetcher, then rate) so each
    breaker setting renders as one table.  Rate 0.0 cells carry the
    (inactive) fault plan too, pinning the wrapper's no-op overhead
    into the same store.
    """
    from repro.sim.runner import (
        CellSpec,
        DatasetSpec,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )

    fault_rates = [float(r) for r in rates]
    if not fault_rates or any(not 0.0 <= r <= 1.0 for r in fault_rates):
        raise ValueError(f"rates must be fractions in [0, 1], got {list(rates)!r}")
    n_clients = int(n_clients)
    if n_clients < 1:
        raise ValueError(f"n_clients must be positive, got {n_clients}")
    n_queries = defaults.n_queries if n_queries is None else int(n_queries)
    volume = defaults.volume if volume is None else float(volume)

    dataset = DatasetSpec("neuron", {"n_neurons": int(n_neurons), "seed": dataset_seed})
    index = IndexSpec("flat", {"fanout": fanout})
    cells: list = []
    for breaker in breakers:
        for kind, params in prefetchers:
            for rate in fault_rates:
                cells.append(
                    CellSpec(
                        dataset=dataset,
                        index=index,
                        workload=WorkloadSpec(
                            n_sequences=n_clients,  # one session per client
                            n_queries=n_queries,
                            volume=volume,
                            gap=defaults.gap,
                            aspect=defaults.aspect,
                            window_ratio=defaults.window_ratio,
                        ),
                        prefetcher=PrefetcherSpec(kind, dict(params)),
                        seed=workload_seed,
                        serve={"n_clients": n_clients, "mode": mode, "stagger": int(stagger)},
                        faults={
                            "transient_rate": rate,
                            "corrupt_rate": rate / 2.0,
                            "latency_rate": rate / 2.0,
                            "seed": int(fault_seed),
                            "breaker": bool(breaker),
                        },
                    )
                )
    return cells


def chaos_rate_of(spec: Mapping[str, Any]) -> float:
    """The fault-rate column a chaos cell-spec dict belongs to."""
    return float(spec["faults"]["transient_rate"])


def chaos_breaker_of(spec: Mapping[str, Any]) -> bool:
    """Whether a chaos cell-spec dict runs with the circuit breaker on."""
    return bool(spec["faults"].get("breaker", True))


# -- the tiered-storage serving grid ------------------------------------------------

#: Miss-path mechanisms of the tiers sweep's x-axis (the SimpleScalar
#: taxonomy: victim cache, miss cache, stream buffer, all combined);
#: ``none`` is the tier-cache-only baseline each mechanism is read
#: against.
TIER_MISS_PATHS: tuple[str, ...] = ("none", "victim", "miss", "stream", "combined")

#: Storage-side tier-cache capacities swept, in pages.  The small tier
#: thrashes, so the miss-path mechanisms decide what survives below it;
#: the large tier shows how much of their win capacity alone buys.
TIER_SIZES: tuple[int, ...] = (8, 64)


def tiers_matrix(
    *,
    miss_paths: Sequence[str] = TIER_MISS_PATHS,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = SERVE_PREFETCHERS,
    tier_sizes: Sequence[int] = TIER_SIZES,
    backend: str = "ram",
    n_clients: int = 4,
    mode: str = "hotspot",
    stagger: int = 1,
    n_neurons: int = 40,
    n_queries: int | None = None,
    volume: float | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 21,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
) -> list:
    """The tiered-storage grid: tier size x prefetcher x miss-path mechanism.

    Every cell is a multi-client serving run whose shared disk is
    wrapped in a :class:`~repro.storage.tiered.TieredStore` (DESIGN.md
    §9): a storage-side tier cache of the swept capacity, with the
    swept miss-path mechanism probing below it.  The grid answers the
    comparative question of the SimpleScalar taxonomy -- which
    mechanism absorbs the misses each prefetcher leaves behind, and at
    what tier size does raw capacity wash the mechanisms out?  Cells
    order tier-size-major (then prefetcher, then miss path) so each
    tier size renders as one table.  The tier structures are
    deterministic (LRU over the request order, no randomness), so the
    grid keeps the ``jobs=1``/``jobs=N`` bit-identity contract.
    """
    from repro.sim.runner import (
        CellSpec,
        DatasetSpec,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )
    from repro.storage.tiered import MISS_PATHS

    paths = [str(p) for p in miss_paths]
    unknown = set(paths) - set(MISS_PATHS)
    if not paths or unknown:
        raise ValueError(
            f"miss_paths must be drawn from {list(MISS_PATHS)}, got {list(miss_paths)!r}"
        )
    sizes = [int(s) for s in tier_sizes]
    if not sizes or any(s < 0 for s in sizes):
        raise ValueError(f"tier_sizes must be non-negative ints, got {list(tier_sizes)!r}")
    n_clients = int(n_clients)
    if n_clients < 1:
        raise ValueError(f"n_clients must be positive, got {n_clients}")
    n_queries = defaults.n_queries if n_queries is None else int(n_queries)
    volume = defaults.volume if volume is None else float(volume)

    dataset = DatasetSpec("neuron", {"n_neurons": int(n_neurons), "seed": dataset_seed})
    index = IndexSpec("flat", {"fanout": fanout})
    cells: list = []
    for size in sizes:
        for kind, params in prefetchers:
            for path in paths:
                cells.append(
                    CellSpec(
                        dataset=dataset,
                        index=index,
                        workload=WorkloadSpec(
                            n_sequences=n_clients,  # one session per client
                            n_queries=n_queries,
                            volume=volume,
                            gap=defaults.gap,
                            aspect=defaults.aspect,
                            window_ratio=defaults.window_ratio,
                        ),
                        prefetcher=PrefetcherSpec(kind, dict(params)),
                        seed=workload_seed,
                        serve={"n_clients": n_clients, "mode": mode, "stagger": int(stagger)},
                        storage={
                            "backend": str(backend),
                            "miss_path": path,
                            "tier_pages": size,
                        },
                    )
                )
    return cells


# -- the sharded-cache serving grid -------------------------------------------------

#: Shard counts of the shards sweep: the unsharded baseline (a K=1
#: pass-through wrapper, bit-identical to no sharding) against a small
#: multi-node layout.
SHARD_COUNTS: tuple[int, ...] = (1, 4)

#: Partitioning schemes swept: Hilbert range splits (spatially
#: clustered clients land on few shards) vs hash scatter (uniform but
#: locality-blind, every batch fans out).
SHARD_PARTITIONS: tuple[str, ...] = ("hilbert", "hash")

#: Client counts of the shards sweep (hotspot mode, so load skews).
SHARD_CLIENTS: tuple[int, ...] = (4, 8)


def shards_matrix(
    *,
    clients: Sequence[int] = SHARD_CLIENTS,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    partitions: Sequence[str] = SHARD_PARTITIONS,
    prefetchers: Sequence[tuple[str, Mapping[str, Any]]] = SERVE_PREFETCHERS,
    rebalance: bool = False,
    mode: str = "hotspot",
    stagger: int = 1,
    n_neurons: int = 40,
    n_queries: int | None = None,
    volume: float | None = None,
    dataset_seed: int = 7,
    workload_seed: int = 21,
    fanout: int = 16,
    defaults: SweepDefaults = SENSITIVITY_DEFAULTS,
) -> list:
    """The sharded-cache grid: clients x shard count x partition x policy.

    Every cell is a multi-client serving run whose shared prefetch
    cache is compiled into a :class:`~repro.storage.sharded.ShardedCache`
    (DESIGN.md §10): the total capacity range-partitioned along the
    page table's Hilbert keys or hash-scattered over page ids.  The
    grid answers the scale-out questions -- how skewed does per-shard
    load get under each partitioning, and what does sharding cost or
    buy each prefetch policy as the fleet grows?  ``rebalance=True``
    additionally arms the hot-shard rebalancer on the ``hilbert``
    cells (it is range-partitioning-only, so hash cells never take
    it).  Cells order partition-major (then clients, then prefetcher,
    then shard count) so each partition renders as one table group.
    Routing, eviction and rebalancing are deterministic, so the grid
    keeps the ``jobs=1``/``jobs=N`` bit-identity contract.
    """
    from repro.sim.runner import (
        CellSpec,
        DatasetSpec,
        IndexSpec,
        PrefetcherSpec,
        WorkloadSpec,
    )
    from repro.storage.sharded import PARTITIONS

    parts = [str(p) for p in partitions]
    unknown = set(parts) - set(PARTITIONS)
    if not parts or unknown:
        raise ValueError(
            f"partitions must be drawn from {list(PARTITIONS)}, got {list(partitions)!r}"
        )
    counts = [int(k) for k in shard_counts]
    if not counts or any(k < 1 for k in counts):
        raise ValueError(f"shard_counts must be positive ints, got {list(shard_counts)!r}")
    client_counts = [int(n) for n in clients]
    if not client_counts or any(n < 1 for n in client_counts):
        raise ValueError(f"clients must be positive ints, got {list(clients)!r}")
    n_queries = defaults.n_queries if n_queries is None else int(n_queries)
    volume = defaults.volume if volume is None else float(volume)

    dataset = DatasetSpec("neuron", {"n_neurons": int(n_neurons), "seed": dataset_seed})
    index = IndexSpec("flat", {"fanout": fanout})
    cells: list = []
    for partition in parts:
        for n in client_counts:
            for kind, params in prefetchers:
                for k in counts:
                    shards = {"n_shards": k, "partition": partition}
                    if rebalance and partition == "hilbert":
                        shards["rebalance"] = True
                    cells.append(
                        CellSpec(
                            dataset=dataset,
                            index=index,
                            workload=WorkloadSpec(
                                n_sequences=n,  # one session per client
                                n_queries=n_queries,
                                volume=volume,
                                gap=defaults.gap,
                                aspect=defaults.aspect,
                                window_ratio=defaults.window_ratio,
                            ),
                            prefetcher=PrefetcherSpec(kind, dict(params)),
                            seed=workload_seed,
                            serve={"n_clients": n, "mode": mode, "stagger": int(stagger)},
                            shards=shards,
                        )
                    )
    return cells


def shards_k_of(spec: Mapping[str, Any]) -> int:
    """The shard-count column a shards cell-spec dict sweeps."""
    return int(spec["shards"]["n_shards"])


def shards_partition_of(spec: Mapping[str, Any]) -> str:
    """The partitioning scheme a shards cell-spec dict sweeps."""
    return str(spec["shards"]["partition"])


def tiers_path_of(spec: Mapping[str, Any]) -> str:
    """The miss-path column a tiers cell-spec dict belongs to."""
    return str(spec["storage"]["miss_path"])


def tiers_size_of(spec: Mapping[str, Any]) -> int:
    """The tier-cache capacity (pages) a tiers cell-spec dict sweeps."""
    return int(spec["storage"]["tier_pages"])


#: Figure number -> (matrix builder, default benches) for the
#: microbenchmark-grid figures; Figures 13 and 17 keep panel-based APIs.
FIGURE_MATRICES: dict[int, Any] = {
    10: fig10_matrix,
    11: fig11_matrix,
    12: fig12_matrix,
}


def microbenchmark_of(spec: Mapping[str, Any]) -> str | None:
    """The Figure-10 row a cell-spec dict's workload instantiates.

    Matches on the registry parameters (queries, volume, gap, aspect,
    window ratio; the sequence count is a harness knob, not part of the
    benchmark's identity).  Returns ``None`` for workloads that are not
    microbenchmark rows (e.g. Fig-13 sensitivity cells), so callers can
    label arbitrary stores.
    """
    workload = spec["workload"]
    for name, bench in MICROBENCHMARKS.items():
        if (
            int(workload["n_queries"]) == bench.n_queries
            and float(workload["volume"]) == bench.volume
            and float(workload["gap"]) == bench.gap
            and workload["aspect"] == bench.aspect
            and float(workload["window_ratio"]) == bench.window_ratio
        ):
            return name
    return None


def fig13_axis_value(panel: str, spec: Mapping[str, Any]):
    """The varying-axis value of one cell-spec dict of a Fig-13 panel.

    Used to label table columns when rendering stored sweep results.
    """
    if panel == "a":
        return spec["workload"]["volume"]
    if panel == "b":
        return spec["dataset"]["params"]["n_neurons"]
    if panel == "c":
        return spec["workload"]["n_queries"]
    if panel == "d":
        return spec["workload"]["window_ratio"]
    if panel == "e":
        return spec["prefetcher"]["params"].get("grid_resolution", 4096)
    if panel == "f":
        return spec["workload"]["gap"]
    known = ", ".join(sorted(FIG13_PANELS))
    raise ValueError(f"unknown Fig-13 panel {panel!r}; known: {known}")
