"""Parameter sweeps for the sensitivity analysis (paper §7.4, Fig 13).

Each sweep fixes the §7.4 defaults -- 25-query sequences, 80,000 µm³
cubes, prefetch-window ratio 1 -- and varies one parameter.  The paper
sweeps absolute values tied to its 450M-object tissue; we keep the
paper's values where units transfer (volume, window ratio, sequence
length, grid resolution, gap distance) and scale the density axis to
synthetic-tissue sizes (Fig 13b varies objects at fixed volume).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "SENSITIVITY_DEFAULTS",
    "SweepDefaults",
    "fig13_axes",
    "scale_factor",
]


def scale_factor() -> float:
    """Global experiment scale from the ``REPRO_SCALE`` environment knob.

    1.0 (default) keeps the bench suite laptop-sized; larger values grow
    datasets and sequence counts proportionally.
    """
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class SweepDefaults:
    """The §7.4 defaults shared by all sensitivity experiments."""

    n_queries: int = 25
    volume: float = 80_000.0
    window_ratio: float = 1.0
    aspect: str = "cube"
    gap: float = 0.0
    n_sequences: int = 8
    n_neurons: int = 80


SENSITIVITY_DEFAULTS = SweepDefaults()


def fig13_axes() -> dict[str, list]:
    """The x-axes of the six Fig-13 panels.

    Keys match the panel letters; values follow the paper's tick values
    except for density, which is expressed in neuron counts scaled to
    the synthetic tissue (the paper adds 50M objects per step).
    """
    return {
        "a_query_volume": [10_000.0, 45_000.0, 80_000.0, 115_000.0, 150_000.0, 185_000.0],
        "b_density_neurons": [40, 60, 80, 100, 120],
        "c_sequence_length": [5, 15, 25, 35, 45, 55],
        "d_window_ratio": [0.1, 0.7, 1.3, 1.9, 2.5],
        "e_grid_resolution": [32_768, 4_096, 512, 64, 8],
        "f_gap_distance": [10.0, 15.0, 20.0, 25.0],
    }
