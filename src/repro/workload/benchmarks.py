"""The paper's microbenchmark registry (Figure 10).

Each microbenchmark is a query-template with the parameters set by the
BBP neuroscientists: number of queries per sequence, query volume,
aspect ratio (cube or view frustum), gap distance and prefetch-window
ratio ``r = u/d`` (analysis time over data-retrieval time; §7.2).

The volumes are the paper's absolute µm³ values; they apply directly
because the synthetic tissue is rescaled to a paper-like density
(see :mod:`repro.datagen.neuron`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.workload.sequence import QuerySequence, generate_sequences

__all__ = [
    "MICROBENCHMARKS",
    "MicrobenchmarkSpec",
    "microbenchmark",
    "microbenchmark_names",
]


@dataclass(frozen=True)
class MicrobenchmarkSpec:
    """One row of the paper's Figure 10."""

    name: str
    label: str
    n_queries: int
    volume: float
    aspect: str
    gap: float
    window_ratio: float

    def generate(self, dataset: Dataset, n_sequences: int, seed: int) -> list[QuerySequence]:
        """Instantiate the benchmark's sequences on a dataset."""
        return generate_sequences(
            dataset,
            n_sequences=n_sequences,
            seed=seed,
            n_queries=self.n_queries,
            volume=self.volume,
            gap=self.gap,
            aspect=self.aspect,
            window_ratio=self.window_ratio,
        )

    @property
    def has_gaps(self) -> bool:
        return self.gap > 0


#: Figure 10, row by row.  Note the paper's table prints the two
#: with-gap visualization rows with ratios 1.2 (high quality) and 1.6
#: (low quality) -- the reverse of the no-gap rows; we reproduce the
#: table as printed.
MICROBENCHMARKS: dict[str, MicrobenchmarkSpec] = {
    spec.name: spec
    for spec in [
        MicrobenchmarkSpec(
            name="adhoc_stat",
            label="Ad-hoc Queries (Stat. Analysis)",
            n_queries=25,
            volume=80_000.0,
            aspect="cube",
            gap=0.0,
            window_ratio=0.8,
        ),
        MicrobenchmarkSpec(
            name="adhoc_pattern",
            label="Ad-hoc Queries (Pattern Matching)",
            n_queries=25,
            volume=80_000.0,
            aspect="cube",
            gap=0.0,
            window_ratio=1.4,
        ),
        MicrobenchmarkSpec(
            name="model_building",
            label="Model Building",
            n_queries=35,
            volume=20_000.0,
            aspect="cube",
            gap=0.0,
            window_ratio=2.0,
        ),
        MicrobenchmarkSpec(
            name="vis_low",
            label="Visualization (Low Quality)",
            n_queries=65,
            volume=30_000.0,
            aspect="frustum",
            gap=0.0,
            window_ratio=1.2,
        ),
        MicrobenchmarkSpec(
            name="vis_high",
            label="Visualization (High Quality)",
            n_queries=65,
            volume=30_000.0,
            aspect="frustum",
            gap=0.0,
            window_ratio=1.6,
        ),
        MicrobenchmarkSpec(
            name="vis_gaps_high",
            label="Visualization with Gaps (High Quality)",
            n_queries=65,
            volume=30_000.0,
            aspect="frustum",
            gap=25.0,
            window_ratio=1.2,
        ),
        MicrobenchmarkSpec(
            name="vis_gaps_low",
            label="Visualization with Gaps (Low Quality)",
            n_queries=65,
            volume=30_000.0,
            aspect="frustum",
            gap=25.0,
            window_ratio=1.6,
        ),
    ]
}


def microbenchmark(name: str) -> MicrobenchmarkSpec:
    """Look up a Figure-10 microbenchmark by short name."""
    try:
        return MICROBENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(MICROBENCHMARKS))
        raise KeyError(f"unknown microbenchmark {name!r}; known: {known}") from None


def microbenchmark_names(with_gaps: bool | None = None) -> list[str]:
    """Names in Figure-10 order, optionally filtered by gap presence."""
    names = list(MICROBENCHMARKS)
    if with_gaps is None:
        return names
    return [n for n in names if MICROBENCHMARKS[n].has_gaps == with_gaps]
