"""Guided spatial query sequence generation.

A guided sequence (paper §1) is ``n`` range queries whose locations are
determined by a guiding structure: here, a random walk over the
dataset's ground-truth navigation graph.  Query centers are spaced along
the walk by the query side length plus the gap distance, so consecutive
queries are adjacent (gap 0), slightly overlapping (negative gap) or
separated (positive gap), exactly the three regimes the paper discusses.

The generated :class:`Query` records the ground-truth walk direction for
evaluation purposes; prefetchers only ever see the query bounds and
result contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.dataset import Dataset, Polyline
from repro.geometry.aabb import AABB
from repro.geometry.frustum import Frustum

__all__ = ["Query", "QuerySequence", "generate_sequence", "generate_sequences"]


@dataclass(frozen=True)
class Query:
    """One range query of a guided sequence."""

    bounds: AABB
    center: np.ndarray
    direction: np.ndarray  # ground-truth walk tangent (evaluation only)
    frustum: Frustum | None = None


@dataclass
class QuerySequence:
    """A guided sequence plus the workload parameters that shaped it."""

    queries: list[Query]
    window_ratio: float
    gap: float
    volume: float
    path: Polyline
    dataset_name: str = ""

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def centers(self) -> np.ndarray:
        return np.array([q.center for q in self.queries])


def _query_side(dataset: Dataset, volume: float) -> float:
    """Edge length of a query of the given volume (area for 2D data)."""
    if volume <= 0:
        raise ValueError("query volume must be positive")
    if dataset.dims == 2:
        return float(volume) ** 0.5
    return float(volume) ** (1.0 / 3.0)


def _make_query(
    dataset: Dataset,
    center: np.ndarray,
    direction: np.ndarray,
    volume: float,
    side: float,
    aspect: str,
) -> Query:
    if dataset.dims == 2:
        # Planar datasets: a square footprint covering the full z-range.
        z_lo = dataset.bounds.lo[2] - 1.0
        z_hi = dataset.bounds.hi[2] + 1.0
        lo = np.array([center[0] - side / 2.0, center[1] - side / 2.0, z_lo])
        hi = np.array([center[0] + side / 2.0, center[1] + side / 2.0, z_hi])
        return Query(AABB(lo, hi), center.copy(), direction.copy())
    if aspect == "cube":
        return Query(AABB.cube(center, volume), center.copy(), direction.copy())
    if aspect == "frustum":
        frustum = Frustum.from_volume(center, direction, volume)
        return Query(frustum.bounding_aabb(), center.copy(), direction.copy(), frustum)
    raise ValueError(f"unknown aspect {aspect!r} (expected 'cube' or 'frustum')")


def generate_sequence(
    dataset: Dataset,
    rng: np.random.Generator,
    n_queries: int,
    volume: float,
    gap: float = 0.0,
    aspect: str = "cube",
    window_ratio: float = 1.0,
) -> QuerySequence:
    """Generate one guided query sequence.

    ``volume`` follows the paper's units (µm³ after density rescaling;
    squared units for 2D datasets).  ``gap`` is the boundary-to-boundary
    distance between consecutive queries along the guiding path.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    side = _query_side(dataset, volume)
    spacing = side + float(gap)
    if spacing <= 0:
        raise ValueError(f"query spacing {spacing} must be positive (gap too negative)")

    # Tortuous guiding structures cover less Euclidean distance than arc
    # length, so walk generously; centers are placed at *Euclidean*
    # spacing so consecutive query regions are adjacent boxes (gap 0),
    # overlapping (negative gap) or separated (positive gap) in space,
    # exactly as in the paper's Figure 1.
    walk_length = spacing * n_queries * 6.0 + side
    path = dataset.nav.random_walk(rng, walk_length)

    queries = []
    arc = side / 2.0
    arc_step = max(side * 0.02, 1e-9)
    center = path.point_at(arc)
    direction = path.tangent_at(arc)
    queries.append(_make_query(dataset, center, direction, volume, side, aspect))
    while len(queries) < n_queries and arc < path.length:
        # Advance along the path until the next center is `spacing` away
        # from the previous one in a straight line.
        previous = queries[-1].center
        while arc < path.length and float(np.linalg.norm(path.point_at(arc) - previous)) < spacing:
            arc += arc_step
        if arc >= path.length:
            break
        center = path.point_at(arc)
        direction = path.tangent_at(arc)
        queries.append(_make_query(dataset, center, direction, volume, side, aspect))
    while len(queries) < n_queries:
        # Degenerate navigation graphs (or walks that fold back onto
        # themselves for their entire length) can exhaust the path; the
        # rare remainder continues straight along the last direction so
        # the sequence always has the requested length.
        previous = queries[-1]
        center = previous.center + previous.direction * spacing
        queries.append(_make_query(dataset, center, previous.direction, volume, side, aspect))
    return QuerySequence(
        queries=queries,
        window_ratio=float(window_ratio),
        gap=float(gap),
        volume=float(volume),
        path=path,
        dataset_name=dataset.name,
    )


def generate_sequences(
    dataset: Dataset,
    n_sequences: int,
    seed: int,
    n_queries: int,
    volume: float,
    gap: float = 0.0,
    aspect: str = "cube",
    window_ratio: float = 1.0,
) -> list[QuerySequence]:
    """Generate ``n_sequences`` independent guided sequences.

    Each sequence gets its own deterministic child RNG so experiments
    are reproducible regardless of evaluation order.
    """
    root = np.random.default_rng(seed)
    children = root.spawn(n_sequences)
    return [
        generate_sequence(
            dataset,
            child,
            n_queries=n_queries,
            volume=volume,
            gap=gap,
            aspect=aspect,
            window_ratio=window_ratio,
        )
        for child in children
    ]
