"""The prefetcher protocol shared by SCOUT and every baseline.

The simulator drives prefetchers through three calls per sequence step
(mirroring the paper's Figure-2 timeline):

1. :meth:`Prefetcher.observe` -- the query just executed, with its
   bounds and result object ids (content-aware methods use the content;
   position-only methods just record the center).
2. :meth:`Prefetcher.prediction_cost_seconds` -- the simulated CPU time
   of the prediction computation, charged against the prefetch window.
3. :meth:`Prefetcher.plan` -- prioritized :class:`PrefetchTarget`\\ s.
   The simulator expands each target into incremental prefetch queries
   (§5.1) and reads pages until the window budget is exhausted.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB

__all__ = ["ObservedQuery", "Prefetcher", "PrefetchTarget"]


@dataclass(frozen=True)
class ObservedQuery:
    """What a prefetcher learns about one executed query."""

    index: int
    bounds: AABB
    result_object_ids: np.ndarray

    @property
    def center(self) -> np.ndarray:
        return self.bounds.center

    @property
    def side(self) -> float:
        """Characteristic edge length of the query region."""
        return float(np.cbrt(max(self.bounds.volume, 1e-30)))


@dataclass(frozen=True)
class PrefetchTarget:
    """One predicted location to prefetch around.

    ``anchor`` is where prefetching starts (the predicted entry point of
    the next query); ``direction`` the axis along which incremental
    prefetch queries advance; ``share`` the fraction of the window
    budget allotted (shares are normalized by the simulator).  When
    ``regions`` is set, the target prefetches those explicit regions in
    order instead of expanding incrementally (used by grid-cell-based
    baselines like Hilbert and Layered).
    """

    anchor: np.ndarray
    direction: np.ndarray
    share: float = 1.0
    regions: tuple[AABB, ...] | None = None

    def __post_init__(self) -> None:
        anchor = np.asarray(self.anchor, dtype=np.float64)
        direction = np.asarray(self.direction, dtype=np.float64)
        norm = np.linalg.norm(direction)
        if norm > 0:
            direction = direction / norm
        object.__setattr__(self, "anchor", anchor)
        object.__setattr__(self, "direction", direction)
        if self.share < 0:
            raise ValueError("share must be non-negative")


class Prefetcher(abc.ABC):
    """Base class of all prefetching strategies."""

    #: Short identifier used in result tables.
    name: str = "base"

    def begin_sequence(self) -> None:
        """Reset per-sequence state (called before each query sequence)."""

    @abc.abstractmethod
    def observe(self, observed: ObservedQuery) -> None:
        """Ingest the query that just executed."""

    @abc.abstractmethod
    def plan(self) -> list[PrefetchTarget]:
        """Prefetch targets for the upcoming window, highest priority first."""

    def prediction_cost_seconds(self) -> float:
        """Simulated CPU cost of the last prediction (0 for trivial ones)."""
        return 0.0

    def graph_build_cost_seconds(self) -> float:
        """Portion of the prediction cost spent building the graph.

        Only content-aware prefetchers (SCOUT) report a non-zero value;
        the simulator records it for the Fig-14 breakdown.
        """
        return 0.0

    def gap_io_pages(self) -> list[int]:
        """Pages the predictor itself wants fetched (SCOUT-OPT gap traversal).

        The simulator reads these within the prefetch window *before*
        processing targets; they are prediction I/O, not result data.
        """
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class PositionOnlyPrefetcher(Prefetcher):
    """Common bookkeeping for baselines that only use query positions."""

    def __init__(self) -> None:
        self._centers: list[np.ndarray] = []
        self._sides: list[float] = []

    def begin_sequence(self) -> None:
        self._centers = []
        self._sides = []

    def observe(self, observed: ObservedQuery) -> None:
        self._centers.append(observed.center)
        self._sides.append(observed.side)

    @property
    def last_side(self) -> float:
        return self._sides[-1] if self._sides else 1.0

    def _target_at(self, predicted_center: np.ndarray, direction: np.ndarray) -> PrefetchTarget:
        """A target prefetching concentric regions around the predicted center.

        Trajectory-extrapolation methods prefetch *around the predicted
        location* (§2.2); growing concentric regions let a short window
        cover the most likely data first.  (Boundary-anchored incremental
        expansion along the structure is SCOUT's own §5.1 technique and
        is deliberately not granted to the baselines.)
        """
        from repro.geometry.aabb import AABB

        direction = np.asarray(direction, dtype=np.float64)
        norm = np.linalg.norm(direction)
        if norm > 0:
            direction = direction / norm
        side = self.last_side
        regions = tuple(
            AABB.from_center_extent(predicted_center, side * factor)
            for factor in (0.6, 0.85, 1.1)
        )
        return PrefetchTarget(
            anchor=predicted_center, direction=direction, share=1.0, regions=regions
        )
