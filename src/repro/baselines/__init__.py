"""Prefetching baselines from the paper's related work (§2, §3.3).

All prefetchers -- baselines and SCOUT alike -- implement the same
:class:`~repro.baselines.base.Prefetcher` protocol: they observe each
executed query (bounds and, for content-aware methods, result object
ids) and emit a prioritized plan of prefetch targets that the simulator
executes within the prefetch window.
"""

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.baselines.extrapolation import (
    EWMAPrefetcher,
    PolynomialPrefetcher,
    StraightLinePrefetcher,
    VelocityPrefetcher,
)
from repro.baselines.hilbert_prefetch import HilbertPrefetcher
from repro.baselines.layered import LayeredPrefetcher
from repro.baselines.simple import NoPrefetcher, OraclePrefetcher

__all__ = [
    "EWMAPrefetcher",
    "HilbertPrefetcher",
    "LayeredPrefetcher",
    "NoPrefetcher",
    "ObservedQuery",
    "OraclePrefetcher",
    "PolynomialPrefetcher",
    "Prefetcher",
    "PrefetchTarget",
    "StraightLinePrefetcher",
    "VelocityPrefetcher",
]
