"""Trivial prefetchers used as reference points.

``NoPrefetcher`` is the paper's speedup denominator ("compared to no
prefetching at all").  ``OraclePrefetcher`` knows the actual sequence
and prefetches the true next query region -- an upper bound no online
method can beat, handy for sanity tests and for calibrating the
simulator's window accounting.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.workload.sequence import QuerySequence

__all__ = ["NoPrefetcher", "OraclePrefetcher"]


class NoPrefetcher(Prefetcher):
    """Never prefetches; every page is residual I/O."""

    name = "none"

    def observe(self, observed: ObservedQuery) -> None:
        pass

    def plan(self) -> list[PrefetchTarget]:
        return []


class OraclePrefetcher(Prefetcher):
    """Prefetches the true next query region (requires the sequence)."""

    name = "oracle"

    def __init__(self, sequence: QuerySequence | None = None) -> None:
        self.sequence = sequence
        self._last_index = -1

    def bind_sequence(self, sequence: QuerySequence) -> None:
        """Attach the sequence the oracle will be run against."""
        self.sequence = sequence

    def begin_sequence(self) -> None:
        self._last_index = -1

    def observe(self, observed: ObservedQuery) -> None:
        self._last_index = observed.index

    def plan(self) -> list[PrefetchTarget]:
        if self.sequence is None:
            raise RuntimeError("OraclePrefetcher needs bind_sequence() before use")
        next_index = self._last_index + 1
        if next_index >= len(self.sequence.queries):
            return []
        upcoming = self.sequence.queries[next_index]
        return [
            PrefetchTarget(
                anchor=upcoming.center,
                direction=np.zeros(3),
                share=1.0,
                regions=(upcoming.bounds,),
            )
        ]
