"""Hilbert-Prefetch baseline (Park & Kim [22], paper §2.1).

A static method: segment the dataset into an application-level grid,
assign each cell a Hilbert value, and prefetch the cells whose Hilbert
values are closest to the current location's value.  Because the
Hilbert curve preserves locality, cells with nearby values are nearby in
space -- but the method is oblivious to the structure being followed,
which is why the paper reports it between the extrapolation baselines
and SCOUT.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.geometry.grid import UniformGrid
from repro.geometry.hilbert import hilbert_encode

__all__ = ["HilbertPrefetcher"]


class HilbertPrefetcher(Prefetcher):
    """Prefetch grid cells by Hilbert-value proximity to the current cell."""

    name = "hilbert"

    def __init__(
        self,
        dataset: Dataset,
        cells_per_axis: int = 16,
        n_prefetch_cells: int = 8,
    ) -> None:
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be >= 2")
        if n_prefetch_cells < 1:
            raise ValueError("n_prefetch_cells must be >= 1")
        self.dataset = dataset
        self.n_prefetch_cells = n_prefetch_cells
        self._bits = max(1, int(np.ceil(np.log2(cells_per_axis))))
        k = 1 << self._bits
        bounds = dataset.bounds.inflate(1e-6)
        shape = (k, k, 1) if dataset.dims == 2 else (k, k, k)
        self.grid = UniformGrid(bounds, shape)
        self._dims = dataset.dims
        self._last_center: np.ndarray | None = None

    def begin_sequence(self) -> None:
        self._last_center = None

    def observe(self, observed: ObservedQuery) -> None:
        self._last_center = observed.center

    def _cell_value(self, coords: tuple[int, int, int]) -> int:
        if self._dims == 2:
            return hilbert_encode(coords[:2], self._bits)
        return hilbert_encode(coords, self._bits)

    def _coords_from_value(self, value: int) -> tuple[int, int, int] | None:
        from repro.geometry.hilbert import hilbert_decode

        dims = self._dims
        max_value = 1 << (dims * self._bits)
        if not 0 <= value < max_value:
            return None
        decoded = hilbert_decode(value, dims, self._bits)
        if dims == 2:
            return (decoded[0], decoded[1], 0)
        return decoded  # type: ignore[return-value]

    def plan(self) -> list[PrefetchTarget]:
        if self._last_center is None:
            return []
        current = self.grid.cell_of_point(self._last_center)
        current_value = self._cell_value(current)

        # Expand outward in Hilbert-value order: v±1, v±2, ...
        regions: list[AABB] = []
        offset = 1
        while len(regions) < self.n_prefetch_cells and offset <= 4 * self.n_prefetch_cells:
            for value in (current_value + offset, current_value - offset):
                coords = self._coords_from_value(value)
                if coords is not None:
                    regions.append(self.grid.cell_bounds(coords))
                if len(regions) >= self.n_prefetch_cells:
                    break
            offset += 1
        if not regions:
            return []
        return [
            PrefetchTarget(
                anchor=self._last_center,
                direction=np.zeros(3),
                share=1.0,
                regions=tuple(regions),
            )
        ]
