"""Layered baseline (Zhang & You [31], paper §2.1).

The simplest static method: segment the data into a grid and prefetch
all grid cells surrounding the current one.  With 26 neighbors in 3D it
spends the window uniformly in every direction; its hit rate is bounded
by the fraction of the neighborhood the next query actually lands in.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ObservedQuery, Prefetcher, PrefetchTarget
from repro.datagen.dataset import Dataset
from repro.geometry.grid import UniformGrid

__all__ = ["LayeredPrefetcher"]


class LayeredPrefetcher(Prefetcher):
    """Prefetch every grid cell surrounding the current location."""

    name = "layered"

    def __init__(self, dataset: Dataset, cells_per_axis: int = 16) -> None:
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be >= 2")
        self.dataset = dataset
        bounds = dataset.bounds.inflate(1e-6)
        shape = (
            (cells_per_axis, cells_per_axis, 1)
            if dataset.dims == 2
            else (cells_per_axis, cells_per_axis, cells_per_axis)
        )
        self.grid = UniformGrid(bounds, shape)
        self._last_center: np.ndarray | None = None

    def begin_sequence(self) -> None:
        self._last_center = None

    def observe(self, observed: ObservedQuery) -> None:
        self._last_center = observed.center

    def plan(self) -> list[PrefetchTarget]:
        if self._last_center is None:
            return []
        current = self.grid.cell_of_point(self._last_center)
        neighbors = self.grid.neighbors(current)
        if not neighbors:
            return []
        # Nearest-first so a short window still covers the most likely cells.
        center = self._last_center
        neighbors.sort(key=lambda c: float(np.linalg.norm(self.grid.cell_center(c) - center)))
        regions = tuple(self.grid.cell_bounds(c) for c in neighbors)
        return [
            PrefetchTarget(anchor=center, direction=np.zeros(3), share=1.0, regions=regions)
        ]
