"""Trajectory-extrapolation baselines (paper §2.2).

These methods assume navigational access follows a smooth path and
extrapolate *past query positions*:

- **Straight Line** [26]: linear extrapolation of the last two centers.
- **Polynomial** [4, 5]: per-coordinate polynomial of degree ``d``
  through the last ``d + 1`` centers, evaluated one step ahead.
- **Velocity** [30]: straight line using a velocity averaged over a
  short window of recent movements.
- **EWMA** [7]: exponentially weighted moving average of the movement
  vectors; the paper's best baseline at λ = 0.3.

The paper's Figure 3 shows why they struggle on neuron fibers: large
queries make the trace jagged, and higher-degree polynomials oscillate.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PositionOnlyPrefetcher, PrefetchTarget

__all__ = [
    "EWMAPrefetcher",
    "PolynomialPrefetcher",
    "StraightLinePrefetcher",
    "VelocityPrefetcher",
]


class StraightLinePrefetcher(PositionOnlyPrefetcher):
    """Linear extrapolation of the last two query centers."""

    name = "straight-line"

    def plan(self) -> list[PrefetchTarget]:
        if len(self._centers) < 2:
            return []
        delta = self._centers[-1] - self._centers[-2]
        if np.linalg.norm(delta) == 0:
            return []
        predicted = self._centers[-1] + delta
        return [self._target_at(predicted, delta)]


class PolynomialPrefetcher(PositionOnlyPrefetcher):
    """Degree-``d`` polynomial extrapolation of the query centers.

    Fits each coordinate as a polynomial in the step index over the last
    ``degree + 1`` centers (the paper uses "as many recent query
    locations ... as their degree plus one") and evaluates one step
    ahead.
    """

    def __init__(self, degree: int = 2) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError("polynomial degree must be >= 1")
        self.degree = degree
        self.name = f"poly-{degree}"

    def plan(self) -> list[PrefetchTarget]:
        needed = self.degree + 1
        if len(self._centers) < needed:
            return []
        recent = np.array(self._centers[-needed:])
        ts = np.arange(needed, dtype=np.float64)
        predicted = np.empty(3)
        for axis in range(3):
            coeffs = np.polyfit(ts, recent[:, axis], self.degree)
            predicted[axis] = np.polyval(coeffs, float(needed))
        direction = predicted - self._centers[-1]
        if np.linalg.norm(direction) == 0:
            return []
        return [self._target_at(predicted, direction)]


class VelocityPrefetcher(PositionOnlyPrefetcher):
    """Straight-line extrapolation with a velocity averaged over a window."""

    def __init__(self, window: int = 3) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("velocity window must be >= 1")
        self.window = window
        self.name = f"velocity-{window}"

    def plan(self) -> list[PrefetchTarget]:
        if len(self._centers) < 2:
            return []
        recent = np.array(self._centers[-(self.window + 1):])
        velocity = np.diff(recent, axis=0).mean(axis=0)
        if np.linalg.norm(velocity) == 0:
            return []
        predicted = self._centers[-1] + velocity
        return [self._target_at(predicted, velocity)]


class EWMAPrefetcher(PositionOnlyPrefetcher):
    """Exponentially weighted moving average of the movement vectors.

    The last movement is weighted λ, the one before (1-λ)·λ, and so on
    (§2.2); implemented with the equivalent recursion ``v ← λ·Δ +
    (1-λ)·v`` with weights renormalized over the observed history.
    """

    def __init__(self, lam: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < lam <= 1.0:
            raise ValueError("lambda must be in (0, 1]")
        self.lam = lam
        self.name = f"ewma-{lam:g}"

    def plan(self) -> list[PrefetchTarget]:
        if len(self._centers) < 2:
            return []
        movements = np.diff(np.array(self._centers), axis=0)
        n = len(movements)
        # Most recent movement first: weights λ, (1-λ)λ, (1-λ)²λ, ...
        weights = self.lam * (1.0 - self.lam) ** np.arange(n)
        weights /= weights.sum()
        velocity = (weights[::-1, None] * movements).sum(axis=0)
        if np.linalg.norm(velocity) == 0:
            return []
        predicted = self._centers[-1] + velocity
        return [self._target_at(predicted, velocity)]
