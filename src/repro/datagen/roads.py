"""Synthetic road network.

Stand-in for the North-America road network [Li et al.] of §8.4 (7.2M 2D
line segments, 531 MB): a jittered lattice of local roads with a few
long-range highways, embedded in the z=0 plane.  Roads exercise the
paper's non-scientific use case (mobile map prefetching) and the 2D code
paths (2D Hilbert values, planar queries).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline

__all__ = ["make_road_network"]


def make_road_network(
    grid_size: int = 18,
    spacing: float = 30.0,
    seed: int = 0,
    drop_probability: float = 0.12,
    n_highways: int = 3,
    segments_per_road: int = 3,
) -> Dataset:
    """Generate a planar road network.

    Nodes form a jittered ``grid_size x grid_size`` lattice; lattice
    neighbors are connected by gently-curved roads of
    ``segments_per_road`` segments each, with a fraction of roads
    dropped; ``n_highways`` diagonal highways cross the map.  Each road
    (and each highway leg between lattice crossings) is one structure.
    """
    if grid_size < 2:
        raise ValueError("grid_size must be >= 2")
    if not 0.0 <= drop_probability < 1.0:
        raise ValueError("drop_probability must be in [0, 1)")
    rng = np.random.default_rng(seed)

    # Jittered lattice of intersections.
    jitter = spacing * 0.18
    nodes = np.zeros((grid_size * grid_size, 3))
    for i in range(grid_size):
        for j in range(grid_size):
            nodes[i * grid_size + j] = (
                i * spacing + rng.uniform(-jitter, jitter),
                j * spacing + rng.uniform(-jitter, jitter),
                0.0,
            )

    p0_list, p1_list = [], []
    structure_list, branch_list = [], []
    nav_edges: list[NavEdge] = []

    def add_road(u: int, v: int, road_id: int) -> None:
        """A gently-curved polyline road between two lattice nodes."""
        a, b = nodes[u], nodes[v]
        waypoints = [a]
        for k in range(1, segments_per_road):
            t = k / segments_per_road
            midpoint = a + t * (b - a)
            lateral = rng.uniform(-jitter, jitter, size=2)
            waypoints.append(midpoint + np.array([lateral[0], lateral[1], 0.0]))
        waypoints.append(b)
        waypoints = np.array(waypoints)
        for k in range(len(waypoints) - 1):
            p0_list.append(waypoints[k])
            p1_list.append(waypoints[k + 1])
            structure_list.append(road_id)
            branch_list.append(road_id)
        nav_edges.append(NavEdge(u, v, Polyline(waypoints)))

    road_id = 0
    for i in range(grid_size):
        for j in range(grid_size):
            here = i * grid_size + j
            if i + 1 < grid_size and rng.random() >= drop_probability:
                add_road(here, (i + 1) * grid_size + j, road_id)
                road_id += 1
            if j + 1 < grid_size and rng.random() >= drop_probability:
                add_road(here, i * grid_size + (j + 1), road_id)
                road_id += 1

    # Highways: diagonal chains of lattice nodes, connected leg by leg.
    for _ in range(n_highways):
        i = int(rng.integers(grid_size))
        j = int(rng.integers(grid_size))
        direction = (1, 1) if rng.random() < 0.5 else (1, -1)
        while 0 <= i + direction[0] < grid_size and 0 <= j + direction[1] < grid_size:
            u = i * grid_size + j
            i += direction[0]
            j += direction[1]
            v = i * grid_size + j
            add_road(u, v, road_id)
            road_id += 1

    n = len(p0_list)
    return Dataset(
        name="road-network",
        p0=np.array(p0_list),
        p1=np.array(p1_list),
        radius=np.zeros(n),
        structure_id=np.array(structure_list, dtype=np.int64),
        branch_id=np.array(branch_list, dtype=np.int64),
        nav=NavigationGraph(nodes, nav_edges),
        dims=2,
    )
