"""Stochastic branching-process generator.

All three biological datasets in the paper (neuron fibers, arterial
trees, lung airways) are trees of tubular branches that wander through
space and bifurcate.  This module grows such trees: a branch is a random
walk with direction persistence and per-step angular jitter; at its end
it either terminates or bifurcates into two children whose directions
fan out by a configurable angle.  The jitter magnitude is the knob that
separates "smooth artery" (where polynomial extrapolation shines, Fig
17a) from "tortuous neuron fiber" (where it fails, Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import NavEdge, Polyline

__all__ = ["BranchingConfig", "TreeGeometry", "grow_tree"]


@dataclass(frozen=True)
class BranchingConfig:
    """Parameters of one grown tree."""

    n_stems: int = 2
    max_depth: int = 4
    steps_per_branch: tuple[int, int] = (10, 18)
    step_length: float = 4.0
    direction_jitter: float = 0.30
    bifurcation_angle: float = 0.6
    bifurcation_probability: float = 1.0
    radius_root: float = 1.2
    radius_decay: float = 0.8

    #: Probability per step of an abrupt turn by ``kink_angle`` radians.
    #: Real fiber trajectories (dendrites, bronchi) are not smooth random
    #: walks -- they take sharp turns, which is what defeats trajectory
    #: extrapolation in the paper's Figure 3.
    kink_probability: float = 0.0
    kink_angle: float = 1.0

    def __post_init__(self) -> None:
        lo, hi = self.steps_per_branch
        if not (1 <= lo <= hi):
            raise ValueError("steps_per_branch must satisfy 1 <= lo <= hi")
        if self.n_stems < 1 or self.max_depth < 0:
            raise ValueError("n_stems must be >= 1 and max_depth >= 0")
        if self.step_length <= 0 or self.radius_root <= 0:
            raise ValueError("step_length and radius_root must be positive")
        if not 0.0 <= self.bifurcation_probability <= 1.0:
            raise ValueError("bifurcation_probability must be in [0, 1]")
        if not 0.0 <= self.kink_probability <= 1.0:
            raise ValueError("kink_probability must be in [0, 1]")


@dataclass
class TreeGeometry:
    """Everything produced by growing one tree.

    ``p0``/``p1``/``radius`` describe the cylinders; ``branch_of_object``
    maps each cylinder to its branch; ``nav_nodes``/``nav_edges`` are the
    junction graph contribution (node indices are local to this tree).
    """

    p0: np.ndarray
    p1: np.ndarray
    radius: np.ndarray
    branch_of_object: np.ndarray
    nav_nodes: np.ndarray
    nav_edges: list[NavEdge]


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm == 0:
        return np.array([0.0, 0.0, 1.0])
    return vector / norm


def _perturb(direction: np.ndarray, jitter: float, rng: np.random.Generator) -> np.ndarray:
    """Jitter a unit direction by a Gaussian angular perturbation."""
    return _unit(direction + jitter * rng.normal(size=3))


def _random_perpendicular(direction: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random unit vector perpendicular to ``direction``."""
    while True:
        candidate = rng.normal(size=3)
        perp = candidate - (candidate @ direction) * direction
        norm = np.linalg.norm(perp)
        if norm > 1e-8:
            return perp / norm


def _rotate_towards(direction: np.ndarray, axis: np.ndarray, angle: float) -> np.ndarray:
    """Tilt ``direction`` by ``angle`` radians towards the perpendicular ``axis``."""
    return _unit(np.cos(angle) * direction + np.sin(angle) * axis)


def grow_tree(
    rng: np.random.Generator,
    root: np.ndarray,
    initial_direction: np.ndarray,
    config: BranchingConfig,
    branch_id_offset: int = 0,
) -> TreeGeometry:
    """Grow one branching tree rooted at ``root``.

    Every branch contributes one navigation edge (its polyline) between
    its start and end junction nodes, and one cylinder object per step.
    """
    root = np.asarray(root, dtype=np.float64)
    initial_direction = _unit(np.asarray(initial_direction, dtype=np.float64))

    p0_list: list[np.ndarray] = []
    p1_list: list[np.ndarray] = []
    radius_list: list[float] = []
    branch_list: list[int] = []
    nav_nodes: list[np.ndarray] = [root]
    nav_edges: list[NavEdge] = []

    next_branch_id = branch_id_offset

    # Work queue of branches to grow: (start_node_index, direction, depth, radius).
    queue: list[tuple[int, np.ndarray, int, float]] = []
    for stem in range(config.n_stems):
        if config.n_stems == 1:
            direction = initial_direction
        else:
            direction = _perturb(initial_direction, 1.0, rng)
        queue.append((0, direction, 0, config.radius_root))

    while queue:
        start_node, direction, depth, radius = queue.pop()
        branch_id = next_branch_id
        next_branch_id += 1

        position = nav_nodes[start_node].copy()
        polyline_points = [position.copy()]
        steps = int(rng.integers(config.steps_per_branch[0], config.steps_per_branch[1] + 1))
        for _ in range(steps):
            direction = _perturb(direction, config.direction_jitter, rng)
            if config.kink_probability > 0 and rng.random() < config.kink_probability:
                axis = _random_perpendicular(direction, rng)
                direction = _rotate_towards(direction, axis, config.kink_angle)
            new_position = position + direction * config.step_length
            p0_list.append(position.copy())
            p1_list.append(new_position.copy())
            radius_list.append(radius)
            branch_list.append(branch_id)
            polyline_points.append(new_position.copy())
            position = new_position

        end_node = len(nav_nodes)
        nav_nodes.append(position.copy())
        nav_edges.append(NavEdge(start_node, end_node, Polyline(np.array(polyline_points))))

        bifurcates = (
            depth < config.max_depth and rng.random() < config.bifurcation_probability
        )
        if bifurcates:
            axis = _random_perpendicular(direction, rng)
            child_radius = radius * config.radius_decay
            for sign in (1.0, -1.0):
                child_dir = _rotate_towards(direction, sign * axis, config.bifurcation_angle / 2.0)
                queue.append((end_node, child_dir, depth + 1, child_radius))

    return TreeGeometry(
        p0=np.array(p0_list),
        p1=np.array(p1_list),
        radius=np.array(radius_list),
        branch_of_object=np.array(branch_list, dtype=np.int64),
        nav_nodes=np.array(nav_nodes),
        nav_edges=nav_edges,
    )
