"""Synthetic spatial datasets with ground-truth guiding structures.

The paper evaluates on four datasets that we cannot redistribute (Blue
Brain tissue, a pig-heart arterial tree, a human lung airway mesh, the
North-America road network).  Each generator here produces a synthetic
stand-in with the *topological* properties SCOUT's behaviour depends on
-- bifurcation rate, tortuosity, object density -- plus the ground-truth
navigation graph that the workload generator random-walks to produce
guided query sequences (the prefetchers never see that ground truth).
"""

from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.datagen.branching import BranchingConfig, grow_tree
from repro.datagen.io import load_dataset, save_dataset
from repro.datagen.neuron import make_neuron_tissue
from repro.datagen.vascular import make_arterial_tree
from repro.datagen.lung import make_lung_airways
from repro.datagen.roads import make_road_network

__all__ = [
    "BranchingConfig",
    "Dataset",
    "NavEdge",
    "NavigationGraph",
    "Polyline",
    "grow_tree",
    "load_dataset",
    "make_arterial_tree",
    "make_lung_airways",
    "make_neuron_tissue",
    "make_road_network",
    "save_dataset",
]
