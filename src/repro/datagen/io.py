"""Dataset persistence: save/load to a single ``.npz`` file.

Generating large synthetic tissues is the slowest step of an experiment
session; persisting them lets benchmark runs and notebooks share one
instance.  The navigation graph is flattened into arrays (node
positions, edge endpoints, concatenated polyline points with offsets) so
everything round-trips through one compressed numpy archive.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset (objects + ground truth) to ``path`` (.npz)."""
    path = Path(path)
    nav = dataset.nav
    edge_uv = np.array([[e.u, e.v] for e in nav.edges], dtype=np.int64).reshape(-1, 2)
    polyline_points = (
        np.concatenate([e.polyline.points for e in nav.edges])
        if nav.edges
        else np.empty((0, 3))
    )
    offsets = np.zeros(len(nav.edges) + 1, dtype=np.int64)
    for i, edge in enumerate(nav.edges):
        offsets[i + 1] = offsets[i] + len(edge.polyline.points)

    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "name": np.array(dataset.name),
        "dims": np.int64(dataset.dims),
        "p0": dataset.p0,
        "p1": dataset.p1,
        "radius": dataset.radius,
        "structure_id": dataset.structure_id,
        "branch_id": dataset.branch_id,
        "nav_nodes": nav.nodes,
        "nav_edge_uv": edge_uv,
        "nav_polyline_points": polyline_points,
        "nav_polyline_offsets": offsets,
    }
    if dataset.explicit_edges is not None:
        payload["explicit_edges"] = dataset.explicit_edges
    np.savez_compressed(path, **payload)


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        offsets = archive["nav_polyline_offsets"]
        points = archive["nav_polyline_points"]
        edges = [
            NavEdge(int(u), int(v), Polyline(points[offsets[i] : offsets[i + 1]]))
            for i, (u, v) in enumerate(archive["nav_edge_uv"])
        ]
        nav = NavigationGraph(archive["nav_nodes"], edges)
        explicit = archive["explicit_edges"] if "explicit_edges" in archive else None
        return Dataset(
            name=str(archive["name"]),
            p0=archive["p0"],
            p1=archive["p1"],
            radius=archive["radius"],
            structure_id=archive["structure_id"],
            branch_id=archive["branch_id"],
            nav=nav,
            dims=int(archive["dims"]),
            explicit_edges=explicit,
        )
