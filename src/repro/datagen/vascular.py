"""Synthetic arterial tree.

Stand-in for the pig-heart arterial tree [Grinberg et al.] used in §8.4
(2.1M cylinders, 154 MB).  Arteries are *smooth*: long branches with very
low angular jitter.  That smoothness is the property behind the paper's
honest negative result (Fig 17a: EWMA reaches 96 % on small queries and
beats SCOUT's 90 %), so the generator keeps jitter an explicit knob.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datagen.branching import BranchingConfig, grow_tree
from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph

__all__ = ["make_arterial_tree", "ARTERIAL_CONFIG"]

#: Smooth, gently-curving branches: one main stem, deep bifurcation
#: cascade, tiny per-step jitter.
ARTERIAL_CONFIG = BranchingConfig(
    n_stems=1,
    max_depth=6,
    steps_per_branch=(16, 28),
    step_length=5.0,
    direction_jitter=0.06,
    bifurcation_angle=0.55,
    radius_root=3.0,
    radius_decay=0.78,
)


def make_arterial_tree(
    seed: int = 0,
    config: BranchingConfig = ARTERIAL_CONFIG,
    n_trees: int = 1,
    extent: float = 400.0,
    max_depth: int | None = None,
) -> Dataset:
    """Generate one (or a few) smooth arterial trees.

    Each tree is one ground-truth *structure*; the branches within it are
    the candidate guiding structures SCOUT must disambiguate.
    ``max_depth`` overrides the config's bifurcation depth -- a scalar
    knob, so declarative sweep specs can size the tree without carrying
    a :class:`BranchingConfig`.
    """
    if n_trees < 1:
        raise ValueError("n_trees must be >= 1")
    if max_depth is not None:
        config = replace(config, max_depth=int(max_depth))
    rng = np.random.default_rng(seed)

    p0_parts, p1_parts, radius_parts = [], [], []
    structure_parts, branch_parts = [], []
    nav_nodes_parts, nav_edges = [], []
    node_offset = 0
    branch_offset = 0

    for tree_id in range(n_trees):
        root = rng.uniform(0.0, extent, size=3) if n_trees > 1 else np.full(3, extent / 2.0)
        direction = rng.normal(size=3)
        tree = grow_tree(rng, root, direction, config, branch_id_offset=branch_offset)

        p0_parts.append(tree.p0)
        p1_parts.append(tree.p1)
        radius_parts.append(tree.radius)
        structure_parts.append(np.full(len(tree.p0), tree_id, dtype=np.int64))
        branch_parts.append(tree.branch_of_object)
        branch_offset = int(tree.branch_of_object.max()) + 1

        nav_nodes_parts.append(tree.nav_nodes)
        for edge in tree.nav_edges:
            nav_edges.append(NavEdge(edge.u + node_offset, edge.v + node_offset, edge.polyline))
        node_offset += len(tree.nav_nodes)

    return Dataset(
        name="arterial-tree",
        p0=np.concatenate(p0_parts),
        p1=np.concatenate(p1_parts),
        radius=np.concatenate(radius_parts),
        structure_id=np.concatenate(structure_parts),
        branch_id=np.concatenate(branch_parts),
        nav=NavigationGraph(np.concatenate(nav_nodes_parts), nav_edges),
    )
