"""Synthetic lung-airway surface mesh.

Stand-in for the human lung airway model [Achenbach et al.] used in
Figures 1 and 17 (7.1M triangles, 527 MB).  Airways are bifurcating tubes
whose *surface* is a triangle mesh; the mesh's face-adjacency gives SCOUT
an explicit graph representation (§4.2: "polygon faces [are vertices] and
edges connect adjacent polygon faces"), exercising the code path that
skips grid hashing entirely.

The generator grows a centerline tree (moderate tortuosity) and sweeps a
hexagonal ring along each branch, triangulating between consecutive
rings.  Face adjacency is derived from shared mesh edges.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.datagen.branching import BranchingConfig, grow_tree
from repro.datagen.dataset import Dataset, NavigationGraph

__all__ = ["make_lung_airways", "LUNG_CONFIG"]

#: Airway centerlines: smoother than neurons, rougher than arteries.
LUNG_CONFIG = BranchingConfig(
    n_stems=1,
    max_depth=6,
    steps_per_branch=(14, 22),
    step_length=8.0,
    direction_jitter=0.12,
    bifurcation_angle=0.7,
    radius_root=4.0,
    radius_decay=0.75,
)

#: Vertices per tube cross-section ring.
RING_VERTICES = 6


def _ring_frame(direction: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two unit vectors spanning the plane perpendicular to ``direction``."""
    helper = np.array([1.0, 0.0, 0.0])
    if abs(direction @ helper) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(direction, helper)
    u /= np.linalg.norm(u)
    v = np.cross(direction, u)
    return u, v


def _tube_faces(
    centers: np.ndarray,
    directions: np.ndarray,
    radii: np.ndarray,
) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
    """Sweep rings along a centerline; return vertices and triangle faces."""
    angles = np.linspace(0.0, 2.0 * np.pi, RING_VERTICES, endpoint=False)
    vertices: list[np.ndarray] = []
    faces: list[tuple[int, int, int]] = []
    ring_start = []
    for center, direction, radius in zip(centers, directions, radii):
        u, v = _ring_frame(direction)
        ring_start.append(len(vertices))
        for angle in angles:
            vertices.append(center + radius * (np.cos(angle) * u + np.sin(angle) * v))
    for ring in range(len(centers) - 1):
        a = ring_start[ring]
        b = ring_start[ring + 1]
        for k in range(RING_VERTICES):
            k2 = (k + 1) % RING_VERTICES
            faces.append((a + k, a + k2, b + k))
            faces.append((a + k2, b + k2, b + k))
    return np.array(vertices), faces


def _face_adjacency(
    faces: list[tuple[int, int, int]], face_id_offset: int
) -> list[tuple[int, int]]:
    """Pairs of faces sharing a mesh edge."""
    edge_to_faces: dict[tuple[int, int], list[int]] = {}
    for face_id, (a, b, c) in enumerate(faces):
        for u, v in ((a, b), (b, c), (c, a)):
            key = (min(u, v), max(u, v))
            edge_to_faces.setdefault(key, []).append(face_id + face_id_offset)
    pairs = []
    for shared in edge_to_faces.values():
        for i in range(len(shared)):
            for j in range(i + 1, len(shared)):
                pairs.append((shared[i], shared[j]))
    return pairs


def make_lung_airways(
    seed: int = 0,
    config: BranchingConfig = LUNG_CONFIG,
    max_depth: int | None = None,
) -> Dataset:
    """Generate a bifurcating airway surface mesh with explicit adjacency.

    Each object is a triangle face; its representative segment is its
    longest edge (used only for spatial extent and exit directions --
    the proximity graph comes from the explicit adjacency).
    ``max_depth`` overrides the config's bifurcation depth -- a scalar
    knob, so declarative sweep specs can size the mesh without carrying
    a :class:`BranchingConfig`.
    """
    if max_depth is not None:
        config = replace(config, max_depth=int(max_depth))
    rng = np.random.default_rng(seed)
    root = np.zeros(3)
    tree = grow_tree(rng, root, np.array([0.0, 0.0, 1.0]), config)

    p0_parts, p1_parts = [], []
    structure_parts, branch_parts = [], []
    all_edges: list[tuple[int, int]] = []
    face_offset = 0

    # Sweep a tube along each navigation edge's polyline independently.
    # Faces of different branches are linked only through grid-free
    # explicit adjacency within a branch; junction continuity comes from
    # overlapping first/last rings of parent and child branches.
    for branch_id, nav_edge in enumerate(tree.nav_edges):
        points = nav_edge.polyline.points
        deltas = np.diff(points, axis=0)
        directions = deltas / np.maximum(np.linalg.norm(deltas, axis=1)[:, None], 1e-12)
        directions = np.vstack([directions, directions[-1]])
        radii = np.full(len(points), 2.0)  # constant tube radius keeps the mesh well-formed
        vertices, faces = _tube_faces(points, directions, radii)

        for a, b, c in faces:
            va, vb, vc = vertices[a], vertices[b], vertices[c]
            # Longest edge of the triangle is the representative segment.
            edges = [(va, vb), (vb, vc), (vc, va)]
            lengths = [np.linalg.norm(q - p) for p, q in edges]
            p, q = edges[int(np.argmax(lengths))]
            p0_parts.append(p)
            p1_parts.append(q)
            structure_parts.append(0)
            branch_parts.append(branch_id)
        all_edges.extend(_face_adjacency(faces, face_offset))
        face_offset += len(faces)

    nav = NavigationGraph(tree.nav_nodes, tree.nav_edges)
    n = len(p0_parts)
    return Dataset(
        name="lung-airways",
        p0=np.array(p0_parts),
        p1=np.array(p1_parts),
        radius=np.zeros(n),
        structure_id=np.array(structure_parts, dtype=np.int64),
        branch_id=np.array(branch_parts, dtype=np.int64),
        nav=nav,
        explicit_edges=np.array(all_edges, dtype=np.int64) if all_edges else None,
    )
