"""Synthetic brain-tissue model.

Stand-in for the Blue Brain Project circuit used in §7: a box of tissue
filled with neurons, each modeled as a few hundred 3D cylinders forming
a soma with branches that extend and bifurcate several times (§3.1).
Neuron fibers are deliberately tortuous (high per-step jitter) -- that
tortuosity is why position-extrapolation baselines stall at <45 % hit
rate in the paper's Figure 3.

The generated tissue is rescaled to the paper's effective object density
so that paper-quoted absolute volumes (80,000 µm³ queries, 25 µm gaps)
produce paper-like result sizes.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.branching import BranchingConfig, grow_tree
from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph

__all__ = ["make_neuron_tissue", "NEURON_TISSUE_DENSITY"]

#: Objects per µm³ of tissue.  Chosen so a paper-sized query (80,000 µm³)
#: returns on the order of a hundred objects -- scaled down from the
#: paper's 450M-object tissue but in the same pages-per-query regime.
NEURON_TISSUE_DENSITY = 0.0012

#: Morphology parameters of one synthetic neuron, in µm.  Fibers are
#: long (a branch spans ~225 µm, a root-to-leaf path ~1 mm) so a
#: 25-query sequence can follow a fiber without retracing it, while the
#: per-step jitter plus occasional sharp kinks decorrelate the direction
#: within about one side of an 80,000 µm³ query -- the paper's regime,
#: where straight-line extrapolation works briefly and then breaks
#: (Fig 3).
NEURON_CONFIG = BranchingConfig(
    n_stems=2,
    max_depth=3,
    steps_per_branch=(35, 55),
    step_length=5.0,
    direction_jitter=0.30,
    bifurcation_angle=1.0,
    radius_root=1.0,
    radius_decay=0.82,
    kink_probability=0.18,
    kink_angle=1.0,
)


def make_neuron_tissue(
    n_neurons: int = 60,
    seed: int = 0,
    extent: float | None = None,
    config: BranchingConfig = NEURON_CONFIG,
    target_density: float = NEURON_TISSUE_DENSITY,
) -> Dataset:
    """Generate a tissue box of ``n_neurons`` synthetic neurons.

    Somata are placed uniformly in a cube; each neuron is an independent
    branching tree contributing ~800 cylinders with the default config.
    When ``extent`` is ``None`` the soma box is sized so the resulting
    tissue has approximately ``target_density`` objects per µm³, making
    the paper's absolute query volumes (e.g. 80,000 µm³) directly
    meaningful.  Pass an explicit ``extent`` to vary density at fixed
    volume instead (the Fig 13b sweep).
    """
    if n_neurons < 1:
        raise ValueError("n_neurons must be >= 1")
    rng = np.random.default_rng(seed)

    if extent is None:
        expected_branches = config.n_stems * (2 ** (config.max_depth + 1) - 1)
        expected_steps = sum(config.steps_per_branch) / 2.0
        expected_objects = n_neurons * expected_branches * expected_steps
        extent = (expected_objects / target_density) ** (1.0 / 3.0)

    p0_parts, p1_parts, radius_parts = [], [], []
    structure_parts, branch_parts = [], []
    nav_nodes_parts: list[np.ndarray] = []
    nav_edges: list[NavEdge] = []
    node_offset = 0
    branch_offset = 0

    for neuron_id in range(n_neurons):
        soma = rng.uniform(0.0, extent, size=3)
        initial_direction = rng.normal(size=3)
        tree = grow_tree(rng, soma, initial_direction, config, branch_id_offset=branch_offset)

        p0_parts.append(tree.p0)
        p1_parts.append(tree.p1)
        radius_parts.append(tree.radius)
        structure_parts.append(np.full(len(tree.p0), neuron_id, dtype=np.int64))
        branch_parts.append(tree.branch_of_object)
        if len(tree.branch_of_object):
            branch_offset = int(tree.branch_of_object.max()) + 1

        nav_nodes_parts.append(tree.nav_nodes)
        for edge in tree.nav_edges:
            nav_edges.append(NavEdge(edge.u + node_offset, edge.v + node_offset, edge.polyline))
        node_offset += len(tree.nav_nodes)

    return Dataset(
        name="neuron-tissue",
        p0=np.concatenate(p0_parts),
        p1=np.concatenate(p1_parts),
        radius=np.concatenate(radius_parts),
        structure_id=np.concatenate(structure_parts),
        branch_id=np.concatenate(branch_parts),
        nav=NavigationGraph(np.concatenate(nav_nodes_parts), nav_edges),
    )
