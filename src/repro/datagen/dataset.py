"""Dataset container and ground-truth navigation graph.

A :class:`Dataset` stores the spatial objects as arrays (each object is a
line segment with a radius -- the reduction the paper applies to BBP
cylinders -- or a mesh face with a representative segment), together with
the ground-truth :class:`NavigationGraph` of guiding structures.  The
navigation graph is used *only* by the workload generator to synthesize
guided query sequences; prefetchers never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.geometry.aabb import AABB

__all__ = ["Dataset", "NavEdge", "NavigationGraph", "Polyline"]

#: Approximate on-disk footprint of one object.  The paper stores two
#: endpoints plus radii and attributes; 79% of the 33 GB/450M dataset is
#: geometry, i.e. ~58 bytes of geometry and ~73 bytes total per cylinder.
OBJECT_BYTES = 72


class Polyline:
    """An open 3D polyline with arc-length parameterization."""

    def __init__(self, points) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3 or len(points) < 2:
            raise ValueError(f"polyline needs an (n>=2, 3) array, got {points.shape}")
        self.points = points
        deltas = np.linalg.norm(np.diff(points, axis=0), axis=1)
        self._cumulative = np.concatenate([[0.0], np.cumsum(deltas)])

    @property
    def length(self) -> float:
        return float(self._cumulative[-1])

    def point_at(self, arc: float) -> np.ndarray:
        """The point at arc-length ``arc`` (clamped to the polyline)."""
        arc = float(np.clip(arc, 0.0, self.length))
        idx = int(np.searchsorted(self._cumulative, arc, side="right") - 1)
        idx = min(idx, len(self.points) - 2)
        seg_len = self._cumulative[idx + 1] - self._cumulative[idx]
        if seg_len <= 0:
            return self.points[idx].copy()
        t = (arc - self._cumulative[idx]) / seg_len
        return self.points[idx] + t * (self.points[idx + 1] - self.points[idx])

    def tangent_at(self, arc: float) -> np.ndarray:
        """Unit tangent at arc-length ``arc``."""
        arc = float(np.clip(arc, 0.0, self.length))
        idx = int(np.searchsorted(self._cumulative, arc, side="right") - 1)
        idx = min(max(idx, 0), len(self.points) - 2)
        delta = self.points[idx + 1] - self.points[idx]
        norm = np.linalg.norm(delta)
        if norm == 0:
            return np.array([1.0, 0.0, 0.0])
        return delta / norm

    def reversed(self) -> "Polyline":
        return Polyline(self.points[::-1].copy())


@dataclass(frozen=True)
class NavEdge:
    """A guiding-structure arc between two junction nodes."""

    u: int
    v: int
    polyline: Polyline


class NavigationGraph:
    """Ground-truth junction/arc graph of the guiding structures.

    Nodes are junction points (somata, bifurcations, road intersections);
    edges are the polyline arcs between them.  :meth:`random_walk`
    produces the continuous navigation paths that guide query sequences.
    """

    def __init__(self, nodes: np.ndarray, edges: list[NavEdge]) -> None:
        self.nodes = np.asarray(nodes, dtype=np.float64)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != 3:
            raise ValueError("nodes must be an (n, 3) array")
        self.edges = list(edges)
        self._adjacency: dict[int, list[int]] = {}
        for edge_id, edge in enumerate(self.edges):
            for node in (edge.u, edge.v):
                if not 0 <= node < len(self.nodes):
                    raise ValueError(f"edge references unknown node {node}")
            self._adjacency.setdefault(edge.u, []).append(edge_id)
            self._adjacency.setdefault(edge.v, []).append(edge_id)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def edges_at(self, node: int) -> list[int]:
        return self._adjacency.get(node, [])

    def total_length(self) -> float:
        return float(sum(edge.polyline.length for edge in self.edges))

    def random_walk(
        self,
        rng: np.random.Generator,
        min_length: float,
        start_edge: int | None = None,
    ) -> Polyline:
        """A continuous guiding path of at least ``min_length`` arc length.

        Walks edge polylines end-to-end; at each junction it continues on
        a uniformly random incident edge other than the one it arrived
        by (falling back to reversing at dead ends).  This mirrors how a
        scientist follows a neuron fiber across bifurcations.
        """
        if not self.edges:
            raise ValueError("navigation graph has no edges")
        edge_id = int(start_edge) if start_edge is not None else int(rng.integers(len(self.edges)))
        edge = self.edges[edge_id]
        forward = bool(rng.integers(2))
        points: list[np.ndarray] = []
        walked = 0.0
        current_node = edge.u if forward else edge.v
        visited_edges: set[int] = set()

        for _ in range(10_000):  # hard stop against degenerate graphs
            poly = edge.polyline if current_node == edge.u else edge.polyline.reversed()
            start_index = 0 if not points else 1  # avoid duplicating junction points
            for point in poly.points[start_index:]:
                points.append(point)
            walked += poly.length
            visited_edges.add(edge_id)
            current_node = edge.v if current_node == edge.u else edge.u
            if walked >= min_length:
                break
            # A scientist follows the structure onward: prefer arcs not
            # yet traversed (retracing an arc re-reads data already seen),
            # falling back to any continuation, then to turning around.
            options = [e for e in self.edges_at(current_node) if e != edge_id]
            fresh = [e for e in options if e not in visited_edges]
            if fresh:
                options = fresh
            elif not options:
                options = [edge_id]  # dead end: turn around
            edge_id = int(options[int(rng.integers(len(options)))])
            edge = self.edges[edge_id]
        if len(points) < 2:
            raise ValueError("random walk produced a degenerate path")
        return Polyline(np.array(points))


@dataclass
class Dataset:
    """A spatial dataset of segment-like objects plus ground truth.

    ``p0``/``p1`` are the representative segment endpoints of each object
    (cylinder axis, road segment, or longest edge of a mesh face);
    ``radius`` the object radius (0 for meshes/roads).  ``structure_id``
    identifies the ground-truth structure (neuron, artery, airway, road)
    and ``branch_id`` the branch within it -- used for evaluation and
    workload generation only.  ``explicit_edges`` carries mesh adjacency
    when the dataset has an explicit graph representation (§4.2).
    """

    name: str
    p0: np.ndarray
    p1: np.ndarray
    radius: np.ndarray
    structure_id: np.ndarray
    branch_id: np.ndarray
    nav: NavigationGraph
    dims: int = 3
    explicit_edges: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.p0 = np.asarray(self.p0, dtype=np.float64)
        self.p1 = np.asarray(self.p1, dtype=np.float64)
        self.radius = np.asarray(self.radius, dtype=np.float64)
        self.structure_id = np.asarray(self.structure_id, dtype=np.int64)
        self.branch_id = np.asarray(self.branch_id, dtype=np.int64)
        n = len(self.p0)
        shapes_ok = (
            self.p0.shape == (n, 3)
            and self.p1.shape == (n, 3)
            and self.radius.shape == (n,)
            and self.structure_id.shape == (n,)
            and self.branch_id.shape == (n,)
        )
        if not shapes_ok or n == 0:
            raise ValueError("dataset arrays must be non-empty and consistently shaped")
        if self.dims not in (2, 3):
            raise ValueError("dims must be 2 or 3")
        if self.explicit_edges is not None:
            self.explicit_edges = np.asarray(self.explicit_edges, dtype=np.int64)
            if self.explicit_edges.ndim != 2 or self.explicit_edges.shape[1] != 2:
                raise ValueError("explicit_edges must be an (m, 2) array")

    # -- derived arrays -----------------------------------------------------

    @property
    def n_objects(self) -> int:
        return len(self.p0)

    @cached_property
    def obj_lo(self) -> np.ndarray:
        return np.minimum(self.p0, self.p1) - self.radius[:, None]

    @cached_property
    def obj_hi(self) -> np.ndarray:
        return np.maximum(self.p0, self.p1) + self.radius[:, None]

    @cached_property
    def centroids(self) -> np.ndarray:
        return (self.p0 + self.p1) / 2.0

    @cached_property
    def bounds(self) -> AABB:
        return AABB(self.obj_lo.min(axis=0), self.obj_hi.max(axis=0))

    def density(self) -> float:
        """Objects per unit volume (per unit area for 2D datasets)."""
        extent = self.bounds.extent
        if self.dims == 2:
            measure = float(extent[0] * extent[1])
        else:
            measure = float(np.prod(extent))
        return self.n_objects / max(measure, 1e-12)

    def size_bytes(self) -> int:
        """Approximate on-disk size (for reporting, matching §7.1 style)."""
        return self.n_objects * OBJECT_BYTES

    # -- scaling --------------------------------------------------------------

    def rescaled_to_density(self, target_density: float) -> "Dataset":
        """Uniformly rescale coordinates so object density matches the paper.

        The paper quotes absolute query volumes (e.g. 80,000 µm³) and gap
        distances (µm) for a tissue of known density.  Uniform scaling
        preserves all topology, so rescaling our synthetic data to the
        paper's density makes those absolute numbers directly usable.
        """
        if target_density <= 0:
            raise ValueError("target density must be positive")
        factor = (self.density() / target_density) ** (1.0 / self.dims)
        return self.scaled_by(factor)

    def scaled_by(self, factor: float) -> "Dataset":
        """Return a copy with every coordinate multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        nav = NavigationGraph(
            self.nav.nodes * factor,
            [
                NavEdge(edge.u, edge.v, Polyline(edge.polyline.points * factor))
                for edge in self.nav.edges
            ],
        )
        return Dataset(
            name=self.name,
            p0=self.p0 * factor,
            p1=self.p1 * factor,
            radius=self.radius * factor,
            structure_id=self.structure_id.copy(),
            branch_id=self.branch_id.copy(),
            nav=nav,
            dims=self.dims,
            explicit_edges=None if self.explicit_edges is None else self.explicit_edges.copy(),
        )
