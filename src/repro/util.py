"""Small shared array utilities.

CSR (compressed sparse row) layouts -- a concatenated value array plus
an offsets array -- are the packed structure-of-arrays representation
used by the page table and the R-tree levels.  :func:`csr_expand` is
the gather that turns per-row (start, count) pairs into flat indices
into the value array, without a Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["csr_expand", "row_norms", "slice_of"]


def slice_of(key, n_slices: int):
    """Deterministic "key -> slice ``i`` of ``n``" assignment.

    The one modulo used everywhere the repo splits a keyed stream into
    ``n`` fixed slices: the sharded result store maps a cell key's
    leading hex digits to a store shard
    (:func:`repro.sim.results.shard_of`), and the sharded cache's
    ``hash`` partitioner maps page ids to cache shards
    (:mod:`repro.storage.sharded`).  Keeping both behind this helper
    pins them together: changing the assignment rule in one place would
    silently orphan persisted stores or reshuffle cache partitions, so
    the regression test (``tests/test_sharding.py``) asserts both call
    sites agree with this function.

    ``key`` may be a non-negative int or an integer ndarray (the modulo
    broadcasts); ``n_slices`` must be a positive int.
    """
    if n_slices <= 0:
        raise ValueError("n_slices must be positive")
    return key % n_slices


def row_norms(vectors: np.ndarray) -> np.ndarray:
    """Per-row Euclidean norms, bit-identical to ``np.linalg.norm(row)``.

    The scalar 1-D ``np.linalg.norm`` computes ``sqrt(dot(x, x))``
    through the BLAS dot kernel; a batched matmul routes through the
    same kernel, while ``np.linalg.norm(..., axis=-1)`` (a square-sum
    reduction) can differ in the last bit.  Vectorized rewrites of
    scalar per-vector norms use this so their float results stay
    bit-identical to the loops they replaced.

    The matmul==ddot equality is a BLAS implementation detail, so the
    equivalence tests (``tests/test_vectorized_equivalence.py``) pin it
    per platform: on a BLAS where the kernels round differently they
    fail loudly rather than letting the paths drift apart silently.
    """
    return np.sqrt(np.matmul(vectors[..., None, :], vectors[..., :, None])[..., 0, 0])


def csr_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices for variable-length runs ``[starts, starts+counts)``.

    Given ``n`` runs described by their start offsets and lengths,
    returns the concatenation ``[s0, s0+1, ..., s0+c0-1, s1, ...]`` as
    one int64 array.  Runs may overlap or be empty.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Offset of each output element within its run: a global ramp minus
    # the (repeated) number of elements emitted before the run started.
    before = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(before, counts)
    return np.repeat(starts, counts) + within
