"""Line-segment primitives.

The BBP tissue models represent neuron morphologies as 3D cylinders; the
paper reduces each cylinder to the straight line segment between its two
endpoints when building the proximity graph (§7.1: "SCOUT reduces the
cylinder to a line segment by solely using the two endpoints").  The same
simplification serves the arterial tree, and road segments are already
segments.  This module provides the segment math the rest of the system
needs: distances, AABB clipping, and vectorized intersection masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB

__all__ = [
    "Segment",
    "clip_segment_to_aabb",
    "point_segment_distance",
    "segment_aabb_intersects",
    "segment_lengths",
    "segment_segment_distance",
    "segments_aabb_mask",
    "segments_clip_intervals",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """A 3D line segment with an optional radius (capsule/cylinder)."""

    a: np.ndarray
    b: np.ndarray
    radius: float = 0.0

    def __post_init__(self) -> None:
        a = np.asarray(self.a, dtype=np.float64)
        b = np.asarray(self.b, dtype=np.float64)
        if a.shape != (3,) or b.shape != (3,):
            raise ValueError("segment endpoints must be 3D points")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def length(self) -> float:
        return float(np.linalg.norm(self.b - self.a))

    @property
    def midpoint(self) -> np.ndarray:
        return (self.a + self.b) / 2.0

    @property
    def direction(self) -> np.ndarray:
        """Unit direction from ``a`` to ``b`` (zero vector if degenerate)."""
        delta = self.b - self.a
        norm = np.linalg.norm(delta)
        if norm < _EPS:
            return np.zeros(3)
        return delta / norm

    def aabb(self) -> AABB:
        lo = np.minimum(self.a, self.b) - self.radius
        hi = np.maximum(self.a, self.b) + self.radius
        return AABB(lo, hi)

    def point_at(self, t: float) -> np.ndarray:
        """Linear interpolation: ``t=0`` is ``a``, ``t=1`` is ``b``."""
        return self.a + float(t) * (self.b - self.a)


def segment_lengths(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lengths of ``n`` segments given ``(n, 3)`` endpoint arrays."""
    return np.linalg.norm(np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64), axis=1)


def point_segment_distance(point, a, b) -> float:
    """Euclidean distance from a point to segment ``[a, b]``."""
    point = np.asarray(point, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ab = b - a
    denom = float(ab @ ab)
    if denom < _EPS:
        return float(np.linalg.norm(point - a))
    t = float(np.clip((point - a) @ ab / denom, 0.0, 1.0))
    closest = a + t * ab
    return float(np.linalg.norm(point - closest))


def segment_segment_distance(a0, a1, b0, b1) -> float:
    """Minimum distance between segments ``[a0, a1]`` and ``[b0, b1]``.

    Classic clamped closest-point computation (Ericson, *Real-Time
    Collision Detection*, §5.1.9).  Used to validate grid-hashing edges
    against a brute-force proximity reference.
    """
    a0 = np.asarray(a0, dtype=np.float64)
    a1 = np.asarray(a1, dtype=np.float64)
    b0 = np.asarray(b0, dtype=np.float64)
    b1 = np.asarray(b1, dtype=np.float64)

    d1 = a1 - a0
    d2 = b1 - b0
    r = a0 - b0
    a = float(d1 @ d1)
    e = float(d2 @ d2)
    f = float(d2 @ r)

    if a < _EPS and e < _EPS:
        return float(np.linalg.norm(r))
    if a < _EPS:
        t = np.clip(f / e, 0.0, 1.0)
        s = 0.0
    else:
        c = float(d1 @ r)
        if e < _EPS:
            t = 0.0
            s = np.clip(-c / a, 0.0, 1.0)
        else:
            b = float(d1 @ d2)
            denom = a * e - b * b
            if denom > _EPS:
                s = np.clip((b * f - c * e) / denom, 0.0, 1.0)
            else:
                s = 0.0
            t = (b * s + f) / e
            if t < 0.0:
                t = 0.0
                s = np.clip(-c / a, 0.0, 1.0)
            elif t > 1.0:
                t = 1.0
                s = np.clip((b - c) / a, 0.0, 1.0)
    closest1 = a0 + s * d1
    closest2 = b0 + t * d2
    return float(np.linalg.norm(closest1 - closest2))


def _slab_clip(a: np.ndarray, delta: np.ndarray, box: AABB) -> tuple[float, float] | None:
    """Liang-Barsky style slab clipping of the parametric line ``a + t*delta``.

    Returns the ``(t_enter, t_exit)`` interval intersected with ``[0, 1]``
    or ``None`` when the segment misses the box.
    """
    t0, t1 = 0.0, 1.0
    for axis in range(3):
        d = delta[axis]
        lo = box.lo[axis] - a[axis]
        hi = box.hi[axis] - a[axis]
        if abs(d) < _EPS:
            if lo > 0.0 or hi < 0.0:
                return None
            continue
        ta = lo / d
        tb = hi / d
        if ta > tb:
            ta, tb = tb, ta
        t0 = max(t0, ta)
        t1 = min(t1, tb)
        if t0 > t1:
            return None
    return t0, t1


def segment_aabb_intersects(a, b, box: AABB) -> bool:
    """Exact segment-vs-box overlap test."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return _slab_clip(a, b - a, box) is not None


def clip_segment_to_aabb(a, b, box: AABB) -> tuple[np.ndarray, np.ndarray] | None:
    """The portion of segment ``[a, b]`` inside ``box``.

    Returns a pair of endpoints, or ``None`` if the segment misses the
    box.  The returned sub-segment may be degenerate (a single point)
    when the segment only grazes a face.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    delta = b - a
    interval = _slab_clip(a, delta, box)
    if interval is None:
        return None
    t0, t1 = interval
    return a + t0 * delta, a + t1 * delta


def segments_clip_intervals(
    a: np.ndarray, b: np.ndarray, box: AABB
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized slab clip of ``n`` segments against one box.

    Returns ``(ok, t0, t1)``: whether each segment hits the box and the
    clipped parametric interval within ``[0, 1]``.  This is the batched
    counterpart of :func:`_slab_clip` -- same epsilon, same per-axis
    max/min order -- so ``a + t0*delta`` / ``a + t1*delta`` reproduce
    :func:`clip_segment_to_aabb`'s endpoints bit for bit.  ``t0``/``t1``
    are meaningful only where ``ok`` is true.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    delta = b - a

    t0 = np.zeros(len(a))
    t1 = np.ones(len(a))
    ok = np.ones(len(a), dtype=bool)
    for axis in range(3):
        d = delta[:, axis]
        lo = box.lo[axis] - a[:, axis]
        hi = box.hi[axis] - a[:, axis]
        parallel = np.abs(d) < _EPS
        # Parallel segments must start inside the slab.
        ok &= ~(parallel & ((lo > 0.0) | (hi < 0.0)))
        with np.errstate(divide="ignore", invalid="ignore"):
            ta = np.where(parallel, -np.inf, lo / d)
            tb = np.where(parallel, np.inf, hi / d)
        swap = ta > tb
        ta2 = np.where(swap, tb, ta)
        tb2 = np.where(swap, ta, tb)
        t0 = np.maximum(t0, ta2)
        t1 = np.minimum(t1, tb2)
    ok &= t0 <= t1
    return ok, t0, t1


def segments_aabb_mask(a: np.ndarray, b: np.ndarray, box: AABB) -> np.ndarray:
    """Vectorized exact segment-vs-box test for ``(n, 3)`` endpoint arrays.

    Implements the slab test across all segments at once; used by indexes
    to refine candidate sets returned from page-level lookups.
    """
    ok, _, _ = segments_clip_intervals(a, b, box)
    return ok
