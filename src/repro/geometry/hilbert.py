"""Hilbert space-filling curve (2D/3D), Skilling's transform.

The Hilbert-Prefetch baseline (Park & Kim [22]) assigns each grid cell a
Hilbert value and prefetches cells whose values are closest to the value
of the current cell.  This module provides an exact encode/decode pair
for arbitrary dimension and precision using John Skilling's
transpose-based algorithm ("Programming the Hilbert curve", AIP 2004).

``hilbert_encode`` maps integer cell coordinates to a distance along the
curve; ``hilbert_decode`` is its inverse.  Both are exact bijections on
``[0, 2**bits)**dims`` (property-tested in the test-suite).
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_encode", "hilbert_decode"]


def _axes_to_transpose(coords: list[int], bits: int) -> list[int]:
    """In-place Skilling transform: axes -> transposed Hilbert bits."""
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)

    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(x: list[int], bits: int) -> list[int]:
    """Inverse of :func:`_axes_to_transpose`."""
    x = list(x)
    n = len(x)
    m = 2 << (bits - 1)

    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _interleave(x: list[int], bits: int) -> int:
    """Pack transposed per-axis bit planes into a single Hilbert index."""
    value = 0
    for bit in range(bits - 1, -1, -1):
        for axis_bits in x:
            value = (value << 1) | ((axis_bits >> bit) & 1)
    return value


def _deinterleave(value: int, dims: int, bits: int) -> list[int]:
    """Unpack a Hilbert index into transposed per-axis bit planes."""
    x = [0] * dims
    position = dims * bits - 1
    for bit in range(bits - 1, -1, -1):
        for axis in range(dims):
            x[axis] |= ((value >> position) & 1) << bit
            position -= 1
    return x


def hilbert_encode(coords, bits: int) -> int:
    """Distance along the Hilbert curve of an integer coordinate tuple.

    ``coords`` are integers in ``[0, 2**bits)``; the result lies in
    ``[0, 2**(dims*bits))``.
    """
    coords = [int(c) for c in np.asarray(coords).ravel()]
    if bits < 1:
        raise ValueError("bits must be >= 1")
    limit = 1 << bits
    for c in coords:
        if not 0 <= c < limit:
            raise ValueError(f"coordinate {c} out of range [0, {limit})")
    if len(coords) == 1:
        return coords[0]
    transposed = _axes_to_transpose(coords, bits)
    return _interleave(transposed, bits)


def hilbert_decode(value: int, dims: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    if bits < 1 or dims < 1:
        raise ValueError("dims and bits must be >= 1")
    if not 0 <= value < (1 << (dims * bits)):
        raise ValueError(f"hilbert value {value} out of range for {dims}x{bits} bits")
    if dims == 1:
        return (int(value),)
    transposed = _deinterleave(int(value), dims, bits)
    return tuple(_transpose_to_axes(transposed, bits))
