"""Geometric primitives used throughout the SCOUT reproduction.

Everything operates on plain numpy arrays: points are ``(3,)`` float
arrays, point sets are ``(n, 3)``, and axis-aligned boxes are
:class:`~repro.geometry.aabb.AABB` value objects.  All helpers are
vectorized so the simulator can process query results with thousands of
objects per step without Python-level loops.
"""

from repro.geometry.aabb import AABB, aabbs_intersect_arrays, union_all
from repro.geometry.primitives import (
    Segment,
    clip_segment_to_aabb,
    point_segment_distance,
    segment_aabb_intersects,
    segment_lengths,
    segment_segment_distance,
    segments_aabb_mask,
)
from repro.geometry.frustum import Frustum
from repro.geometry.hilbert import hilbert_decode, hilbert_encode
from repro.geometry.grid import UniformGrid

__all__ = [
    "AABB",
    "Frustum",
    "Segment",
    "UniformGrid",
    "aabbs_intersect_arrays",
    "clip_segment_to_aabb",
    "hilbert_decode",
    "hilbert_encode",
    "point_segment_distance",
    "segment_aabb_intersects",
    "segment_lengths",
    "segment_segment_distance",
    "segments_aabb_mask",
    "union_all",
]
