"""View frusta for the walkthrough-visualization workloads.

The paper's visualization microbenchmarks issue *view frustum culling*
queries: truncated pyramids oriented along the navigation direction
(Figure 10 lists "Frustum" as the aspect-ratio of those workloads).  A
frustum here is parameterized by an apex-side (near) rectangle, a far
rectangle, a center, an axis, and a depth; the defining property is that
it narrows toward the viewer.

Spatial indexes only understand AABBs, so a frustum exposes its enclosing
AABB for page lookups plus exact point/AABB tests for refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB

__all__ = ["Frustum"]

_EPS = 1e-12


def _orthonormal_basis(axis: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A right-handed basis whose third vector is ``axis`` (normalized)."""
    w = np.asarray(axis, dtype=np.float64)
    norm = np.linalg.norm(w)
    if norm < _EPS:
        raise ValueError("frustum axis must be non-zero")
    w = w / norm
    helper = np.array([1.0, 0.0, 0.0])
    if abs(w @ helper) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(w, helper)
    u /= np.linalg.norm(u)
    v = np.cross(w, u)
    return u, v, w


@dataclass(frozen=True)
class Frustum:
    """A truncated square pyramid pointing along ``axis``.

    ``near_center`` is the center of the near (small) face; the far face
    lies at ``near_center + depth * axis``.  ``near_half`` and
    ``far_half`` are the half side lengths of the two square faces
    (``near_half <= far_half``).
    """

    near_center: np.ndarray
    axis: np.ndarray
    depth: float
    near_half: float
    far_half: float

    def __post_init__(self) -> None:
        near_center = np.asarray(self.near_center, dtype=np.float64)
        u, v, w = _orthonormal_basis(self.axis)
        if self.depth <= 0:
            raise ValueError("frustum depth must be positive")
        if self.near_half < 0 or self.far_half < self.near_half:
            raise ValueError("frustum requires 0 <= near_half <= far_half")
        object.__setattr__(self, "near_center", near_center)
        object.__setattr__(self, "axis", w)
        object.__setattr__(self, "_u", u)
        object.__setattr__(self, "_v", v)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_volume(cls, center, direction, volume: float, taper: float = 0.5) -> "Frustum":
        """A frustum of the requested volume centered on ``center``.

        ``taper`` is the ratio near/far side length.  The frustum depth
        equals its far side length, which keeps the shape cube-like and
        comparable to the paper's cube queries of the same volume.  The
        exact frustum volume is ``depth/3 * (A_near + A_far +
        sqrt(A_near*A_far))`` and we solve for the far side.
        """
        if not 0.0 < taper <= 1.0:
            raise ValueError(f"taper must be in (0, 1], got {taper}")
        if volume <= 0:
            raise ValueError("frustum volume must be positive")
        # With s = far side, near side = taper*s, depth = s:
        # V = s/3 * (s^2*taper^2 + s^2 + s^2*taper) = s^3/3 * (1 + taper + taper^2)
        shape_factor = (1.0 + taper + taper * taper) / 3.0
        far_side = (float(volume) / shape_factor) ** (1.0 / 3.0)
        depth = far_side
        center = np.asarray(center, dtype=np.float64)
        _, _, w = _orthonormal_basis(direction)
        near_center = center - w * (depth / 2.0)
        return cls(near_center, w, depth, taper * far_side / 2.0, far_side / 2.0)

    # -- measures ---------------------------------------------------------

    @property
    def far_center(self) -> np.ndarray:
        return self.near_center + self.axis * self.depth

    @property
    def center(self) -> np.ndarray:
        return self.near_center + self.axis * (self.depth / 2.0)

    @property
    def volume(self) -> float:
        area_near = (2.0 * self.near_half) ** 2
        area_far = (2.0 * self.far_half) ** 2
        return self.depth / 3.0 * (area_near + area_far + np.sqrt(area_near * area_far))

    def _half_at(self, t: np.ndarray) -> np.ndarray:
        """Half side length of the cross-section at axial parameter ``t``."""
        return self.near_half + (self.far_half - self.near_half) * t

    # -- predicates -------------------------------------------------------

    def contains_points(self, points) -> np.ndarray:
        """Exact containment mask for an ``(n, 3)`` point array."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        rel = points - self.near_center
        along = rel @ self.axis
        t = along / self.depth
        inside_axis = (t >= 0.0) & (t <= 1.0)
        half = self._half_at(np.clip(t, 0.0, 1.0))
        u_coord = np.abs(rel @ self._u)
        v_coord = np.abs(rel @ self._v)
        return inside_axis & (u_coord <= half) & (v_coord <= half)

    def contains_point(self, point) -> bool:
        return bool(self.contains_points(np.asarray(point)[None, :])[0])

    def corners(self) -> np.ndarray:
        """The 8 corner points (4 near + 4 far) as an ``(8, 3)`` array."""
        pts = []
        for center, half in ((self.near_center, self.near_half), (self.far_center, self.far_half)):
            for su in (-1.0, 1.0):
                for sv in (-1.0, 1.0):
                    pts.append(center + su * half * self._u + sv * half * self._v)
        return np.array(pts)

    def bounding_aabb(self) -> AABB:
        """The tightest AABB enclosing the frustum (used for index lookups)."""
        return AABB.from_points(self.corners())
