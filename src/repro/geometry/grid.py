"""Uniform grid math shared by grid hashing, the grid index and baselines.

A :class:`UniformGrid` partitions an AABB into ``nx * ny * nz``
equi-volume cells.  It converts between points, integer cell coordinates
and flat cell ids, rasterizes segments into the cells they cross (3D
DDA), and enumerates cell neighborhoods -- the workhorses behind the
paper's grid-hashing graph construction (§4.2), the Layered baseline and
the Hilbert-Prefetch baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB
from repro.geometry.primitives import clip_segment_to_aabb

__all__ = ["UniformGrid"]

_EPS = 1e-9


@dataclass(frozen=True)
class UniformGrid:
    """An ``nx x ny x nz`` partition of ``bounds`` into equal cells."""

    bounds: AABB
    shape: tuple[int, int, int]

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if len(shape) != 3 or any(s < 1 for s in shape):
            raise ValueError(f"grid shape must be three positive ints, got {self.shape}")
        object.__setattr__(self, "shape", shape)

    @classmethod
    def with_cell_count(cls, bounds: AABB, n_cells: int) -> "UniformGrid":
        """A roughly-cubic grid with approximately ``n_cells`` total cells.

        The paper's sensitivity analysis (Fig 13e) varies the total number
        of grid cells (32768 down to 8); the per-axis resolution is the
        cube root, adapted to the box aspect ratio so the cells stay
        near-cubic.
        """
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        extent = np.maximum(bounds.extent, _EPS)
        # Choose per-axis counts proportional to extent with product ~ n_cells.
        scale = (n_cells / float(np.prod(extent))) ** (1.0 / 3.0)
        shape = np.maximum(1, np.round(extent * scale).astype(int))
        return cls(bounds, tuple(int(s) for s in shape))

    # -- sizes ------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def cell_extent(self) -> np.ndarray:
        return self.bounds.extent / np.asarray(self.shape, dtype=np.float64)

    # -- coordinate conversions ---------------------------------------------

    def cell_of_point(self, point) -> tuple[int, int, int]:
        """Integer cell coordinates of a point (clamped to the grid)."""
        point = np.asarray(point, dtype=np.float64)
        rel = (point - self.bounds.lo) / np.maximum(self.cell_extent, _EPS)
        coords = np.clip(np.floor(rel).astype(int), 0, np.asarray(self.shape) - 1)
        return tuple(int(c) for c in coords)

    def cells_of_points(self, points) -> np.ndarray:
        """Vectorized :meth:`cell_of_point` for an ``(n, 3)`` array."""
        points = np.asarray(points, dtype=np.float64)
        rel = (points - self.bounds.lo) / np.maximum(self.cell_extent, _EPS)
        return np.clip(np.floor(rel).astype(int), 0, np.asarray(self.shape) - 1)

    def flat_id(self, coords) -> int:
        cx, cy, cz = coords
        nx, ny, nz = self.shape
        if not (0 <= cx < nx and 0 <= cy < ny and 0 <= cz < nz):
            raise IndexError(f"cell {coords} outside grid of shape {self.shape}")
        return (cx * ny + cy) * nz + cz

    def flat_ids(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`flat_id` for an ``(n, 3)`` int array."""
        coords = np.asarray(coords)
        _, ny, nz = self.shape
        return (coords[:, 0] * ny + coords[:, 1]) * nz + coords[:, 2]

    def unflatten(self, flat: int) -> tuple[int, int, int]:
        nx, ny, nz = self.shape
        if not 0 <= flat < self.n_cells:
            raise IndexError(f"flat id {flat} outside grid with {self.n_cells} cells")
        cz = flat % nz
        cy = (flat // nz) % ny
        cx = flat // (ny * nz)
        return cx, cy, cz

    def cell_bounds(self, coords) -> AABB:
        ext = self.cell_extent
        lo = self.bounds.lo + np.asarray(coords, dtype=np.float64) * ext
        return AABB(lo, lo + ext)

    def cell_center(self, coords) -> np.ndarray:
        return self.cell_bounds(coords).center

    # -- rasterization ------------------------------------------------------

    def cells_of_segment(self, a, b) -> list[tuple[int, int, int]]:
        """All cells crossed by segment ``[a, b]`` (clipped to the grid).

        Uses a conservative 3D DDA: steps through cell boundaries along
        the segment, which visits every crossed cell exactly once.
        Returns an empty list for segments entirely outside the grid.
        """
        clipped = clip_segment_to_aabb(a, b, self.bounds)
        if clipped is None:
            return []
        p0, p1 = clipped
        start = self.cell_of_point(p0)
        end = self.cell_of_point(p1)
        if start == end:
            return [start]

        cells = [start]
        delta = p1 - p0
        length = np.linalg.norm(delta)
        if length < _EPS:
            return cells
        direction = delta / length
        ext = self.cell_extent

        current = np.array(start, dtype=int)
        position = p0.copy()
        travelled = 0.0
        # Walk boundary-to-boundary; bounded by the number of cells a
        # segment can cross (sum of grid shape) as a safety net.
        max_steps = int(sum(self.shape)) + 3
        for _ in range(max_steps):
            # Distance to the next cell boundary along each axis.
            t_next = np.full(3, np.inf)
            for axis in range(3):
                d = direction[axis]
                if abs(d) < _EPS:
                    continue
                if d > 0:
                    boundary = self.bounds.lo[axis] + (current[axis] + 1) * ext[axis]
                else:
                    boundary = self.bounds.lo[axis] + current[axis] * ext[axis]
                t_next[axis] = (boundary - position[axis]) / d
            axis = int(np.argmin(t_next))
            step = t_next[axis]
            if not np.isfinite(step):
                break
            travelled += step
            if travelled >= length - _EPS:
                break
            position = position + direction * (step + _EPS)
            current[axis] += 1 if direction[axis] > 0 else -1
            if np.any(current < 0) or np.any(current >= np.asarray(self.shape)):
                break
            cells.append(tuple(int(c) for c in current))
            if tuple(current) == end:
                break
        if end not in cells:
            cells.append(end)
        return cells

    def cells_of_aabb(self, box: AABB) -> list[tuple[int, int, int]]:
        """All cells overlapping ``box`` (clipped to the grid)."""
        overlap_lo = np.maximum(box.lo, self.bounds.lo)
        overlap_hi = np.minimum(box.hi, self.bounds.hi)
        if np.any(overlap_lo > overlap_hi):
            return []
        lo = self.cell_of_point(overlap_lo)
        hi = self.cell_of_point(overlap_hi)
        return [
            (cx, cy, cz)
            for cx in range(lo[0], hi[0] + 1)
            for cy in range(lo[1], hi[1] + 1)
            for cz in range(lo[2], hi[2] + 1)
        ]

    def neighbors(self, coords, include_diagonal: bool = True) -> list[tuple[int, int, int]]:
        """Adjacent cells (26-connected by default, 6-connected otherwise)."""
        cx, cy, cz = coords
        nx, ny, nz = self.shape
        result = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    if not include_diagonal and abs(dx) + abs(dy) + abs(dz) > 1:
                        continue
                    nxt = (cx + dx, cy + dy, cz + dz)
                    if 0 <= nxt[0] < nx and 0 <= nxt[1] < ny and 0 <= nxt[2] < nz:
                        result.append(nxt)
        return result
