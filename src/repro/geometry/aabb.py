"""Axis-aligned bounding boxes (AABBs).

The range queries in a guided spatial query sequence are axis-aligned
boxes (the paper uses cubes and view frusta; frusta are handled by
:mod:`repro.geometry.frustum` and conservatively enclosed in an AABB for
index lookups).  This module provides a small immutable ``AABB`` value
type plus vectorized helpers over ``(n, 3)`` corner arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["AABB", "aabbs_intersect_arrays", "union_all"]


def _as_point(value) -> np.ndarray:
    point = np.asarray(value, dtype=np.float64)
    if point.shape != (3,):
        raise ValueError(f"expected a 3D point, got shape {point.shape}")
    return point


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box given by its minimum and maximum corners.

    Degenerate boxes (zero extent along some axis) are allowed; boxes with
    ``lo > hi`` on any axis are rejected at construction time.
    """

    lo: np.ndarray = field()
    hi: np.ndarray = field()

    def __post_init__(self) -> None:
        lo = _as_point(self.lo)
        hi = _as_point(self.hi)
        if np.any(lo > hi):
            raise ValueError(f"invalid AABB: lo {lo} exceeds hi {hi}")
        lo.flags.writeable = False
        hi.flags.writeable = False
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_center_extent(cls, center, extent) -> "AABB":
        """Build a box from its center and full edge lengths."""
        center = _as_point(center)
        extent = np.broadcast_to(np.asarray(extent, dtype=np.float64), (3,))
        half = extent / 2.0
        return cls(center - half, center + half)

    @classmethod
    def cube(cls, center, volume: float) -> "AABB":
        """Build a cube of the given volume centered at ``center``.

        This mirrors the paper's workload parameterization, which states
        query sizes as volumes in cubic micrometers (e.g. 80,000 µm³).
        """
        if volume <= 0:
            raise ValueError(f"cube volume must be positive, got {volume}")
        side = float(volume) ** (1.0 / 3.0)
        return cls.from_center_extent(center, side)

    @classmethod
    def from_points(cls, points) -> "AABB":
        """The tightest box containing every point of an ``(n, 3)`` array."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
            raise ValueError(f"expected a non-empty (n, 3) array, got {points.shape}")
        return cls(points.min(axis=0), points.max(axis=0))

    # -- basic measures ---------------------------------------------------

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extent(self) -> np.ndarray:
        """Full edge lengths along x, y, z."""
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        return float(np.prod(self.extent))

    @property
    def longest_side(self) -> float:
        return float(self.extent.max())

    # -- predicates --------------------------------------------------------

    def contains_point(self, point) -> bool:
        point = _as_point(point)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def contains_points(self, points) -> np.ndarray:
        """Vectorized containment test for an ``(n, 3)`` array."""
        points = np.asarray(points, dtype=np.float64)
        return np.all((points >= self.lo) & (points <= self.hi), axis=1)

    def contains_box(self, other: "AABB") -> bool:
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "AABB") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    # -- combinators --------------------------------------------------------

    def union(self, other: "AABB") -> "AABB":
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def intersection(self, other: "AABB") -> "AABB | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return AABB(lo, hi)

    def inflate(self, margin: float) -> "AABB":
        """Grow (or, for negative margins, shrink) the box on every side."""
        margin_vec = np.full(3, float(margin))
        lo = self.lo - margin_vec
        hi = self.hi + margin_vec
        if np.any(lo > hi):
            # Shrinking past the center collapses to the center point.
            center = self.center
            return AABB(center, center)
        return AABB(lo, hi)

    def translate(self, offset) -> "AABB":
        offset = _as_point(offset)
        return AABB(self.lo + offset, self.hi + offset)

    def clamp_point(self, point) -> np.ndarray:
        """The closest point of the box to ``point``."""
        return np.clip(_as_point(point), self.lo, self.hi)

    def distance_to_point(self, point) -> float:
        """Euclidean distance from the box to a point (0 when inside)."""
        delta = _as_point(point) - self.clamp_point(point)
        return float(np.linalg.norm(delta))

    def boundary_distance(self, point) -> float:
        """Distance from an *interior* point to the nearest face.

        For exterior points this returns the (positive) distance to the
        box instead, so the value is always non-negative.
        """
        point = _as_point(point)
        if not self.contains_point(point):
            return self.distance_to_point(point)
        return float(min((point - self.lo).min(), (self.hi - point).min()))

    def corners(self) -> np.ndarray:
        """All 8 corner points as an ``(8, 3)`` array."""
        xs, ys, zs = zip(self.lo, self.hi)
        grid = np.array(np.meshgrid(xs, ys, zs, indexing="ij"), dtype=np.float64)
        return grid.reshape(3, 8).T

    def sample_point(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random point inside the box."""
        return rng.uniform(self.lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = np.array2string(self.lo, precision=2)
        hi = np.array2string(self.hi, precision=2)
        return f"AABB(lo={lo}, hi={hi})"


def aabbs_intersect_arrays(lo: np.ndarray, hi: np.ndarray, box: AABB) -> np.ndarray:
    """Vectorized box-vs-boxes overlap test.

    ``lo`` and ``hi`` are ``(n, 3)`` corner arrays of ``n`` boxes; the
    result is a boolean mask of which of them intersect ``box``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    return np.all((lo <= box.hi) & (hi >= box.lo), axis=1)


def union_all(boxes) -> AABB:
    """The tightest AABB enclosing every box of a non-empty iterable."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("union_all() needs at least one box")
    lo = np.min([b.lo for b in boxes], axis=0)
    hi = np.max([b.hi for b in boxes], axis=0)
    return AABB(lo, hi)
