"""Reproduction of SCOUT: Prefetching for Latent Structure Following Queries.

SCOUT (Tauheed et al., PVLDB 5(11), 2012) is a structure-aware prefetcher
for *guided spatial query sequences*: interactive sequences of 3D range
queries that follow a latent guiding structure (a neuron fiber, an artery,
a road).  Instead of extrapolating past query *positions*, SCOUT inspects
past query *content*: it summarizes the spatial objects of each result as
an approximate proximity graph, prunes the set of candidate structures the
user may be following across the sequence, and prefetches along the
extrapolated exit locations of the surviving candidates.

This package contains a complete, self-contained reproduction:

- :mod:`repro.geometry` -- AABB/segment/frustum/Hilbert primitives.
- :mod:`repro.storage` -- simulated page-based disk and LRU prefetch cache.
- :mod:`repro.index` -- STR bulk-loaded R-tree and a FLAT-style
  neighborhood index with ordered retrieval.
- :mod:`repro.graph` -- grid-hashing proximity-graph construction and
  region-restricted traversal.
- :mod:`repro.datagen` -- synthetic neuron tissue, arterial tree, lung
  airway mesh and road network generators with ground-truth structure.
- :mod:`repro.workload` -- guided query sequence generation and the
  paper's microbenchmark registry (Figure 10).
- :mod:`repro.core` -- the SCOUT and SCOUT-OPT prefetchers.
- :mod:`repro.baselines` -- Straight Line, Polynomial, EWMA, Velocity,
  Hilbert and Layered prefetching baselines.
- :mod:`repro.sim` -- the execution simulator implementing the paper's
  Figure-2 timeline, plus metrics and experiment helpers.

Quickstart::

    from repro import quick_experiment

    result = quick_experiment(prefetcher="scout", seed=7)
    print(result.cache_hit_rate, result.speedup)
"""

from repro.version import __version__

__all__ = ["__version__", "quick_experiment"]


def quick_experiment(*args, **kwargs):
    """Run a small end-to-end experiment; see :func:`repro.quickstart.quick_experiment`.

    Imported lazily so that ``import repro`` stays cheap for users who
    only need a sub-package.
    """
    from repro.quickstart import quick_experiment as _quick_experiment

    return _quick_experiment(*args, **kwargs)
