"""Adjacency-list graph over spatial object ids.

The graph is deliberately simple: vertices are global object ids, edges
are undirected.  SCOUT's accuracy analysis (§8.2) reports the memory of
"the graph (adjacency list) and queues used for graph traversal", which
:meth:`SpatialGraph.memory_bytes` estimates with the same structure.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["SpatialGraph"]


class SpatialGraph:
    """Undirected graph keyed by object id."""

    def __init__(self, vertices: Iterable[int] = ()) -> None:
        self._adjacency: dict[int, set[int]] = {int(v): set() for v in vertices}

    # -- construction -----------------------------------------------------------

    def add_vertex(self, vertex: int) -> None:
        """Add an isolated vertex (no-op if present)."""
        self._adjacency.setdefault(int(vertex), set())

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (self-loops are ignored)."""
        u, v = int(u), int(v)
        if u == v:
            return
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)

    def merge(self, other: "SpatialGraph") -> None:
        """Union this graph with another in place."""
        for vertex, neighbors in other._adjacency.items():
            self._adjacency.setdefault(vertex, set()).update(neighbors)

    # -- inspection ---------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def __contains__(self, vertex: int) -> bool:
        return int(vertex) in self._adjacency

    def vertices(self) -> list[int]:
        """All vertex ids (insertion order)."""
        return list(self._adjacency.keys())

    def neighbors(self, vertex: int) -> set[int]:
        """The adjacency set of ``vertex`` (a live reference)."""
        return self._adjacency[int(vertex)]

    def degree(self, vertex: int) -> int:
        """Number of neighbors of ``vertex``."""
        return len(self._adjacency[int(vertex)])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists."""
        return int(v) in self._adjacency.get(int(u), set())

    def edges(self) -> list[tuple[int, int]]:
        """All edges with ``u < v``, sorted for reproducibility."""
        result = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if u < v:
                    result.append((u, v))
        return sorted(result)

    # -- algorithms ---------------------------------------------------------------

    def connected_components(self) -> list[set[int]]:
        """Connected components via iterative DFS, largest first."""
        seen: set[int] = set()
        components: list[set[int]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            component = set()
            stack = [start]
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(self._adjacency[vertex] - component)
            seen |= component
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def component_of(self, vertex: int) -> set[int]:
        """The connected component containing ``vertex``."""
        vertex = int(vertex)
        if vertex not in self._adjacency:
            raise KeyError(f"vertex {vertex} not in graph")
        component = set()
        stack = [vertex]
        while stack:
            v = stack.pop()
            if v in component:
                continue
            component.add(v)
            stack.extend(self._adjacency[v] - component)
        return component

    def reachable_from(self, seeds: Iterable[int]) -> set[int]:
        """All vertices reachable from any of the seed vertices."""
        reached: set[int] = set()
        stack = [int(s) for s in seeds if int(s) in self._adjacency]
        while stack:
            vertex = stack.pop()
            if vertex in reached:
                continue
            reached.add(vertex)
            stack.extend(self._adjacency[vertex] - reached)
        return reached

    def subgraph(self, vertices: Iterable[int]) -> "SpatialGraph":
        """The induced subgraph on the given vertex set."""
        keep = {int(v) for v in vertices}
        result = SpatialGraph(keep & set(self._adjacency))
        for vertex in result.vertices():
            for neighbor in self._adjacency[vertex]:
                if neighbor in keep:
                    result.add_edge(vertex, neighbor)
        return result

    # -- accounting ----------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Rough footprint of the adjacency list plus traversal queues.

        8 bytes per vertex slot, 8 per directed adjacency entry, plus a
        traversal queue bounded by the vertex count -- mirroring the
        structures §8.2 accounts for.
        """
        directed_entries = sum(len(neighbors) for neighbors in self._adjacency.values())
        return 8 * self.n_vertices + 8 * directed_entries + 8 * self.n_vertices
