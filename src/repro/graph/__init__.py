"""Approximate proximity graphs over query results (paper §4.2).

SCOUT summarizes the spatial objects of each range-query result as a
graph: objects are vertices and spatially close objects are connected.
Construction uses *grid hashing* -- map each object's simplified
geometry into grid cells and connect co-located objects -- which trades
a controllable amount of precision for near-linear build time.  Meshes
with explicit adjacency skip hashing entirely.
"""

from repro.graph.spatial_graph import SpatialGraph
from repro.graph.builder import (
    GraphBuildReport,
    build_graph,
    build_graph_brute_force,
    build_graph_explicit,
    build_graph_grid_hash,
)
from repro.graph.traversal import Crossing, component_crossings, region_crossings

__all__ = [
    "Crossing",
    "GraphBuildReport",
    "SpatialGraph",
    "build_graph",
    "build_graph_brute_force",
    "build_graph_explicit",
    "build_graph_grid_hash",
    "component_crossings",
    "region_crossings",
]
