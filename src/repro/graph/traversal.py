"""Region-restricted traversal: where do structures cross a query box?

SCOUT's prediction step (§4.4) traverses the result graph depth-first
from the candidate structures to the locations where the graph *exits*
the query region, then extrapolates those exits linearly.  The geometric
primitive underneath is the :class:`Crossing`: the point where an
object's segment pierces a face of the query box, together with the
outward direction of the structure at that point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.geometry.primitives import clip_segment_to_aabb, segments_clip_intervals
from repro.util import row_norms as _row_norms
from repro.graph.spatial_graph import SpatialGraph

__all__ = [
    "Crossing",
    "component_crossings",
    "region_crossings",
    "region_crossings_grouped",
    "region_crossings_reference",
]

_EPS = 1e-9


@dataclass(frozen=True)
class Crossing:
    """A point where a structure pierces the boundary of a query region."""

    object_id: int
    point: np.ndarray
    direction: np.ndarray  # unit vector, oriented outward through the face

    def extrapolate(self, distance: float) -> np.ndarray:
        """The point ``distance`` beyond the boundary along the structure."""
        return self.point + self.direction * float(distance)


def _object_crossings(dataset: Dataset, object_id: int, region: AABB) -> list[Crossing]:
    """Crossings contributed by one object's representative segment."""
    a = dataset.p0[object_id]
    b = dataset.p1[object_id]
    clipped = clip_segment_to_aabb(a, b, region)
    if clipped is None:
        # The object's box intersects the region but its segment does
        # not (thick object near a corner): treat as no crossing.
        return []
    inside_a, inside_b = clipped
    direction = b - a
    norm = np.linalg.norm(direction)
    if norm < _EPS:
        return []
    direction = direction / norm

    crossings = []
    a_clipped = bool(np.linalg.norm(inside_a - a) > _EPS)
    b_clipped = bool(np.linalg.norm(inside_b - b) > _EPS)
    if a_clipped:
        # The segment enters the region at inside_a; travelling from the
        # region outward through that point means going against the
        # segment direction.
        crossings.append(Crossing(int(object_id), inside_a.copy(), -direction))
    if b_clipped:
        crossings.append(Crossing(int(object_id), inside_b.copy(), direction.copy()))
    return crossings


def _crossing_arrays(dataset: Dataset, object_ids: np.ndarray, region: AABB):
    """Vectorized clip of every object's segment against the region.

    Returns ``(entry_mask, exit_mask, entry_points, exit_points,
    directions)`` over the input objects.  The arithmetic mirrors the
    scalar :func:`_object_crossings` path operation for operation
    (Liang-Barsky slab clip, then endpoint-displacement tests), so the
    resulting points and directions are bit-identical to the reference.
    """
    a = dataset.p0[object_ids]
    b = dataset.p1[object_ids]
    delta = b - a
    ok, t0, t1 = segments_clip_intervals(a, b, region)

    norms = _row_norms(delta)
    ok &= norms >= _EPS
    safe_norms = np.where(norms < _EPS, 1.0, norms)
    directions = delta / safe_norms[:, None]

    inside_a = a + t0[:, None] * delta
    inside_b = a + t1[:, None] * delta
    entry_mask = ok & (_row_norms(inside_a - a) > _EPS)
    exit_mask = ok & (_row_norms(inside_b - b) > _EPS)
    return entry_mask, exit_mask, inside_a, inside_b, directions


def _crossings_from_arrays(
    object_ids: np.ndarray,
    entry_mask: np.ndarray,
    exit_mask: np.ndarray,
    entry_points: np.ndarray,
    exit_points: np.ndarray,
    directions: np.ndarray,
    rows: np.ndarray,
) -> list[Crossing]:
    """Assemble :class:`Crossing` objects for the given rows, in order."""
    crossings: list[Crossing] = []
    for i in rows:
        object_id = int(object_ids[i])
        if entry_mask[i]:
            # The segment enters the region here; travelling from the
            # region outward through that point means going against the
            # segment direction.
            crossings.append(Crossing(object_id, entry_points[i].copy(), -directions[i]))
        if exit_mask[i]:
            crossings.append(Crossing(object_id, exit_points[i].copy(), directions[i].copy()))
    return crossings


def region_crossings(
    dataset: Dataset,
    object_ids,
    region: AABB,
) -> list[Crossing]:
    """All boundary crossings of the given objects with ``region``.

    Only objects whose segments actually pierce a face contribute;
    objects fully inside produce nothing.  The segment clipping runs
    over ``(n, 3)`` endpoint arrays in one vectorized pass; only the
    (few) piercing objects materialize Python-level crossings.
    """
    object_ids = np.asarray(object_ids, dtype=np.int64)
    if len(object_ids) == 0:
        return []
    arrays = _crossing_arrays(dataset, object_ids, region)
    entry_mask, exit_mask = arrays[0], arrays[1]
    rows = np.flatnonzero(entry_mask | exit_mask)
    return _crossings_from_arrays(object_ids, *arrays, rows)


def region_crossings_grouped(
    dataset: Dataset,
    groups: list[np.ndarray],
    region: AABB,
) -> list[list[Crossing]]:
    """Per-group crossings of several object-id groups with one region.

    Equivalent to calling :func:`region_crossings` once per group, but
    the segment clipping for *all* groups (e.g. every connected
    component of a result graph) runs as a single vectorized pass.
    """
    if not groups:
        return []
    sizes = [len(g) for g in groups]
    all_ids = (
        np.concatenate([np.asarray(g, dtype=np.int64) for g in groups])
        if sum(sizes)
        else np.empty(0, dtype=np.int64)
    )
    if len(all_ids) == 0:
        return [[] for _ in groups]
    arrays = _crossing_arrays(dataset, all_ids, region)
    entry_mask, exit_mask = arrays[0], arrays[1]
    hits = entry_mask | exit_mask

    out: list[list[Crossing]] = []
    offset = 0
    for size in sizes:
        rows = offset + np.flatnonzero(hits[offset : offset + size])
        out.append(_crossings_from_arrays(all_ids, *arrays, rows))
        offset += size
    return out


def region_crossings_reference(
    dataset: Dataset,
    object_ids,
    region: AABB,
) -> list[Crossing]:
    """Scalar per-object reference implementation of :func:`region_crossings`.

    Kept as the equivalence oracle (the vectorized path must match it
    bit for bit) and as the pre-change baseline for ``scout-repro
    bench``'s prediction-cost timings.
    """
    crossings: list[Crossing] = []
    for object_id in np.asarray(object_ids, dtype=np.int64):
        crossings.extend(_object_crossings(dataset, int(object_id), region))
    return crossings


def refine_crossing_direction(
    dataset: Dataset,
    component_ids: np.ndarray,
    crossing: Crossing,
    radius: float,
) -> Crossing:
    """Smooth a crossing's direction over the structure's trailing window.

    A single short segment is a noisy estimate of where the structure is
    heading; averaging the (sign-aligned) directions of the component's
    objects within ``radius`` of the crossing point gives the local
    trend of the fiber, which is what §4.4's linear extrapolation of the
    *graph* should follow.
    """
    component_ids = np.asarray(component_ids, dtype=np.int64)
    p0 = dataset.p0[component_ids]
    p1 = dataset.p1[component_ids]
    mid = (p0 + p1) / 2.0
    near = np.linalg.norm(mid - crossing.point, axis=1) <= radius
    n_near = int(near.sum())
    if n_near == 0:
        return crossing

    if n_near >= 3:
        # Principal axis of the nearby object midpoints.  This tracks
        # the *structure's* local axis even when individual object
        # orientations are uninformative (e.g. mesh-face edges point
        # around a tube's rings, not along the airway).
        points = mid[near]
        centered = points - points.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        axis = vt[0]
        if float(axis @ crossing.direction) < 0:
            axis = -axis
        norm = np.linalg.norm(axis)
        if norm > _EPS:
            return Crossing(crossing.object_id, crossing.point, axis / norm)

    # Too few neighbors for a stable axis: average the sign-aligned
    # object directions instead.
    deltas = p1[near] - p0[near]
    norms = np.linalg.norm(deltas, axis=1)
    ok = norms > _EPS
    if not np.any(ok):
        return crossing
    directions = deltas[ok] / norms[ok, None]
    alignment = directions @ crossing.direction
    directions = directions * np.where(alignment >= 0, 1.0, -1.0)[:, None]
    mean = directions.mean(axis=0)
    norm = np.linalg.norm(mean)
    if norm < _EPS:
        return crossing
    return Crossing(crossing.object_id, crossing.point, mean / norm)


def component_crossings(
    dataset: Dataset,
    graph: SpatialGraph,
    region: AABB,
) -> dict[int, list[Crossing]]:
    """Boundary crossings grouped by connected component.

    Returns ``{component_index: crossings}`` where component indices
    refer to :meth:`SpatialGraph.connected_components` order (largest
    component first).  Components with no crossing (structures entirely
    inside the query) are included with an empty list, because they are
    still structures the user *might* be following into the next query
    via a part outside the current result.
    """
    groups = [
        np.fromiter(component, dtype=np.int64)
        for component in graph.connected_components()
    ]
    grouped = region_crossings_grouped(dataset, groups, region)
    return dict(enumerate(grouped))
