"""Proximity-graph construction (paper §4.2).

Three builders, matching the paper:

- :func:`build_graph_grid_hash` -- the production path: partition the
  query region into equi-volume grid cells, map each object's simplified
  geometry (a line segment for cylinders, both paper §7.1 and here) into
  the cells it crosses, and connect objects sharing a cell.  Resolution
  is the precision knob studied in Fig 13e.
- :func:`build_graph_brute_force` -- the O(n²) reference the paper
  compares grid hashing against; connects objects whose segments pass
  within a distance threshold.
- :func:`build_graph_explicit` -- for datasets with an underlying graph
  (polygon meshes): restrict the dataset's explicit adjacency to the
  result set, no geometry needed.

:func:`build_graph` picks the right builder for a dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.datagen.dataset import Dataset
from repro.geometry.aabb import AABB
from repro.geometry.grid import UniformGrid
from repro.geometry.primitives import segment_segment_distance
from repro.graph.spatial_graph import SpatialGraph

__all__ = [
    "GraphBuildReport",
    "build_graph",
    "build_graph_brute_force",
    "build_graph_explicit",
    "build_graph_grid_hash",
    "DEFAULT_GRID_RESOLUTION",
]

#: Default number of grid cells per query region.  The paper's Fig 13e
#: shows accuracy is stable from 32768 down to 512 cells; the default
#: sits in that plateau ("our strategy is to use a fine resolution").
DEFAULT_GRID_RESOLUTION = 4096


@dataclass
class GraphBuildReport:
    """The built graph plus cost accounting for the simulator.

    ``work_units`` counts cell insertions plus pairwise connections --
    the quantity the simulated CPU-cost model converts into seconds --
    and ``wall_seconds`` is the measured Python-side build time (used by
    the Fig 15 bench).
    """

    graph: SpatialGraph
    work_units: int
    wall_seconds: float
    resolution: int


def _sample_segment_cells(
    grid: UniformGrid,
    object_ids: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
) -> dict[int, list[int]]:
    """Map each object's segment into the grid cells it touches.

    Rasterization samples points along each segment densely enough that
    no crossed cell can be skipped (spacing < half the smallest cell
    edge), then deduplicates (object, cell) pairs -- a vectorized,
    conservative stand-in for per-segment DDA that processes thousands
    of objects per query without Python-level loops.  The exact DDA
    (:meth:`UniformGrid.cells_of_segment`) remains the test oracle.
    """
    lengths = np.linalg.norm(p1 - p0, axis=1)
    min_cell_edge = float(grid.cell_extent.min())
    spacing = max(min_cell_edge * 0.45, 1e-9)
    n_samples = np.minimum(np.ceil(lengths / spacing).astype(int) + 1, 64)

    point_chunks = []
    owner_chunks = []
    for count in np.unique(n_samples):
        members = np.flatnonzero(n_samples == count)
        ts = np.linspace(0.0, 1.0, int(count))
        # (m, count, 3) sample points for all segments needing `count` samples.
        pts = p0[members][:, None, :] + ts[None, :, None] * (p1[members] - p0[members])[:, None, :]
        point_chunks.append(pts.reshape(-1, 3))
        owner_chunks.append(np.repeat(object_ids[members], int(count)))
    points = np.concatenate(point_chunks)
    owners = np.concatenate(owner_chunks)

    cells = grid.cells_of_points(points)
    flat = grid.flat_ids(cells)
    pair_key = owners * np.int64(grid.n_cells) + flat
    _, unique_idx = np.unique(pair_key, return_index=True)

    buckets: dict[int, list[int]] = {}
    for idx in unique_idx:
        buckets.setdefault(int(flat[idx]), []).append(int(owners[idx]))
    return buckets


def build_graph_grid_hash(
    dataset: Dataset,
    object_ids: np.ndarray,
    region: AABB,
    resolution: int = DEFAULT_GRID_RESOLUTION,
) -> GraphBuildReport:
    """Grid-hashing construction over the result objects of one query."""
    started = time.perf_counter()
    object_ids = np.asarray(object_ids, dtype=np.int64)
    graph = SpatialGraph(object_ids)
    work = 0

    if len(object_ids):
        grid = UniformGrid.with_cell_count(region, max(1, int(resolution)))
        buckets = _sample_segment_cells(
            grid, object_ids, dataset.p0[object_ids], dataset.p1[object_ids]
        )
        work += sum(len(members) for members in buckets.values())
        for members in buckets.values():
            # Pairwise connection of co-located objects; the cost of
            # coarse resolutions (big buckets) is quadratic, exactly the
            # §4.2 trade-off.
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    graph.add_edge(members[i], members[j])
            work += len(members) * (len(members) - 1) // 2

    return GraphBuildReport(
        graph=graph,
        work_units=work,
        wall_seconds=time.perf_counter() - started,
        resolution=int(resolution),
    )


def build_graph_brute_force(
    dataset: Dataset,
    object_ids: np.ndarray,
    distance_threshold: float,
) -> GraphBuildReport:
    """O(n²) reference builder: connect segments within a distance."""
    started = time.perf_counter()
    object_ids = np.asarray(object_ids, dtype=np.int64)
    graph = SpatialGraph(object_ids)
    n = len(object_ids)
    work = n * (n - 1) // 2
    for i in range(n):
        oi = int(object_ids[i])
        for j in range(i + 1, n):
            oj = int(object_ids[j])
            distance = segment_segment_distance(
                dataset.p0[oi], dataset.p1[oi], dataset.p0[oj], dataset.p1[oj]
            )
            if distance <= distance_threshold:
                graph.add_edge(oi, oj)
    return GraphBuildReport(
        graph=graph,
        work_units=work,
        wall_seconds=time.perf_counter() - started,
        resolution=0,
    )


def build_graph_explicit(dataset: Dataset, object_ids: np.ndarray) -> GraphBuildReport:
    """Restrict the dataset's explicit adjacency to the result objects."""
    if dataset.explicit_edges is None:
        raise ValueError(f"dataset {dataset.name!r} has no explicit adjacency")
    started = time.perf_counter()
    object_ids = np.asarray(object_ids, dtype=np.int64)
    graph = SpatialGraph(object_ids)
    members = set(object_ids.tolist())
    edges = dataset.explicit_edges
    # Only scan edges touching the result set; a mask keeps it vectorized.
    mask = np.isin(edges[:, 0], object_ids) & np.isin(edges[:, 1], object_ids)
    selected = edges[mask]
    for u, v in selected:
        if int(u) in members and int(v) in members:
            graph.add_edge(int(u), int(v))
    return GraphBuildReport(
        graph=graph,
        work_units=int(mask.sum()) + len(object_ids),
        wall_seconds=time.perf_counter() - started,
        resolution=0,
    )


def build_graph(
    dataset: Dataset,
    object_ids: np.ndarray,
    region: AABB,
    resolution: int = DEFAULT_GRID_RESOLUTION,
) -> GraphBuildReport:
    """Build the result graph the way SCOUT would for this dataset.

    Datasets with explicit adjacency (meshes) use it directly (§4.2);
    everything else goes through grid hashing.
    """
    if dataset.explicit_edges is not None:
        return build_graph_explicit(dataset, object_ids)
    return build_graph_grid_hash(dataset, object_ids, region, resolution)
