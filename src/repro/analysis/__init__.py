"""Result reporting: ASCII tables and paper-vs-measured records."""

from repro.analysis.tables import ResultTable, format_row, paper_reference, sweep_table

__all__ = ["ResultTable", "format_row", "paper_reference", "sweep_table"]
