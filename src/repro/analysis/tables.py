"""ASCII result tables printed by the figure benchmarks.

Every benchmark regenerating a paper table/figure prints one
:class:`ResultTable` whose rows mirror the paper's series, plus the
paper's reported range where the paper gives one, so a reader can
eyeball paper-vs-measured without opening the PDF.

:func:`sweep_table` builds the same tables from *persisted* sweep
results (:class:`repro.sim.CellResult` records out of a
:class:`repro.sim.ResultStore`), so figures can be re-rendered from a
store file without re-simulating a single cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["ResultTable", "format_row", "paper_reference", "sweep_table"]

#: Shape expectations lifted from the paper's text, keyed by figure id.
#: Values are prose, not numbers to assert on -- the harness reproduces
#: *shapes*, not testbed-specific absolutes (see DESIGN.md §4).
_PAPER_NOTES: dict[str, str] = {
    "fig3": "Best baseline (EWMA 0.3) <= 44%; accuracy drops as query volume grows.",
    "fig10sweep": "SCOUT across the Fig-10 registry: visualization rows highest, ad-hoc lowest.",
    "fig11a": "SCOUT wins every no-gap microbenchmark, exceeding 90% on some; ad-hoc lowest.",
    "fig11b": "Speedups correlate with accuracy; SCOUT up to ~15x.",
    "fig12": "With gaps SCOUT only slightly beats trajectory methods; SCOUT-OPT is clearly best.",
    "fig13a": "Accuracy decreases gradually with query volume (speedup 9 -> 4.5).",
    "fig13b": "Accuracy roughly flat (~80%) as density grows; speedup constant.",
    "fig13c": "Longer sequences improve accuracy, reaching ~93% at 55 queries.",
    "fig13d": "Accuracy rises from ~29% (ratio 0.1) to ~88% (ratio 2.5).",
    "fig13e": "Good accuracy down to 512 grid cells, then a substantial drop.",
    "fig13f": "Accuracy falls with gap distance; SCOUT-OPT well above SCOUT.",
    "fig14": "Graph building ~15% of response time, prediction <= 6%, rest residual I/O.",
    "fig15": "Graph building linear in result size; SCOUT-OPT scales better than SCOUT.",
    "fig16": "Prediction time per result element decreases along the sequence.",
    "fig17a": "Small queries: SCOUT best on lung/roads; EWMA (96%) beats SCOUT (90%) on arterial.",
    "fig17b": "Large queries: SCOUT best on all three datasets (up to ~73%).",
    "mem": "Prediction structures ~24% of result footprint for SCOUT, ~6% for SCOUT-OPT.",
    "clients": "Extension beyond the paper: per-client accuracy should hold while the "
    "shared cache has headroom, then degrade as client count x working set outgrows it.",
}


def paper_reference(figure_id: str) -> str:
    """The paper's reported shape for a figure (empty if unlisted)."""
    return _PAPER_NOTES.get(figure_id, "")


def format_row(label: str, values, width: int = 9, precision: int = 1) -> str:
    """One fixed-width table row: a label column plus numeric cells."""
    cells = []
    for value in values:
        if value is None:
            cells.append(" " * width)
        elif isinstance(value, str):
            cells.append(value.rjust(width))
        else:
            cells.append(f"{value:{width}.{precision}f}")
    return f"{label:<28s}" + "".join(cells)


@dataclass
class ResultTable:
    """A labelled grid of results with column headers."""

    title: str
    columns: list[str]
    figure_id: str = ""
    rows: list[tuple[str, list]] = field(default_factory=list)
    precision: int = 1

    def add_row(self, label: str, values) -> None:
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append((label, values))

    def render(self) -> str:
        width = max(9, max((len(c) for c in self.columns), default=9) + 1)
        lines = [f"== {self.title} =="]
        note = paper_reference(self.figure_id)
        if note:
            lines.append(f"paper: {note}")
        lines.append(format_row("", self.columns, width=width))
        for label, values in self.rows:
            lines.append(format_row(label, values, width=width, precision=self.precision))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())

    def cell(self, row_label: str, column: str):
        """Look up one value (for assertions in the bench tests)."""
        column_index = self.columns.index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[column_index]
        raise KeyError(f"no row {row_label!r} in table {self.title!r}")

    def row_values(self, row_label: str) -> list:
        """All cells of one row, in column order."""
        for label, values in self.rows:
            if label == row_label:
                return list(values)
        raise KeyError(f"no row {row_label!r} in table {self.title!r}")


def sweep_table(
    title: str,
    results: Iterable,
    column_of: Callable[[Any], Any],
    row_of: Callable[[Any], str],
    value_of: Callable[[Any], Any],
    figure_id: str = "",
    precision: int = 1,
) -> ResultTable:
    """Pivot stored sweep results into a :class:`ResultTable`.

    ``results`` is any iterable of result records (typically
    :class:`repro.sim.CellResult` objects loaded from a store).
    ``column_of`` extracts the x-axis value, ``row_of`` the series label
    and ``value_of`` the plotted number.  Columns and rows keep first-
    appearance order so a matrix's axis ordering survives the round trip
    through the store; cells absent from ``results`` render blank.
    """
    results = list(results)
    columns: list[Any] = []
    row_labels: list[str] = []
    grid: dict[tuple[str, Any], Any] = {}
    for result in results:
        column = column_of(result)
        row = row_of(result)
        if column not in columns:
            columns.append(column)
        if row not in row_labels:
            row_labels.append(row)
        grid[(row, column)] = value_of(result)

    table = ResultTable(
        title,
        [c if isinstance(c, str) else f"{c:g}" for c in columns],
        figure_id=figure_id,
        precision=precision,
    )
    for row in row_labels:
        table.add_row(row, [grid.get((row, column)) for column in columns])
    return table
