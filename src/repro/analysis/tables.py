"""ASCII result tables printed by the figure benchmarks.

Every benchmark regenerating a paper table/figure prints one
:class:`ResultTable` whose rows mirror the paper's series, plus the
paper's reported range where the paper gives one, so a reader can
eyeball paper-vs-measured without opening the PDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResultTable", "format_row", "paper_reference"]

#: Shape expectations lifted from the paper's text, keyed by figure id.
#: Values are prose, not numbers to assert on -- the harness reproduces
#: *shapes*, not testbed-specific absolutes (see DESIGN.md §4).
_PAPER_NOTES: dict[str, str] = {
    "fig3": "Best baseline (EWMA 0.3) <= 44%; accuracy drops as query volume grows.",
    "fig11a": "SCOUT wins every no-gap microbenchmark, exceeding 90% on some; ad-hoc lowest.",
    "fig11b": "Speedups correlate with accuracy; SCOUT up to ~15x.",
    "fig12": "With gaps SCOUT only slightly beats trajectory methods; SCOUT-OPT is clearly best.",
    "fig13a": "Accuracy decreases gradually with query volume (speedup 9 -> 4.5).",
    "fig13b": "Accuracy roughly flat (~80%) as density grows; speedup constant.",
    "fig13c": "Longer sequences improve accuracy, reaching ~93% at 55 queries.",
    "fig13d": "Accuracy rises from ~29% (ratio 0.1) to ~88% (ratio 2.5).",
    "fig13e": "Good accuracy down to 512 grid cells, then a substantial drop.",
    "fig13f": "Accuracy falls with gap distance; SCOUT-OPT well above SCOUT.",
    "fig14": "Graph building ~15% of response time, prediction <= 6%, rest residual I/O.",
    "fig15": "Graph building linear in result size; SCOUT-OPT scales better than SCOUT.",
    "fig16": "Prediction time per result element decreases along the sequence.",
    "fig17a": "Small queries: SCOUT best on lung/roads; EWMA (96%) beats SCOUT (90%) on arterial.",
    "fig17b": "Large queries: SCOUT best on all three datasets (up to ~73%).",
    "mem": "Prediction structures ~24% of result footprint for SCOUT, ~6% for SCOUT-OPT.",
}


def paper_reference(figure_id: str) -> str:
    """The paper's reported shape for a figure (empty if unlisted)."""
    return _PAPER_NOTES.get(figure_id, "")


def format_row(label: str, values, width: int = 9, precision: int = 1) -> str:
    """One fixed-width table row: a label column plus numeric cells."""
    cells = []
    for value in values:
        if value is None:
            cells.append(" " * width)
        elif isinstance(value, str):
            cells.append(value.rjust(width))
        else:
            cells.append(f"{value:{width}.{precision}f}")
    return f"{label:<28s}" + "".join(cells)


@dataclass
class ResultTable:
    """A labelled grid of results with column headers."""

    title: str
    columns: list[str]
    figure_id: str = ""
    rows: list[tuple[str, list]] = field(default_factory=list)
    precision: int = 1

    def add_row(self, label: str, values) -> None:
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append((label, values))

    def render(self) -> str:
        width = max(9, max((len(c) for c in self.columns), default=9) + 1)
        lines = [f"== {self.title} =="]
        note = paper_reference(self.figure_id)
        if note:
            lines.append(f"paper: {note}")
        lines.append(format_row("", self.columns, width=width))
        for label, values in self.rows:
            lines.append(format_row(label, values, width=width, precision=self.precision))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())

    def cell(self, row_label: str, column: str):
        """Look up one value (for assertions in the bench tests)."""
        column_index = self.columns.index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[column_index]
        raise KeyError(f"no row {row_label!r} in table {self.title!r}")
