"""Command-line entry point: experiment cells, parallel sweeps, benchmarks.

Seven forms::

    scout-repro [run] --prefetcher scout --benchmark adhoc_stat
    scout-repro sweep --figure 11 --jobs 4 --out results/fig11.jsonl
    scout-repro merge --out results/fig11.jsonl results/fig11.shard*.jsonl
    scout-repro compact results/fig11.jsonl
    scout-repro bench --quick --budget benchmarks/perf/budget.json
    scout-repro serve --port 8641 --report /tmp/serve-report.json
    scout-repro loadgen --port 8641 --requests 200 --rate 400 --seed 42

``run`` (the default when no subcommand is given, for backward
compatibility) executes one experiment cell on synthetic neuron tissue
and prints its headline numbers.

``sweep`` expands an evaluation grid -- ``--figure 10|11|12`` for the
microbenchmark grids, ``--figure 13`` (the default) with ``--panels``
for the sensitivity panels, ``--figure 17`` with ``--panels a,b`` for
the cross-domain applicability grid (lung/arterial/roads datasets),
``--figure clients`` for the multi-client serving grid (``--clients``
counts x prefetchers x ``--cache-pages`` shared-cache sizes, optionally
under ``--contention hotspot``), ``--figure chaos`` for the
fault-injection serving grid (fault rate x prefetcher x circuit
breaker on/off over a seeded faulty disk), ``--figure tiers`` for the
tiered-storage serving grid (prefetcher x miss-path mechanism x tier
size over a :class:`~repro.storage.tiered.TieredStore`), ``--figure
shards`` for the sharded-cache serving grid (clients x shard count x
partition scheme x prefetcher over a
:class:`~repro.storage.sharded.ShardedCache`) -- into experiment cells,
fans them out over ``--jobs`` worker processes,
persists every finished cell to a JSON-lines store keyed by the cell
spec's content hash, and renders figure tables from the stored results.
Re-runs against the same ``--out`` file resume: successful cells in the
store are skipped (disable with ``--no-resume``); corrupt or stale
store lines are dropped and recomputed.  Fault tolerance: ``--timeout``
bounds each cell attempt's wall-clock seconds and ``--retries`` grants
extra attempts; a cell that still fails is recorded as a ``status:
failed|timeout`` envelope and the sweep carries on; a worker that dies
hard breaks the process pool, which is respawned with the in-flight
cells re-enqueued (counted as ``pool-crashes`` in the summary).
``--shard i/n`` restricts the run to the slice of cells whose spec-hash
lands in shard ``i`` of ``n``, writing ``<out-stem>.shardIofN.jsonl``
so independent hosts or CI jobs can sweep disjoint slices; ``merge``
unions shard stores back into one file.  ``--profile`` wraps every
computed cell in cProfile and dumps per-cell ``.prof`` files next to
the result store.

``compact`` rewrites result stores in place (atomic replace), dropping
corrupt, stale and superseded lines accumulated by long resumed sweeps
and reporting the bytes reclaimed.

``bench`` times the index/prediction hot paths against their scalar
reference implementations and writes ``BENCH_<rev>.json`` (see
ROADMAP.md, "Performance tracking"); with ``--budget`` it exits
non-zero when throughput regresses past the checked-in floors.

``serve`` boots the open-loop asyncio serving daemon (DESIGN.md §8):
client connections speak a length-prefixed JSON protocol, each runs a
resumable :class:`~repro.sim.engine.QuerySession` against one shared
cache and disk, and the daemon reports p50/p99/p999 latency, throughput
and queue depth per interval, shedding load past ``--max-queue``.
``loadgen`` drives it with seeded open-loop Poisson or bursty arrivals
and writes the client-side latency report (``--shutdown`` drains the
daemon gracefully afterwards).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.quickstart import quick_experiment
from repro.sim.serve import LOCKSTEP_ENV
from repro.storage.sharded import PARTITIONS
from repro.storage.tiered import MISS_PATHS, STORAGE_BACKENDS
from repro.workload import MICROBENCHMARKS

__all__ = ["main"]

_PREFETCHERS = ["scout", "scout-opt", "ewma", "straight-line", "hilbert", "none"]


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro",
        description="Run a SCOUT-reproduction experiment cell on synthetic neuron tissue.",
    )
    parser.add_argument("--prefetcher", choices=_PREFETCHERS, default="scout")
    parser.add_argument(
        "--benchmark",
        choices=sorted(MICROBENCHMARKS),
        default="adhoc_stat",
        help="Figure-10 microbenchmark to run",
    )
    parser.add_argument("--neurons", type=int, default=40, help="tissue size in neurons")
    parser.add_argument("--sequences", type=int, default=5, help="query sequences to run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    return parser


def _run_command(argv: list[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    if args.list:
        for name, spec in MICROBENCHMARKS.items():
            print(
                f"{name:16s} {spec.label:42s} queries={spec.n_queries:3d} "
                f"volume={spec.volume:9.0f} gap={spec.gap:4.1f} ratio={spec.window_ratio:.1f}"
            )
        return 0

    result = quick_experiment(
        prefetcher=args.prefetcher,
        benchmark=args.benchmark,
        n_neurons=args.neurons,
        n_sequences=args.sequences,
        seed=args.seed,
    )
    print(f"prefetcher      : {result.prefetcher_name}")
    print(f"benchmark       : {args.benchmark}")
    print(f"sequences       : {result.metrics.n_sequences}")
    print(f"cache hit rate  : {100 * result.cache_hit_rate:.1f}%")
    print(f"speedup         : {result.speedup:.2f}x vs no prefetching")
    return 0


def _parse_shard(value: str) -> tuple[int, int]:
    """Parse ``i/n`` into a validated (shard_index, n_shards) pair."""
    try:
        index_text, _, count_text = value.partition("/")
        shard_index, n_shards = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like i/n (e.g. 0/2), got {value!r}"
        ) from None
    if n_shards < 1 or not 0 <= shard_index < n_shards:
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, n_shards), got {value!r}"
        )
    return shard_index, n_shards


def _parse_figure(value: str):
    """``--figure`` value: a figure number, or a named grid."""
    if value in ("clients", "chaos", "tiers", "shards"):
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"figure must be 10|11|12|13|17|clients|chaos|tiers|shards, got {value!r}"
        ) from None


def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro sweep",
        description="Run an evaluation grid (paper Figs 10-13/17, or the "
        "multi-client serving grid) as a parallel, fault-tolerant, "
        "resumable experiment sweep.",
    )
    parser.add_argument(
        "--figure",
        type=_parse_figure,
        choices=[10, 11, 12, 13, 17, "clients", "chaos", "tiers", "shards"],
        default=13,
        help="which evaluation grid to sweep: the Fig-10 microbenchmark "
        "registry, the Fig-11 no-gap or Fig-12 with-gap comparison grids, "
        "the Fig-13 sensitivity panels (default), the Fig-17 "
        "cross-domain applicability grid (lung/arterial/roads), the "
        "'clients' grid (N concurrent sessions over one shared cache), "
        "the 'chaos' grid (serving under an injected-fault disk: "
        "fault rate x prefetcher x circuit breaker on/off), the "
        "'tiers' grid (serving over a tiered store: prefetcher x "
        "miss-path mechanism x tier size), or the 'shards' grid "
        "(serving over a partitioned cache: clients x shard count x "
        "partition scheme x prefetcher)",
    )
    parser.add_argument(
        "--panels",
        default=None,
        help="comma-separated panel letters (--figure 13: a-f, default all "
        "six; --figure 17: a=small queries, b=large queries, default both)",
    )
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated Fig-17 dataset kinds restricting the grid "
        "(lung, arterial, roads; default: all three; --figure 17 only)",
    )
    parser.add_argument(
        "--benches",
        default=None,
        help="comma-separated microbenchmark names restricting a Fig-10/11/12 "
        "grid (default: every row of the figure)",
    )
    parser.add_argument(
        "--clients",
        default=None,
        help="comma-separated concurrent-client counts restricting the "
        "serving grid (default 1,2,4,8,16; --figure clients only)",
    )
    parser.add_argument(
        "--cache-pages",
        default=None,
        help="comma-separated shared-cache sizes in pages ('auto' for the "
        "engine's default sizing; default auto,128; --figure clients only)",
    )
    parser.add_argument(
        "--contention",
        choices=["independent", "hotspot"],
        default="independent",
        help="serving workload regime: independent walks per client, or "
        "Zipf-skewed hot-region sharing (--figure clients only)",
    )
    parser.add_argument(
        "--lockstep",
        action="store_true",
        help="serve each cell's clients with the vectorized lockstep "
        "scheduler (bit-identical metrics, much faster for large "
        "fleets; --figure clients only)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--out",
        default=None,
        help="JSON-lines result store (appended; enables resume; default "
        "results/fig<figure>_sweep.jsonl)",
    )
    parser.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="run only the cells whose spec-hash lands in shard I of N, "
        "writing <out-stem>.shardIofN.jsonl (merge slices with "
        "'scout-repro merge')",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt; an exceeded cell is "
        "retried, then recorded as status=timeout",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts granted to a crashing or timed-out cell "
        "before recording a failure envelope (default: 1)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every cell even when the store already has it",
    )
    parser.add_argument(
        "--neurons",
        type=int,
        default=None,
        help="tissue size in neurons (panel b rescales its density axis around this)",
    )
    parser.add_argument("--sequences", type=int, default=None, help="sequences per cell")
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (default: the figure number's paper seed -- "
        "13 for Fig 13, 17 for Fig 17, 11/11/12 for Figs 10/11/12, "
        "21 for the clients grid)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="truncate each panel axis to its first N tick values",
    )
    parser.add_argument(
        "--list-cells",
        action="store_true",
        help="print the cell grid (spec key + axis point) and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each computed cell under cProfile; dump per-cell .prof "
        "files into <out>.profiles/ next to the result store",
    )
    return parser


def _prefetcher_label(result) -> str:
    """Table row label for a cell: kind, plus lambda for EWMA variants."""
    prefetcher = result.spec["prefetcher"]
    lam = prefetcher["params"].get("lam")
    if prefetcher["kind"] == "ewma" and lam is not None:
        return f"ewma-{lam:g}"
    return prefetcher["kind"]


def _fig13_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import FIG13_PANELS, fig13_axes, fig13_matrix

    panel_arg = "a,b,c,d,e,f" if args.panels is None else args.panels
    panels = [p.strip() for p in panel_arg.split(",") if p.strip()]
    if not panels:
        parser.error("--panels must name at least one Fig-13 panel")
    unknown = [p for p in panels if p not in FIG13_PANELS]
    if unknown:
        print(f"unknown panel(s): {', '.join(unknown)} (expected {', '.join(FIG13_PANELS)})")
        return None

    axes = fig13_axes()
    grids = []  # (panel, cells) in panel order
    for panel in panels:
        axis_key, _ = FIG13_PANELS[panel]
        axis = axes[axis_key]
        if args.points is not None:
            axis = axis[: max(1, args.points)]
        if panel == "b" and args.neurons is not None:
            # Panel b's axis IS the neuron count; rescale it around the
            # requested size so --neurons shrinks this panel too instead
            # of being silently ignored.
            from repro.workload.sweeps import SENSITIVITY_DEFAULTS

            ratio = args.neurons / SENSITIVITY_DEFAULTS.n_neurons
            axis = [max(2, int(round(n * ratio))) for n in axis]
        matrix = fig13_matrix(
            panel,
            n_neurons=args.neurons,
            n_sequences=args.sequences,
            workload_seed=13 if args.seed is None else args.seed,
            axis=axis,
        )
        grids.append((panel, matrix.cells()))
    return grids


def _fig17_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import FIG17_DATASET_PARAMS, FIG17_PANELS, fig17_matrix

    panel_arg = "a,b" if args.panels is None else args.panels
    panels = [p.strip() for p in panel_arg.split(",") if p.strip()]
    if not panels:
        parser.error("--panels must name at least one Fig-17 panel")
    unknown = [p for p in panels if p not in FIG17_PANELS]
    if unknown:
        print(f"unknown panel(s): {', '.join(unknown)} (expected {', '.join(FIG17_PANELS)})")
        return None

    datasets = None
    if args.datasets is not None:
        kinds = [d.strip() for d in args.datasets.split(",") if d.strip()]
        bad = [k for k in kinds if k not in FIG17_DATASET_PARAMS]
        if bad or not kinds:
            known = ", ".join(FIG17_DATASET_PARAMS)
            print(f"unknown dataset(s): {', '.join(bad) or '(none)'} (expected {known})")
            return None
        datasets = {kind: FIG17_DATASET_PARAMS[kind] for kind in kinds}

    return [
        (
            panel,
            fig17_matrix(
                panel,
                datasets=datasets,
                n_sequences=args.sequences,
                workload_seed=17 if args.seed is None else args.seed,
            ),
        )
        for panel in panels
    ]


def _render_fig17_tables(grids, results) -> None:
    from repro.workload.sweeps import FIG17_PANELS, fig17_dataset_of

    _render_panel_tables(
        grids,
        results,
        figure=17,
        titles=FIG17_PANELS,
        column_of_for=lambda panel: lambda r: fig17_dataset_of(r.spec),
        row_of=_prefetcher_label,
    )


def _clients_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import SERVE_CACHE_PAGES, SERVE_CLIENTS, clients_matrix

    clients = list(SERVE_CLIENTS)
    if args.clients is not None:
        try:
            clients = [int(c) for c in args.clients.split(",") if c.strip()]
        except ValueError:
            parser.error(f"--clients must be comma-separated ints, got {args.clients!r}")
        if not clients or any(c < 1 for c in clients):
            parser.error(f"--clients counts must be >= 1, got {args.clients!r}")

    cache_sizes: list = list(SERVE_CACHE_PAGES)
    if args.cache_pages is not None:
        cache_sizes = []
        for item in args.cache_pages.split(","):
            item = item.strip()
            if not item:
                continue
            if item == "auto":
                cache_sizes.append(None)
                continue
            try:
                pages = int(item)
            except ValueError:
                parser.error(
                    f"--cache-pages entries must be ints or 'auto', got {item!r}"
                )
            if pages < 1:
                parser.error(f"--cache-pages sizes must be >= 1, got {item!r}")
            cache_sizes.append(pages)
        if not cache_sizes:
            parser.error("--cache-pages must name at least one size")

    kwargs = {}
    if args.neurons is not None:
        kwargs["n_neurons"] = args.neurons
    # One grid group per shared-cache size, so each renders as one table.
    return [
        (
            "auto" if capacity is None else f"{capacity} pages",
            clients_matrix(
                clients=clients,
                cache_pages=(capacity,),
                mode=args.contention,
                workload_seed=21 if args.seed is None else args.seed,
                **kwargs,
            ),
        )
        for capacity in cache_sizes
    ]


def _render_clients_tables(grids, results) -> None:
    from repro.analysis import sweep_table
    from repro.workload.sweeps import serve_clients_of

    offset = 0
    for label, cells in grids:
        panel_results = [r for r in results[offset : offset + len(cells)] if r.ok]
        offset += len(cells)
        hit = sweep_table(
            f"Serving sweep -- shared cache {label} -- aggregate hit rate [%]",
            panel_results,
            column_of=lambda r: serve_clients_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id="clients",
        )
        spread = sweep_table(
            f"Serving sweep -- shared cache {label} -- per-client hit-rate std [%]",
            panel_results,
            column_of=lambda r: serve_clients_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: 100.0 * r.metrics.hit_rate_std,
        )
        print()
        print(hit.render())
        print()
        print(spread.render())


def _chaos_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import chaos_matrix

    kwargs = {}
    if args.neurons is not None:
        kwargs["n_neurons"] = args.neurons
    # One grid group per breaker setting, so each renders as one table.
    return [
        (
            f"breaker {'on' if breaker else 'off'}",
            chaos_matrix(
                breakers=(breaker,),
                workload_seed=21 if args.seed is None else args.seed,
                **kwargs,
            ),
        )
        for breaker in (True, False)
    ]


def _render_chaos_tables(grids, results) -> None:
    from repro.analysis import sweep_table
    from repro.workload.sweeps import chaos_rate_of

    offset = 0
    for label, cells in grids:
        panel_results = [r for r in results[offset : offset + len(cells)] if r.ok]
        offset += len(cells)
        hit = sweep_table(
            f"Chaos sweep -- {label} -- aggregate hit rate [%]",
            panel_results,
            column_of=lambda r: chaos_rate_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id="chaos",
        )
        degraded = sweep_table(
            f"Chaos sweep -- {label} -- degraded queries (demand paging)",
            panel_results,
            column_of=lambda r: chaos_rate_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: r.metrics.degraded_ticks or 0,
            precision=0,
        )
        print()
        print(hit.render())
        print()
        print(degraded.render())


def _tiers_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import TIER_SIZES, tiers_matrix

    kwargs = {}
    if args.neurons is not None:
        kwargs["n_neurons"] = args.neurons
    # One grid group per tier size, so each renders as one table.
    return [
        (
            f"tier {size} pages",
            tiers_matrix(
                tier_sizes=(size,),
                workload_seed=21 if args.seed is None else args.seed,
                **kwargs,
            ),
        )
        for size in TIER_SIZES
    ]


def _render_tiers_tables(grids, results) -> None:
    from repro.analysis import sweep_table
    from repro.workload.sweeps import tiers_path_of

    offset = 0
    for label, cells in grids:
        panel_results = [r for r in results[offset : offset + len(cells)] if r.ok]
        offset += len(cells)
        hit = sweep_table(
            f"Tiers sweep -- {label} -- aggregate hit rate [%]",
            panel_results,
            column_of=lambda r: tiers_path_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id="tiers",
        )
        absorbed = sweep_table(
            f"Tiers sweep -- {label} -- tier + miss-path hits (absorbed reads)",
            panel_results,
            column_of=lambda r: tiers_path_of(r.spec),
            row_of=_prefetcher_label,
            value_of=lambda r: (r.metrics.tier_hits or 0) + (r.metrics.miss_path_hits or 0),
            precision=0,
        )
        print()
        print(hit.render())
        print()
        print(absorbed.render())


def _shards_grids(args, parser) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import SHARD_PARTITIONS, shards_matrix

    kwargs = {}
    if args.neurons is not None:
        kwargs["n_neurons"] = args.neurons
    # One grid group per partition scheme, so each renders as one table.
    return [
        (
            f"partition {partition}",
            shards_matrix(
                partitions=(partition,),
                workload_seed=21 if args.seed is None else args.seed,
                **kwargs,
            ),
        )
        for partition in SHARD_PARTITIONS
    ]


def _render_shards_tables(grids, results) -> None:
    from repro.analysis import sweep_table
    from repro.workload.sweeps import serve_clients_of, shards_k_of

    def _row(result) -> str:
        return f"{_prefetcher_label(result)} x{serve_clients_of(result.spec)}"

    def _imbalance(result) -> float:
        # max/mean per-shard request load: 1.0 is perfectly even, K is
        # "one shard absorbs everything".  K=1 cells report 1.0.
        requests = result.metrics.shard_requests
        if not requests or sum(requests) == 0:
            return 1.0
        return max(requests) / (sum(requests) / len(requests))

    offset = 0
    for label, cells in grids:
        panel_results = [r for r in results[offset : offset + len(cells)] if r.ok]
        offset += len(cells)
        hit = sweep_table(
            f"Shards sweep -- {label} -- aggregate hit rate [%]",
            panel_results,
            column_of=lambda r: shards_k_of(r.spec),
            row_of=_row,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id="shards",
        )
        imbalance = sweep_table(
            f"Shards sweep -- {label} -- request imbalance (max/mean shard load)",
            panel_results,
            column_of=lambda r: shards_k_of(r.spec),
            row_of=_row,
            value_of=_imbalance,
            precision=2,
        )
        print()
        print(hit.render())
        print()
        print(imbalance.render())


def _microbenchmark_grids(args) -> list[tuple[str, list]] | None:
    from repro.workload.sweeps import FIGURE_MATRICES

    builder = FIGURE_MATRICES[args.figure]
    benches = None
    if args.benches is not None:
        benches = [b.strip() for b in args.benches.split(",") if b.strip()]
    kwargs = {} if args.seed is None else {"workload_seed": args.seed}
    try:
        matrix = builder(
            benches=benches,
            n_neurons=args.neurons,
            n_sequences=args.sequences,
            **kwargs,
        )
    except ValueError as error:
        print(error)
        return None
    return [(f"fig{args.figure}", matrix.cells())]


def _render_panel_tables(grids, results, *, figure, titles, column_of_for, row_of) -> None:
    """Render the hit-rate table of each panel of a panel-based figure.

    ``grids`` is the (panel, cells) list the sweep ran, in order, and
    ``results`` the run's cell-parallel result list -- each panel's
    results are the next ``len(cells)`` entries.  ``titles`` maps a
    panel letter to its (regime/axis, human title) pair and
    ``column_of_for(panel)`` builds the table's column extractor.
    """
    from repro.analysis import sweep_table

    offset = 0
    for panel, cells in grids:
        panel_results = [r for r in results[offset : offset + len(cells)] if r.ok]
        offset += len(cells)
        _, title = titles[panel]
        table = sweep_table(
            f"Fig {figure}{panel} -- {title} [hit %]",
            panel_results,
            column_of=column_of_for(panel),
            row_of=row_of,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id=f"fig{figure}{panel}",
        )
        print()
        print(table.render())


def _render_fig13_tables(grids, results) -> None:
    from repro.workload.sweeps import FIG13_PANELS, fig13_axis_value

    _render_panel_tables(
        grids,
        results,
        figure=13,
        titles=FIG13_PANELS,
        column_of_for=lambda panel: lambda r: fig13_axis_value(panel, r.spec),
        row_of=lambda r: r.prefetcher_kind,
    )


#: ``--figure`` -> figure ids of the (hit-rate, speedup) tables, keying
#: the paper-shape notes printed above each table.
_FIGURE_TABLE_IDS = {10: ("fig10sweep", ""), 11: ("fig11a", "fig11b"), 12: ("fig12", "")}


def _render_microbenchmark_tables(figure: int, results) -> None:
    from repro.analysis import sweep_table
    from repro.workload.sweeps import microbenchmark_of

    ok_results = [r for r in results if r.ok]
    hit_id, speed_id = _FIGURE_TABLE_IDS[figure]
    hit = sweep_table(
        f"Fig {figure} sweep -- cache hit rate [%]",
        ok_results,
        column_of=lambda r: microbenchmark_of(r.spec) or "?",
        row_of=_prefetcher_label,
        value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
        figure_id=hit_id,
    )
    speed = sweep_table(
        f"Fig {figure} sweep -- speedup vs no prefetching",
        ok_results,
        column_of=lambda r: microbenchmark_of(r.spec) or "?",
        row_of=_prefetcher_label,
        value_of=lambda r: r.metrics.speedup,
        figure_id=speed_id,
        precision=2,
    )
    print()
    print(hit.render())
    print()
    print(speed.render())


def _sweep_command(argv: list[str]) -> int:
    from repro.sim import ParallelRunner, ResultStore, ShardedResultStore, shard_of

    parser = _build_sweep_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        parser.error(f"--timeout must be positive, got {args.timeout}")
    # Refuse mixed-figure flags loudly: running the wrong (possibly
    # much larger) grid is worse than an argparse error.
    if args.figure in (13, 17, "clients", "chaos", "tiers", "shards") and args.benches is not None:
        parser.error("--benches applies to --figure 10|11|12; use --panels for Figs 13/17")
    if args.figure not in (13, 17) and args.panels is not None:
        parser.error(f"--panels applies to --figure 13|17, not --figure {args.figure}")
    if args.figure != 13 and args.points is not None:
        parser.error(f"--points applies to --figure 13, not --figure {args.figure}")
    if args.figure != 17 and args.datasets is not None:
        parser.error(f"--datasets applies to --figure 17, not --figure {args.figure}")
    if args.figure == 17 and args.neurons is not None:
        parser.error(
            "--neurons applies to the neuron-tissue grids "
            "(figures 10-13, clients, chaos, tiers, shards)"
        )
    if args.figure != "clients":
        if args.clients is not None:
            parser.error(f"--clients applies to --figure clients, not --figure {args.figure}")
        if args.cache_pages is not None:
            parser.error(
                f"--cache-pages applies to --figure clients, not --figure {args.figure}"
            )
        if args.contention != "independent":
            parser.error(
                f"--contention applies to --figure clients, not --figure {args.figure}"
            )
        if args.lockstep and args.figure not in ("chaos", "tiers", "shards"):
            parser.error(
                f"--lockstep applies to the serving grids (clients, chaos, tiers, "
                f"shards), not --figure {args.figure}"
            )
    if args.figure in ("clients", "chaos", "tiers", "shards") and args.sequences is not None:
        parser.error(f"--sequences does not apply to --figure {args.figure} "
                     "(each client runs one session)")
    if args.lockstep:
        # Environment toggle (like REPRO_SCALE) so sweep worker
        # processes inherit the scheduler choice; results are
        # bit-identical either way, so stores and cell keys are
        # unaffected.
        os.environ[LOCKSTEP_ENV] = "1"
    figure_stem = args.figure if isinstance(args.figure, str) else f"fig{args.figure}"
    out = args.out if args.out is not None else f"results/{figure_stem}_sweep.jsonl"

    if args.figure == 13:
        grids = _fig13_grids(args, parser)
    elif args.figure == 17:
        grids = _fig17_grids(args, parser)
    elif args.figure == "clients":
        grids = _clients_grids(args, parser)
    elif args.figure == "chaos":
        grids = _chaos_grids(args, parser)
    elif args.figure == "tiers":
        grids = _tiers_grids(args, parser)
    elif args.figure == "shards":
        grids = _shards_grids(args, parser)
    else:
        grids = _microbenchmark_grids(args)
    if grids is None:
        return 2

    if args.shard is not None:
        shard_index, n_shards = args.shard
        grids = [
            (label, [c for c in cells if shard_of(c.key(), n_shards) == shard_index])
            for label, cells in grids
        ]

    all_cells = [cell for _, cells in grids for cell in cells]
    if args.list_cells:
        from repro.workload.sweeps import (
            chaos_rate_of,
            fig13_axis_value,
            fig17_dataset_of,
            microbenchmark_of,
            serve_clients_of,
            shards_k_of,
            shards_partition_of,
            tiers_path_of,
        )

        for label, cells in grids:
            for cell in cells:
                if args.figure == 13:
                    axis = f"axis={fig13_axis_value(label, cell.to_dict()):g}"
                elif args.figure == 17:
                    axis = f"dataset={fig17_dataset_of(cell.to_dict())}"
                elif args.figure == "clients":
                    axis = f"clients={serve_clients_of(cell.to_dict())}"
                elif args.figure == "chaos":
                    axis = f"rate={chaos_rate_of(cell.to_dict()):g}"
                elif args.figure == "tiers":
                    axis = f"miss-path={tiers_path_of(cell.to_dict())}"
                elif args.figure == "shards":
                    spec = cell.to_dict()
                    axis = f"K={shards_k_of(spec)} {shards_partition_of(spec)}"
                else:
                    axis = f"bench={microbenchmark_of(cell.to_dict()) or '?'}"
                print(f"{label}  {cell.key()[:12]}  {cell.prefetcher.kind:10s} {axis}")
        suffix = "" if args.shard is None else f" (shard {args.shard[0]}/{args.shard[1]})"
        print(f"{len(all_cells)} cells{suffix}")
        return 0

    if args.shard is not None:
        store = ShardedResultStore(out, *args.shard, async_writes=True)
    else:
        store = ResultStore(out, async_writes=True)
    try:
        store.load()
        n_corrupt, n_stale = store.n_corrupt, store.n_stale
        profile_dir = f"{out}.profiles" if args.profile else None
        runner = ParallelRunner(
            jobs=args.jobs,
            store=store,
            profile_dir=profile_dir,
            timeout=args.timeout,
            retries=args.retries,
        )
        report = runner.run(all_cells, resume=not args.no_resume)
    finally:
        store.close()

    if args.figure == 13:
        _render_fig13_tables(grids, report.results)
    elif args.figure == 17:
        _render_fig17_tables(grids, report.results)
    elif args.figure == "clients":
        _render_clients_tables(grids, report.results)
    elif args.figure == "chaos":
        _render_chaos_tables(grids, report.results)
    elif args.figure == "tiers":
        _render_tiers_tables(grids, report.results)
    elif args.figure == "shards":
        _render_shards_tables(grids, report.results)
    else:
        _render_microbenchmark_tables(args.figure, report.results)

    shard_note = "" if args.shard is None else f"  shard {args.shard[0]}/{args.shard[1]}"
    print()
    print(
        f"cells {len(all_cells)}  computed {report.n_computed}  "
        f"failed {report.n_failed}  resumed {report.n_skipped}  "
        f"corrupt-dropped {n_corrupt}  stale-dropped {n_stale}  "
        f"pool-crashes {report.pool_crashes}  "
        f"jobs {args.jobs}{shard_note}  elapsed {report.elapsed_seconds:.1f}s"
    )
    for result in report.results:
        if not result.ok:
            print(
                f"  {result.status:7s} {result.key[:12]}  "
                f"attempts={result.attempts}  {result.error}"
            )
    print(f"store: {store.path}")
    if profile_dir is not None:
        print(f"profiles: {profile_dir}")
    return 0


def _build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro merge",
        description="Union sharded (or partial) sweep stores into one store.",
    )
    parser.add_argument("inputs", nargs="+", help="shard store files to union")
    parser.add_argument(
        "--out",
        required=True,
        help="merged JSON-lines store (atomically replaced; may be one of "
        "the inputs)",
    )
    return parser


def _merge_command(argv: list[str]) -> int:
    from repro.sim import merge_stores

    args = _build_merge_parser().parse_args(argv)
    try:
        report = merge_stores(args.inputs, args.out)
    except ValueError as error:
        print(f"merge failed: {error}")
        return 2
    for path in report.missing_inputs:
        print(f"warning: input store {path} does not exist (empty shard, or a typo?)")
    print(
        f"merged {report.n_cells} cells from {report.n_inputs} stores -> {report.out_path}  "
        f"(corrupt-dropped {report.n_corrupt}  stale-dropped {report.n_stale}  "
        f"conflicts {len(report.conflict_keys)}  missing-inputs {len(report.missing_inputs)})"
    )
    return 0


def _build_compact_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro compact",
        description="Rewrite result stores in place (atomic replace), dropping "
        "corrupt, stale and superseded lines and reporting reclaimed bytes.",
    )
    parser.add_argument("stores", nargs="+", help="JSON-lines result stores to compact")
    return parser


def _compact_command(argv: list[str]) -> int:
    from pathlib import Path

    from repro.sim import ResultStore

    args = _build_compact_parser().parse_args(argv)
    code = 0
    for store_path in args.stores:
        path = Path(store_path)
        if not path.exists():
            print(f"compact failed: {path} does not exist")
            code = 2
            continue
        report = ResultStore(path).compact()
        print(
            f"{path}: kept {report.n_kept} cells  dropped corrupt {report.n_corrupt} "
            f"stale {report.n_stale} superseded {report.n_superseded}  "
            f"reclaimed {report.reclaimed_bytes} bytes "
            f"({report.bytes_before} -> {report.bytes_after})"
        )
    return code


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro bench",
        description="Time the index & prediction hot paths vs their scalar "
        "baselines and write BENCH_<rev>.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller dataset and fewer repeats (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default=".",
        help="directory receiving BENCH_<rev>.json (default: current directory)",
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for the report (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--budget",
        default=None,
        help="budget JSON of throughput floors; exit 1 when a measurement "
        "regresses more than the budget's tolerance below its floor",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the summary without writing BENCH_<rev>.json",
    )
    return parser


def _bench_command(argv: list[str]) -> int:
    from repro.perf.bench import check_budget, render_report, run_bench

    args = _build_bench_parser().parse_args(argv)
    report = run_bench(quick=args.quick, rev=args.rev)
    print(render_report(report))
    if not args.no_write:
        path = report.write(args.out)
        print(f"wrote {path}")
    if args.budget is not None:
        failures = check_budget(report, args.budget)
        if failures:
            for failure in failures:
                print(f"BUDGET FAIL  {failure}")
            return 1
        print(f"budget ok ({args.budget})")
    return 0


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro serve",
        description="Serve QuerySessions over TCP (length-prefixed JSON "
        "protocol) with latency-percentile reporting and admission control.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8641, help="TCP port (0 picks an ephemeral port)"
    )
    parser.add_argument("--neurons", type=int, default=16, help="tissue size in neurons")
    parser.add_argument("--prefetcher", choices=_PREFETCHERS, default="ewma")
    parser.add_argument(
        "--pool",
        type=int,
        default=8,
        help="distinct navigation walks; connection i replays walk i mod pool",
    )
    parser.add_argument(
        "--queries-per-session",
        type=int,
        default=20,
        help="queries per session (an exhausted session renews in place)",
    )
    parser.add_argument(
        "--mode",
        choices=["independent", "hotspot"],
        default="hotspot",
        help="session-pool contention regime",
    )
    parser.add_argument(
        "--cache-pages",
        type=int,
        default=None,
        help="shared cache capacity in pages (default: the engine's sizing rule)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission bound: queries queued beyond this are shed",
    )
    parser.add_argument(
        "--report-interval",
        type=float,
        default=5.0,
        help="seconds between interval latency reports on stdout",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the final JSON report here on graceful shutdown",
    )
    parser.add_argument("--seed", type=int, default=21, help="workload (and fault) seed")
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="transient-read fault rate; > 0 serves through a seeded "
        "FaultyDiskModel with per-client circuit breakers",
    )
    parser.add_argument(
        "--storage",
        choices=sorted(STORAGE_BACKENDS),
        default="ram",
        help="page-store backend behind the cache: 'ram' keeps the "
        "analytic DiskModel only; 'mmap' backs it with a real on-disk "
        "page file (checksummed slots, torn-write detection)",
    )
    parser.add_argument(
        "--miss-path",
        choices=list(MISS_PATHS),
        default="none",
        help="miss-path mechanism between the cache and the backing "
        "store (DESIGN.md §9)",
    )
    parser.add_argument(
        "--tier-pages",
        type=int,
        default=0,
        help="second-tier cache capacity in pages (0 disables the tier)",
    )
    parser.add_argument(
        "--pagefile",
        default=None,
        metavar="PATH",
        help="page-file path for --storage mmap (reused if it exists; "
        "default: a fresh temp file, removed at shutdown)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="cache shard count: 0 keeps the single unsharded cache, "
        "K >= 1 routes every touch through a partitioned cache of K "
        "shards (DESIGN.md §10)",
    )
    parser.add_argument(
        "--partition",
        choices=list(PARTITIONS),
        default="hilbert",
        help="shard partition scheme: 'hilbert' range-partitions page "
        "Hilbert keys, 'hash' spreads pages round-robin (--shards >= 2 "
        "only)",
    )
    return parser


def _serve_command(argv: list[str]) -> int:
    import asyncio

    from repro.serve import DaemonConfig, ServeDaemon

    parser = _build_serve_parser()
    args = parser.parse_args(argv)
    if args.max_queue < 1:
        parser.error(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.pool < 1:
        parser.error(f"--pool must be >= 1, got {args.pool}")
    if not 0.0 <= args.fault_rate <= 1.0:
        parser.error(f"--fault-rate must be within [0, 1], got {args.fault_rate}")
    if args.tier_pages < 0:
        parser.error(f"--tier-pages must be >= 0, got {args.tier_pages}")
    if args.pagefile is not None and args.storage != "mmap":
        parser.error("--pagefile applies to --storage mmap only")
    if args.shards < 0:
        parser.error(f"--shards must be >= 0, got {args.shards}")
    config = DaemonConfig(
        host=args.host,
        port=args.port,
        n_neurons=args.neurons,
        seed=args.seed,
        prefetcher=args.prefetcher,
        session_pool=args.pool,
        queries_per_session=args.queries_per_session,
        mode=args.mode,
        cache_pages=args.cache_pages,
        max_queue=args.max_queue,
        report_interval=args.report_interval,
        report_path=args.report,
        fault_rate=args.fault_rate,
        storage=args.storage,
        miss_path=args.miss_path,
        tier_pages=args.tier_pages,
        pagefile=args.pagefile,
        shards=args.shards,
        partition=args.partition,
    )
    daemon = ServeDaemon(config)
    try:
        asyncio.run(daemon.run_async())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro loadgen",
        description="Drive a running serve daemon with seeded open-loop "
        "arrivals and report client-observed latency percentiles.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8641)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument(
        "--process",
        choices=["poisson", "bursty"],
        default="poisson",
        help="arrival process (bursty = on/off Markov-modulated Poisson)",
    )
    parser.add_argument("--rate", type=float, default=200.0, help="arrivals per second")
    parser.add_argument(
        "--requests", type=int, default=None, help="total requests (fixed count)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="schedule horizon in seconds (count then derives from the seed)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--burst", type=float, default=8.0, help="ON-phase rate multiplier (bursty only)"
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the JSON report here"
    )
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="gracefully drain the daemon after the load completes",
    )
    return parser


def _loadgen_command(argv: list[str]) -> int:
    import asyncio
    import json

    from repro.serve import run_loadgen

    parser = _build_loadgen_parser()
    args = parser.parse_args(argv)
    if args.connections < 1:
        parser.error(f"--connections must be >= 1, got {args.connections}")
    if (args.requests is None) == (args.duration is None):
        parser.error("give exactly one of --requests and --duration")
    if args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    try:
        report = asyncio.run(
            run_loadgen(
                args.host,
                args.port,
                connections=args.connections,
                process=args.process,
                rate=args.rate,
                requests=args.requests,
                duration=args.duration,
                seed=args.seed,
                burst=args.burst,
                shutdown=args.shutdown,
            )
        )
    except (ConnectionError, OSError) as error:
        print(f"loadgen failed: {error}")
        return 2
    latency = report["latency"]
    print(
        f"loadgen: {report['requests']} requests ({report['process']}, "
        f"rate {report['offered_rate']:g}/s, seed {report['seed']})  "
        f"ok {report['ok']}  shed {report['shed']}  errors {report['errors']}"
    )
    print(
        f"latency: p50 {latency['p50_ms']:.2f}ms  p99 {latency['p99_ms']:.2f}ms  "
        f"p999 {latency['p999_ms']:.2f}ms  max {latency['max_ms']:.2f}ms  "
        f"achieved {report['achieved_qps']:,.0f} q/s"
    )
    if report["drained"] is not None:
        print(f"drained: {report['drained']}")
    if args.out is not None:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_command(argv[1:])
    if argv and argv[0] == "merge":
        return _merge_command(argv[1:])
    if argv and argv[0] == "compact":
        return _compact_command(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_command(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_command(argv[1:])
    if argv and argv[0] == "loadgen":
        return _loadgen_command(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _run_command(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
