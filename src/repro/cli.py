"""Command-line entry point: experiment cells, parallel sweeps, benchmarks.

Three forms::

    scout-repro [run] --prefetcher scout --benchmark adhoc_stat
    scout-repro sweep --panels a,d --jobs 4 --out results/fig13.jsonl
    scout-repro bench --quick --budget benchmarks/perf/budget.json

``run`` (the default when no subcommand is given, for backward
compatibility) executes one experiment cell on synthetic neuron tissue
and prints its headline numbers.

``sweep`` expands Fig-13 sensitivity panels into an experiment matrix,
fans the cells out over ``--jobs`` worker processes, persists every
finished cell to a JSON-lines store keyed by the cell spec's content
hash, and renders one table per panel from the stored results.  Re-runs
against the same ``--out`` file resume: cells already in the store are
skipped (disable with ``--no-resume``), and corrupt store lines are
dropped and recomputed.  ``--profile`` wraps every computed cell in
cProfile and dumps per-cell ``.prof`` files next to the result store.

``bench`` times the index/prediction hot paths against their scalar
reference implementations and writes ``BENCH_<rev>.json`` (see
ROADMAP.md, "Performance tracking"); with ``--budget`` it exits
non-zero when throughput regresses past the checked-in floors.
"""

from __future__ import annotations

import argparse
import sys

from repro.quickstart import quick_experiment
from repro.workload import MICROBENCHMARKS

__all__ = ["main"]

_PREFETCHERS = ["scout", "scout-opt", "ewma", "straight-line", "hilbert", "none"]


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro",
        description="Run a SCOUT-reproduction experiment cell on synthetic neuron tissue.",
    )
    parser.add_argument("--prefetcher", choices=_PREFETCHERS, default="scout")
    parser.add_argument(
        "--benchmark",
        choices=sorted(MICROBENCHMARKS),
        default="adhoc_stat",
        help="Figure-10 microbenchmark to run",
    )
    parser.add_argument("--neurons", type=int, default=40, help="tissue size in neurons")
    parser.add_argument("--sequences", type=int, default=5, help="query sequences to run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    return parser


def _run_command(argv: list[str]) -> int:
    args = _build_run_parser().parse_args(argv)
    if args.list:
        for name, spec in MICROBENCHMARKS.items():
            print(
                f"{name:16s} {spec.label:42s} queries={spec.n_queries:3d} "
                f"volume={spec.volume:9.0f} gap={spec.gap:4.1f} ratio={spec.window_ratio:.1f}"
            )
        return 0

    result = quick_experiment(
        prefetcher=args.prefetcher,
        benchmark=args.benchmark,
        n_neurons=args.neurons,
        n_sequences=args.sequences,
        seed=args.seed,
    )
    print(f"prefetcher      : {result.prefetcher_name}")
    print(f"benchmark       : {args.benchmark}")
    print(f"sequences       : {result.metrics.n_sequences}")
    print(f"cache hit rate  : {100 * result.cache_hit_rate:.1f}%")
    print(f"speedup         : {result.speedup:.2f}x vs no prefetching")
    return 0


def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro sweep",
        description="Run Fig-13 sensitivity panels as a parallel, resumable experiment sweep.",
    )
    parser.add_argument(
        "--panels",
        default="a,b,c,d,e,f",
        help="comma-separated Fig-13 panel letters (default: all six)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--out",
        default="results/fig13_sweep.jsonl",
        help="JSON-lines result store (appended; enables resume)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="recompute every cell even when the store already has it",
    )
    parser.add_argument(
        "--neurons",
        type=int,
        default=None,
        help="tissue size in neurons (panel b rescales its density axis around this)",
    )
    parser.add_argument("--sequences", type=int, default=None, help="sequences per cell")
    parser.add_argument("--seed", type=int, default=13, help="workload seed")
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="truncate each panel axis to its first N tick values",
    )
    parser.add_argument(
        "--list-cells",
        action="store_true",
        help="print the cell grid (spec key + axis point) and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each computed cell under cProfile; dump per-cell .prof "
        "files into <out>.profiles/ next to the result store",
    )
    return parser


def _sweep_command(argv: list[str]) -> int:
    from repro.analysis import sweep_table
    from repro.sim import ParallelRunner, ResultStore
    from repro.workload.sweeps import FIG13_PANELS, fig13_axes, fig13_axis_value, fig13_matrix

    parser = _build_sweep_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    panels = [p.strip() for p in args.panels.split(",") if p.strip()]
    if not panels:
        parser.error("--panels must name at least one Fig-13 panel")
    unknown = [p for p in panels if p not in FIG13_PANELS]
    if unknown:
        print(f"unknown panel(s): {', '.join(unknown)} (expected {', '.join(FIG13_PANELS)})")
        return 2

    axes = fig13_axes()
    grids = []  # (panel, cells) in panel order
    for panel in panels:
        axis_key, _ = FIG13_PANELS[panel]
        axis = axes[axis_key]
        if args.points is not None:
            axis = axis[: max(1, args.points)]
        if panel == "b" and args.neurons is not None:
            # Panel b's axis IS the neuron count; rescale it around the
            # requested size so --neurons shrinks this panel too instead
            # of being silently ignored.
            from repro.workload.sweeps import SENSITIVITY_DEFAULTS

            ratio = args.neurons / SENSITIVITY_DEFAULTS.n_neurons
            axis = [max(2, int(round(n * ratio))) for n in axis]
        matrix = fig13_matrix(
            panel,
            n_neurons=args.neurons,
            n_sequences=args.sequences,
            workload_seed=args.seed,
            axis=axis,
        )
        grids.append((panel, matrix.cells()))

    all_cells = [cell for _, cells in grids for cell in cells]
    if args.list_cells:
        for panel, cells in grids:
            for cell in cells:
                axis_value = fig13_axis_value(panel, cell.to_dict())
                print(f"{panel}  {cell.key()[:12]}  {cell.prefetcher.kind:10s} axis={axis_value:g}")
        print(f"{len(all_cells)} cells")
        return 0

    store = ResultStore(args.out)
    store.load()
    n_corrupt = store.n_corrupt
    profile_dir = f"{args.out}.profiles" if args.profile else None
    runner = ParallelRunner(jobs=args.jobs, store=store, profile_dir=profile_dir)
    report = runner.run(all_cells, resume=not args.no_resume)

    offset = 0
    for panel, cells in grids:
        panel_results = report.results[offset : offset + len(cells)]
        offset += len(cells)
        _, title = FIG13_PANELS[panel]
        table = sweep_table(
            f"Fig 13{panel} -- {title} [hit %]",
            panel_results,
            column_of=lambda r, p=panel: fig13_axis_value(p, r.spec),
            row_of=lambda r: r.prefetcher_kind,
            value_of=lambda r: 100.0 * r.metrics.cache_hit_rate,
            figure_id=f"fig13{panel}",
        )
        print()
        print(table.render())

    print()
    print(
        f"cells {len(all_cells)}  computed {report.n_computed}  "
        f"resumed {report.n_skipped}  corrupt-dropped {n_corrupt}  "
        f"jobs {args.jobs}  elapsed {report.elapsed_seconds:.1f}s"
    )
    print(f"store: {store.path}")
    if profile_dir is not None:
        print(f"profiles: {profile_dir}")
    return 0


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro bench",
        description="Time the index & prediction hot paths vs their scalar "
        "baselines and write BENCH_<rev>.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller dataset and fewer repeats (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default=".",
        help="directory receiving BENCH_<rev>.json (default: current directory)",
    )
    parser.add_argument(
        "--rev",
        default=None,
        help="revision label for the report (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--budget",
        default=None,
        help="budget JSON of throughput floors; exit 1 when a measurement "
        "regresses more than the budget's tolerance below its floor",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the summary without writing BENCH_<rev>.json",
    )
    return parser


def _bench_command(argv: list[str]) -> int:
    from repro.perf.bench import check_budget, render_report, run_bench

    args = _build_bench_parser().parse_args(argv)
    report = run_bench(quick=args.quick, rev=args.rev)
    print(render_report(report))
    if not args.no_write:
        path = report.write(args.out)
        print(f"wrote {path}")
    if args.budget is not None:
        failures = check_budget(report, args.budget)
        if failures:
            for failure in failures:
                print(f"BUDGET FAIL  {failure}")
            return 1
        print(f"budget ok ({args.budget})")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_command(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_command(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _run_command(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
