"""Command-line entry point: run one experiment cell from the shell.

Examples::

    scout-repro --prefetcher scout --benchmark adhoc_stat
    scout-repro --prefetcher ewma --benchmark model_building --sequences 10
    scout-repro --list
"""

from __future__ import annotations

import argparse
import sys

from repro.quickstart import quick_experiment
from repro.workload import MICROBENCHMARKS

__all__ = ["main"]

_PREFETCHERS = ["scout", "scout-opt", "ewma", "straight-line", "hilbert", "none"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scout-repro",
        description="Run a SCOUT-reproduction experiment cell on synthetic neuron tissue.",
    )
    parser.add_argument("--prefetcher", choices=_PREFETCHERS, default="scout")
    parser.add_argument(
        "--benchmark",
        choices=sorted(MICROBENCHMARKS),
        default="adhoc_stat",
        help="Figure-10 microbenchmark to run",
    )
    parser.add_argument("--neurons", type=int, default=40, help="tissue size in neurons")
    parser.add_argument("--sequences", type=int, default=5, help="query sequences to run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name, spec in MICROBENCHMARKS.items():
            print(
                f"{name:16s} {spec.label:42s} queries={spec.n_queries:3d} "
                f"volume={spec.volume:9.0f} gap={spec.gap:4.1f} ratio={spec.window_ratio:.1f}"
            )
        return 0

    result = quick_experiment(
        prefetcher=args.prefetcher,
        benchmark=args.benchmark,
        n_neurons=args.neurons,
        n_sequences=args.sequences,
        seed=args.seed,
    )
    print(f"prefetcher      : {result.prefetcher_name}")
    print(f"benchmark       : {args.benchmark}")
    print(f"sequences       : {result.metrics.n_sequences}")
    print(f"cache hit rate  : {100 * result.cache_hit_rate:.1f}%")
    print(f"speedup         : {result.speedup:.2f}x vs no prefetching")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    sys.exit(main())
