"""Open-loop load generation against the serving daemon.

Closed-loop clients (issue, wait, issue) can never overload a server:
their arrival rate collapses to the server's completion rate, hiding
exactly the queueing behavior a latency percentile exists to expose.
This generator is *open-loop*: the entire arrival schedule is drawn up
front from a seeded process -- Poisson (memoryless interactive users)
or bursty (an on/off Markov-modulated Poisson process: quiet baseline
traffic punctuated by request storms) -- and requests are fired at
their scheduled times regardless of how the server is coping.

Latency is measured from each request's *scheduled* send time, not from
the moment the socket write happened, so a generator that falls behind
a slow server cannot hide that delay (the coordinated-omission trap).

Determinism: the schedule, its length, and the request-to-connection
assignment depend only on ``(process, rate, requests/duration, seed)``,
so a seeded run always issues the same request count against the same
session pool -- wall-clock latencies vary, counts never do.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.serve.latency import LatencyRecorder
from repro.serve.protocol import read_frame, write_frame

__all__ = ["bursty_arrivals", "poisson_arrivals", "run_loadgen"]


def poisson_arrivals(
    rate: float,
    *,
    n_requests: int | None = None,
    duration: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Absolute arrival times (seconds) of a Poisson process.

    Exactly one of ``n_requests`` (fixed count) and ``duration`` (fixed
    horizon; the count is then a deterministic function of the seed)
    must be given.
    """
    _check_schedule_args(rate, n_requests, duration)
    rng = np.random.default_rng([seed, 0x90155])
    if n_requests is not None:
        return np.cumsum(rng.exponential(1.0 / rate, size=n_requests))
    arrivals: list[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t > duration:
            return np.asarray(arrivals)
        arrivals.append(t)


def bursty_arrivals(
    rate: float,
    *,
    n_requests: int | None = None,
    duration: float | None = None,
    seed: int = 0,
    burst: float = 8.0,
    on_mean_s: float = 0.2,
    off_mean_s: float = 0.6,
) -> np.ndarray:
    """On/off Markov-modulated Poisson arrivals.

    The process alternates exponentially-long OFF phases (baseline rate
    ``rate``) and ON phases (storm rate ``burst * rate``), starting OFF.
    Same count semantics as :func:`poisson_arrivals`.
    """
    _check_schedule_args(rate, n_requests, duration)
    if burst < 1.0:
        raise ValueError(f"burst factor must be >= 1, got {burst}")
    if on_mean_s <= 0 or off_mean_s <= 0:
        raise ValueError("phase means must be positive")
    rng = np.random.default_rng([seed, 0xB5257])
    arrivals: list[float] = []
    t = 0.0
    on = False
    while True:
        phase_rate = rate * burst if on else rate
        phase_end = t + rng.exponential(on_mean_s if on else off_mean_s)
        next_arrival = t + rng.exponential(1.0 / phase_rate)
        while next_arrival < phase_end:
            if duration is not None and next_arrival > duration:
                return np.asarray(arrivals)
            arrivals.append(next_arrival)
            if n_requests is not None and len(arrivals) >= n_requests:
                return np.asarray(arrivals)
            next_arrival += rng.exponential(1.0 / phase_rate)
        if duration is not None and phase_end > duration:
            return np.asarray(arrivals)
        t = phase_end
        on = not on


def _check_schedule_args(rate: float, n_requests: int | None, duration: float | None) -> None:
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if (n_requests is None) == (duration is None):
        raise ValueError("give exactly one of n_requests and duration")
    if n_requests is not None and n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if duration is not None and duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")


ARRIVAL_PROCESSES = {"poisson": poisson_arrivals, "bursty": bursty_arrivals}


async def _connect_with_retry(host: str, port: int, timeout: float):
    """Open a connection, retrying while the daemon is still booting."""
    deadline = time.perf_counter() + timeout
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if time.perf_counter() >= deadline:
                raise
            await asyncio.sleep(0.05)


async def _drive_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    schedule: np.ndarray,
    start: float,
    recorder: LatencyRecorder,
    counts: dict,
) -> None:
    """Fire one connection's slice of the schedule, open-loop.

    The sender writes each query frame at its scheduled offset from
    ``start``; the reader matches responses FIFO (the daemon answers
    per-connection frames in order) and scores latency against the
    *scheduled* time.
    """

    async def send() -> None:
        for offset in schedule:
            delay = (start + offset) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            await write_frame(writer, {"op": "query"})

    async def receive() -> None:
        for offset in schedule:
            frame = await read_frame(reader)
            if frame is None:
                raise ConnectionError("daemon closed the connection mid-load")
            now = time.perf_counter()
            if frame.get("shed"):
                counts["shed"] += 1
                recorder.count_shed()
            elif not frame.get("ok"):
                counts["errors"] += 1
                recorder.count_error()
            else:
                counts["ok"] += 1
                recorder.observe(max(0.0, now - (start + offset)))
                counts["sessions_completed"] = max(
                    counts["sessions_completed"], frame.get("sessions_completed", 0)
                )

    await asyncio.gather(send(), receive())


async def run_loadgen(
    host: str,
    port: int,
    *,
    connections: int = 4,
    process: str = "poisson",
    rate: float = 200.0,
    requests: int | None = None,
    duration: float | None = None,
    seed: int = 0,
    burst: float = 8.0,
    shutdown: bool = False,
    connect_timeout: float = 10.0,
) -> dict:
    """Drive a seeded open-loop load against a running daemon.

    Returns the client-side report: request counts (deterministic for a
    given seed), the latency percentile summary, and achieved
    throughput.  ``shutdown=True`` sends a graceful ``shutdown`` after
    the load completes and confirms the daemon acknowledged the drain.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if process not in ARRIVAL_PROCESSES:
        known = ", ".join(sorted(ARRIVAL_PROCESSES))
        raise ValueError(f"unknown arrival process {process!r}; known: {known}")
    kwargs = {"n_requests": requests, "duration": duration, "seed": seed}
    if process == "bursty":
        kwargs["burst"] = burst
    schedule = ARRIVAL_PROCESSES[process](rate, **kwargs)
    n_scheduled = len(schedule)
    # Deterministic round-robin request-to-connection assignment.
    slices = [schedule[i::connections] for i in range(connections)]

    streams = []
    try:
        for _ in range(connections):
            streams.append(await _connect_with_retry(host, port, connect_timeout))
        client_ids = []
        for reader, writer in streams:
            await write_frame(writer, {"op": "hello"})
            reply = await read_frame(reader)
            if reply is None or not reply.get("ok"):
                raise ConnectionError(f"hello rejected: {reply!r}")
            client_ids.append(reply["client_id"])

        recorder = LatencyRecorder()
        counts = {"ok": 0, "shed": 0, "errors": 0, "sessions_completed": 0}
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _drive_connection(reader, writer, piece, start, recorder, counts)
                for (reader, writer), piece in zip(streams, slices)
            )
        )
        elapsed = time.perf_counter() - start

        drained = None
        if shutdown:
            reader, writer = streams[0]
            await write_frame(writer, {"op": "shutdown"})
            reply = await read_frame(reader)
            drained = bool(reply and reply.get("ok") and reply.get("draining"))
        else:
            for reader, writer in streams:
                await write_frame(writer, {"op": "bye"})
                await read_frame(reader)
    finally:
        for _, writer in streams:
            writer.close()

    report = recorder.total()
    return {
        "type": "loadgen",
        "process": process,
        "offered_rate": rate,
        "burst": burst if process == "bursty" else None,
        "seed": seed,
        "connections": connections,
        "client_ids": client_ids,
        "requests": n_scheduled,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "errors": counts["errors"],
        "sessions_completed_max": counts["sessions_completed"],
        "elapsed_seconds": elapsed,
        "achieved_qps": counts["ok"] / elapsed if elapsed > 0 else 0.0,
        "drained": drained,
        "latency": report.summary(),
    }
