"""The ``scout-repro serve`` asyncio daemon (DESIGN.md §8).

One process owns the serving plane the simulator shares out: a dataset,
its page-granular index, one shared prefetch cache and one disk model
(optionally fault-wrapped, complete with the per-client circuit
breakers of DESIGN.md §7).  Each client *connection* runs a resumable
:class:`~repro.sim.engine.QuerySession` -- the PR-5 phase machine is
exactly the unit an event loop needs: a query advances in one
synchronous, sub-millisecond step, so the daemon executes steps inline
on the loop and concurrency lives in the *queueing*, not in threads
(which also keeps the shared cache single-writer by construction).

Admission control is a bounded accept queue: a ``query`` arriving while
``max_queue`` requests are already waiting is shed immediately with a
``shed: true`` reply instead of queueing without bound -- overload
degrades into fast rejections and honest shed counts, not into a
latency collapse.  Request latency is measured from *enqueue* to
response-ready, so queueing delay is part of every percentile.

Graceful shutdown (``shutdown`` op, SIGINT or SIGTERM) stops accepting
connections, drains every queued request to a real response, then
writes the final latency report.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.serve.latency import LatencyRecorder
from repro.serve.protocol import ProtocolError, read_frame, write_frame
from repro.sim.engine import QuerySession, SimulationConfig, SimulationEngine
from repro.sim.metrics import LatencyReport
from repro.storage.faults import FaultPlan
from repro.storage.sharded import ShardedCache, ShardSpec
from repro.storage.tiered import StorageSpec, TieredStore
from repro.workload.multiclient import multiclient_sessions

__all__ = ["DaemonConfig", "ServeDaemon"]


@dataclass(frozen=True)
class DaemonConfig:
    """Everything ``scout-repro serve`` needs to stand up a serving plane."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Synthetic tissue size backing the daemon's dataset and index.
    n_neurons: int = 16
    #: Root seed of the workload pool (and the fault plan, if any).
    seed: int = 21
    #: Prefetcher every session runs (quickstart names: scout, scout-opt,
    #: ewma, straight-line, hilbert, none).
    prefetcher: str = "ewma"
    #: Distinct navigation walks in the session pool; connection ``i``
    #: replays walk ``i mod pool`` (hotspot mode Zipf-shares the pool).
    session_pool: int = 8
    #: Queries per session; an exhausted session is renewed in place.
    queries_per_session: int = 20
    query_volume: float = 30_000.0
    mode: str = "hotspot"
    #: Shared cache capacity in pages (``None``: the engine's sizing rule).
    cache_pages: int | None = None
    #: Admission-control bound: queries queued beyond this are shed.
    max_queue: int = 64
    #: Seconds between interval latency reports on stdout.
    report_interval: float = 5.0
    #: Where to write the final JSON report (``None``: stdout only).
    report_path: str | None = None
    #: Transient-read fault rate; > 0 wraps the disk in a seeded
    #: :class:`~repro.storage.faults.FaultyDiskModel` (breakers armed).
    fault_rate: float = 0.0
    #: Page-store backend: ``ram`` (analytic disk model only) or ``mmap``
    #: (a real on-disk :class:`~repro.storage.pagefile.PageFile` behind
    #: the :class:`~repro.storage.tiered.TieredStore`).
    storage: str = "ram"
    #: Miss-path mechanism between cache and backing store (DESIGN.md §9).
    miss_path: str = "none"
    #: Storage-side tier cache capacity in pages; 0 disables the tier.
    tier_pages: int = 0
    #: Page-file path for the ``mmap`` backend (``None``: a private temp
    #: file, removed at shutdown).
    pagefile: str | None = None
    #: Cache shard count; 0 keeps the single unsharded cache, K >= 1
    #: routes every touch through a :class:`~repro.storage.sharded.
    #: ShardedCache` over K shards (DESIGN.md §10).
    shards: int = 0
    #: Partition scheme for the sharded cache (``hilbert`` or ``hash``).
    partition: str = "hilbert"


def _prefetcher_factory(name: str, dataset, index):
    """Per-session prefetcher builder (the quickstart registry, bound)."""
    from repro.baselines import (
        EWMAPrefetcher,
        HilbertPrefetcher,
        NoPrefetcher,
        StraightLinePrefetcher,
    )
    from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher

    factories = {
        "scout": lambda: ScoutPrefetcher(dataset, ScoutConfig()),
        "scout-opt": lambda: ScoutOptPrefetcher(dataset, index, ScoutConfig()),
        "ewma": lambda: EWMAPrefetcher(lam=0.3),
        "straight-line": StraightLinePrefetcher,
        "hilbert": lambda: HilbertPrefetcher(dataset),
        "none": NoPrefetcher,
    }
    if name not in factories:
        known = ", ".join(sorted(factories))
        raise ValueError(f"unknown prefetcher {name!r}; known: {known}")
    return factories[name]


class _Job:
    """One admitted query request: its session slot and completion future."""

    __slots__ = ("state", "future", "enqueued_at")

    def __init__(self, state: "_ConnectionState", future: asyncio.Future, enqueued_at: float):
        self.state = state
        self.future = future
        self.enqueued_at = enqueued_at


class _ConnectionState:
    """One connection's session slot (renewed in place when exhausted)."""

    __slots__ = ("client_id", "session", "make_prefetcher", "sessions_completed")

    def __init__(self, client_id: int, session: QuerySession, make_prefetcher):
        self.client_id = client_id
        self.session = session
        self.make_prefetcher = make_prefetcher
        self.sessions_completed = 0


class ServeDaemon:
    """Serves :class:`~repro.sim.engine.QuerySession` steps over TCP."""

    def __init__(self, config: DaemonConfig | None = None) -> None:
        from repro.datagen import make_neuron_tissue
        from repro.index import FlatIndex

        self.config = config or DaemonConfig()
        config = self.config
        if config.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {config.max_queue}")
        if config.session_pool < 1:
            raise ValueError(f"session_pool must be >= 1, got {config.session_pool}")

        self.dataset = make_neuron_tissue(n_neurons=config.n_neurons, seed=config.seed)
        self.index = FlatIndex(self.dataset, fanout=16)
        faults = None
        if config.fault_rate > 0:
            faults = FaultPlan(
                transient_rate=config.fault_rate,
                corrupt_rate=config.fault_rate / 2.0,
                seed=config.seed,
            )
        storage = None
        if config.storage != "ram" or config.miss_path != "none" or config.tier_pages > 0:
            storage = StorageSpec(
                backend=config.storage,
                miss_path=config.miss_path,
                tier_pages=config.tier_pages,
                path=config.pagefile,
            )
        shards = None
        if config.shards > 0:
            shards = ShardSpec(n_shards=config.shards, partition=config.partition)
        self.sim_config = SimulationConfig(
            cache_capacity_pages=config.cache_pages,
            faults=faults,
            storage=storage,
            shards=shards,
        )
        self.engine = SimulationEngine(self.index, self.sim_config)
        self.cache = self.sim_config.build_cache(self.index)
        self.disk = self.sim_config.build_disk()
        if isinstance(self.disk, TieredStore):
            # Sessions would bind lazily, but the daemon serves pages from
            # its very first query -- materialize the page file up front so
            # a bad --pagefile fails at boot, not mid-request.
            self.disk.bind_page_table(self.index.page_table)
        self.pool = multiclient_sessions(
            self.dataset,
            n_clients=config.session_pool,
            seed=config.seed,
            n_queries=config.queries_per_session,
            volume=config.query_volume,
            mode=config.mode,
        )
        self._make_prefetcher = _prefetcher_factory(
            config.prefetcher, self.dataset, self.index
        )

        self.recorder = LatencyRecorder()
        self.intervals: list[LatencyReport] = []
        self.requests_admitted = 0
        self.requests_shed = 0
        self.sessions_completed = 0
        self.queue_depth_max = 0
        self._interval_depth_max = 0

        self._next_client_id = 0
        self._queue: asyncio.Queue[_Job | None] = asyncio.Queue(maxsize=config.max_queue)
        self._server: asyncio.AbstractServer | None = None
        self._worker_task: asyncio.Task | None = None
        self._reporter_task: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listener and start the worker (no reporter yet)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._worker_task = asyncio.create_task(self._worker())

    async def run_async(self, announce=None) -> dict:
        """Serve until drained; returns (and optionally writes) the final report.

        ``announce`` receives one JSON line per event (``ready``, each
        interval report, the final report) -- the daemon's stdout
        contract that the CI smoke job and the load generator parse.
        """
        if announce is None:
            announce = _print_line
        if self._server is None:
            await self.start()
        announce(
            json.dumps(
                {
                    "type": "ready",
                    "host": self.config.host,
                    "port": self.port,
                    "prefetcher": self.config.prefetcher,
                    "max_queue": self.config.max_queue,
                }
            )
        )
        self._reporter_task = asyncio.create_task(self._reporter(announce))
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown())
                )
        await self._stopped.wait()
        self._reporter_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reporter_task
        report = self.final_report()
        announce(json.dumps(report))
        if self.config.report_path is not None:
            path = Path(self.config.report_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return report

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, answer every queued request, stop.

        Idempotent; concurrent callers all return once the drain is done.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every already-admitted request still gets a real response.
        await self._queue.join()
        await self._queue.put(None)
        if self._worker_task is not None:
            await self._worker_task
        # Give per-connection responders a chance to flush the drained
        # replies before their sockets are closed under them.
        for _ in range(4):
            await asyncio.sleep(0)
        for writer in list(self._writers):
            with contextlib.suppress(ConnectionError):
                writer.close()
        if isinstance(self.disk, TieredStore):
            self.disk.close()
        self._stopped.set()

    def final_report(self) -> dict:
        """The end-of-run JSON report (also written to ``report_path``)."""
        total = self.recorder.total()
        return {
            "type": "final",
            "drained": self._stopped.is_set() or self._draining,
            "requests_admitted": self.requests_admitted,
            "requests_shed": self.requests_shed,
            "sessions_completed": self.sessions_completed,
            "queue_depth_max": self.queue_depth_max,
            "latency": total.summary(),
            "intervals": [r.summary() for r in self.intervals],
            "cache": {
                "capacity_pages": self.cache.capacity_pages,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "insertions": self.cache.insertions,
            },
            "faults_active": self.sim_config.faults is not None,
            "storage": self._storage_report(),
            "shards": self._shards_report(),
        }

    def _storage_report(self) -> dict:
        """The tiered-store slice of the final report (stats survive close)."""
        report: dict = {
            "backend": self.config.storage,
            "miss_path": self.config.miss_path,
            "tier_pages": self.config.tier_pages,
        }
        if isinstance(self.disk, TieredStore):
            ts = self.disk.tier_stats
            report.update(
                requests=ts.requests,
                tier_hits=ts.tier_hits,
                miss_path_hits=ts.mechanism_hits,
                backing_pages=ts.backing_pages,
                stall_seconds=ts.stall_seconds,
                torn_detected=ts.torn_detected,
                torn_repaired=ts.torn_repaired,
            )
        return report

    def _shards_report(self) -> dict:
        """The sharded-cache slice of the final report (``n_shards`` 0 = off)."""
        report: dict = {
            "n_shards": self.config.shards,
            "partition": self.config.partition,
        }
        if isinstance(self.cache, ShardedCache):
            report.update(
                per_shard=self.cache.per_shard_stats(),
                rebalance_events=self.cache.rebalance_events,
                pages_moved=self.cache.pages_moved,
                hops=self.cache.hops,
                hop_seconds=self.cache.hop_seconds,
            )
        return report

    # -- background tasks --------------------------------------------------------

    async def _worker(self) -> None:
        """Drain the admission queue, one query step at a time, in order."""
        while True:
            job = await self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                reply = self._execute(job.state)
                latency = time.perf_counter() - job.enqueued_at
                self.recorder.observe(latency)
                reply["latency_ms"] = 1e3 * latency
            except Exception as error:  # defensive: a session bug must not kill the loop
                self.recorder.count_error()
                reply = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            if not job.future.done():
                job.future.set_result(reply)
            self._queue.task_done()

    def _execute(self, state: _ConnectionState) -> dict:
        """Advance one session step (renewing an exhausted session in place)."""
        session = state.session
        if session.done:
            session = session.renew(state.make_prefetcher())
            state.session = session
            state.sessions_completed += 1
            self.sessions_completed += 1
        record = session.step_query()
        return {
            "ok": True,
            "client_id": state.client_id,
            "query_index": record.index,
            "pages_needed": record.pages_needed,
            "pages_hit": record.pages_hit,
            "prefetch_pages": record.prefetch_pages,
            "session_done": session.done,
            "sessions_completed": state.sessions_completed,
        }

    async def _reporter(self, announce) -> None:
        """Emit one interval latency report per ``report_interval`` seconds."""
        while True:
            await asyncio.sleep(self.config.report_interval)
            announce(json.dumps(self.interval_report()))

    def interval_report(self) -> dict:
        """Snapshot the open interval into a JSON report."""
        report = self.recorder.snapshot()
        self.intervals.append(report)
        depth_max = self._interval_depth_max
        self._interval_depth_max = 0
        return {
            "type": "interval",
            "interval": len(self.intervals) - 1,
            "queue_depth": self._queue.qsize(),
            "queue_depth_max": depth_max,
            "connections": len(self._writers),
            **report.summary(),
        }

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        responses: asyncio.Queue = asyncio.Queue()
        responder = asyncio.create_task(self._respond_loop(responses, writer))
        state: _ConnectionState | None = None
        shutdown_requested = False
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                op = frame.get("op")
                if op == "hello":
                    state = self._open_session()
                    await responses.put(
                        _done(
                            {
                                "ok": True,
                                "client_id": state.client_id,
                                "n_queries": len(state.session.sequence),
                                "prefetcher": self.config.prefetcher,
                            }
                        )
                    )
                elif op == "query":
                    await responses.put(self._admit(state))
                elif op == "stats":
                    await responses.put(_done(self._stats_reply()))
                elif op == "shutdown":
                    await responses.put(_done({"ok": True, "draining": True}))
                    shutdown_requested = True
                    break
                elif op == "bye":
                    await responses.put(_done({"ok": True, "bye": True}))
                    break
                else:
                    await responses.put(_done({"ok": False, "error": f"unknown op {op!r}"}))
        except ProtocolError as error:
            await responses.put(_done({"ok": False, "error": str(error)}))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await responses.put(None)
            with contextlib.suppress(ConnectionError):
                await responder
            self._writers.discard(writer)
            with contextlib.suppress(ConnectionError):
                writer.close()
            if shutdown_requested:
                # Trigger the drain only after the responder has flushed
                # the shutdown acknowledgement to the requester.
                await self.shutdown()

    def _open_session(self) -> _ConnectionState:
        client_id = self._next_client_id
        self._next_client_id += 1
        workload = self.pool[client_id % len(self.pool)]
        session = QuerySession(
            self.engine,
            workload.sequence,
            self._make_prefetcher(),
            cache=self.cache,
            disk=self.disk,
            client_id=client_id,
        )
        return _ConnectionState(client_id, session, self._make_prefetcher)

    def _admit(self, state: _ConnectionState | None) -> asyncio.Future:
        """Admission control: enqueue the query, or shed it immediately."""
        if state is None:
            return _done({"ok": False, "error": "query before hello"})
        if self._draining:
            return _done({"ok": False, "shed": True, "error": "draining"})
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        job = _Job(state, future, time.perf_counter())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.requests_shed += 1
            self.recorder.count_shed()
            return _done({"ok": False, "shed": True})
        self.requests_admitted += 1
        depth = self._queue.qsize()
        self.queue_depth_max = max(self.queue_depth_max, depth)
        self._interval_depth_max = max(self._interval_depth_max, depth)
        return future

    def _stats_reply(self) -> dict:
        return {
            "ok": True,
            "requests_admitted": self.requests_admitted,
            "requests_shed": self.requests_shed,
            "sessions_completed": self.sessions_completed,
            "queue_depth": self._queue.qsize(),
            "queue_depth_max": self.queue_depth_max,
            "connections": len(self._writers),
            "latency": self.recorder.total().summary(),
        }

    async def _respond_loop(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Write replies strictly in request order (futures resolve FIFO)."""
        while True:
            item = await responses.get()
            if item is None:
                return
            message = await item
            await write_frame(writer, message)


def _done(message: dict) -> asyncio.Future:
    """An already-resolved reply, so every response rides the same FIFO."""
    future: asyncio.Future = asyncio.get_running_loop().create_future()
    future.set_result(message)
    return future


def _print_line(line: str) -> None:
    print(line, flush=True)
