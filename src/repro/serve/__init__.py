"""Open-loop serving surface in front of the simulator (DESIGN.md §8).

The serving *simulator* (:mod:`repro.sim.serve`) is closed-loop: a
scheduler steps every client as fast as the CPU allows, and the
interesting outputs are hit rates.  This package is the open-loop
complement -- a real asyncio daemon (``scout-repro serve``) that
accepts client connections over a length-prefixed JSON protocol, runs
each connection as a resumable :class:`~repro.sim.engine.QuerySession`
against one shared cache and disk, and measures what hit rate alone
hides: wall-clock latency percentiles (p50/p99/p999), throughput, queue
depth, and admission-control behavior under Poisson and bursty arrivals
(``scout-repro loadgen``).
"""

from repro.serve.daemon import DaemonConfig, ServeDaemon
from repro.serve.latency import LatencyRecorder
from repro.serve.loadgen import bursty_arrivals, poisson_arrivals, run_loadgen
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "DaemonConfig",
    "LatencyRecorder",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServeDaemon",
    "bursty_arrivals",
    "decode_frame",
    "encode_frame",
    "poisson_arrivals",
    "read_frame",
    "run_loadgen",
    "write_frame",
]
