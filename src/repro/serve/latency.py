"""Interval latency recording for the serving daemon.

The daemon measures one wall-clock latency per served request (enqueue
to response-ready, so queueing delay is included) and reports
percentiles per reporting interval.  :class:`LatencyRecorder` is the
accumulation side: it buckets samples between snapshots and emits
:class:`~repro.sim.metrics.LatencyReport` instances, whose associative
:meth:`~repro.sim.metrics.LatencyReport.merge` folds the interval
reports into the run total -- the total always equals one report
computed over every sample, however the intervals were cut.
"""

from __future__ import annotations

import time

from repro.sim.metrics import LatencyReport

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Accumulates latency samples and shed/error counts between snapshots."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._samples: list[float] = []
        self._shed = 0
        self._errors = 0
        self._interval_started = clock()
        self._total = LatencyReport(samples=())

    def observe(self, seconds: float) -> None:
        """Record one served request's latency."""
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self._samples.append(float(seconds))

    def count_shed(self) -> None:
        """Record one request rejected by admission control."""
        self._shed += 1

    def count_error(self) -> None:
        """Record one request that failed outright."""
        self._errors += 1

    @property
    def interval_count(self) -> int:
        """Samples accumulated since the last snapshot."""
        return len(self._samples)

    def snapshot(self) -> LatencyReport:
        """Emit the current interval's report and start a new interval.

        The emitted report is also merged into :meth:`total`, so the
        lifetime view is maintained through exactly the associative-merge
        path the tests pin.
        """
        now = self._clock()
        report = LatencyReport.from_values(
            self._samples,
            shed=self._shed,
            errors=self._errors,
            duration_seconds=max(0.0, now - self._interval_started),
        )
        self._samples = []
        self._shed = 0
        self._errors = 0
        self._interval_started = now
        self._total = self._total.merge(report)
        return report

    def total(self) -> LatencyReport:
        """Lifetime report: every snapshotted interval plus the open one.

        The open interval is folded in without resetting it, so calling
        ``total()`` never perturbs the interval cadence.
        """
        open_interval = LatencyReport.from_values(
            self._samples,
            shed=self._shed,
            errors=self._errors,
            duration_seconds=max(0.0, self._clock() - self._interval_started),
        )
        return self._total.merge(open_interval)
