"""Length-prefixed JSON framing for the serving daemon.

One frame = a 4-byte big-endian payload length followed by a UTF-8
JSON object.  Explicit framing (instead of newline-delimited JSON)
keeps the reader trivial under pipelining: the open-loop load generator
writes many request frames before reading any response, and the daemon
answers each connection's frames strictly in order, so a frame boundary
error can never smear across requests.

Message vocabulary (``op`` field):

=============  =========================================================
``hello``      open a session; reply carries ``client_id`` and the
               session's query count
``query``      advance the connection's session one query; reply carries
               the query's accounting (or ``shed: true`` under admission
               control)
``stats``      current interval/total latency summaries and queue depth
``shutdown``   graceful drain: stop accepting, finish queued requests,
               then exit
``bye``        close this connection
=============  =========================================================

Every reply carries ``ok`` (bool); error replies add ``error`` (str).
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "write_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; a peer announcing more is broken
#: (or hostile) and gets disconnected instead of an unbounded read.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A malformed frame: oversized, truncated, or not a JSON object."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its wire form (header + JSON payload)."""
    payload = json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame payload of {len(payload)} bytes exceeds the limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame's payload; raises :class:`ProtocolError` when bad."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload must be a JSON object, got {type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one message; ``None`` on clean EOF at a frame boundary."""
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_frame(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()
