"""Mobile-map prefetching on a road network (paper §8.4).

The non-scientific use case: a navigation device fetches map data along
the route the driver follows.  Prefetch memory on the device is scarce,
so accuracy matters.  This script runs the comparison on a synthetic
planar road network with 2D Hilbert values and planar range queries.

Run:  python examples/road_network_prefetch.py

Roads are one column of the Figure-17 applicability grid; sweep the
whole figure (and compact the store after long resumed runs) with:

    scout-repro sweep --figure 17 --datasets roads --jobs 4 \
        --out results/fig17_sweep.jsonl
    scout-repro compact results/fig17_sweep.jsonl
"""

from repro.baselines import EWMAPrefetcher, HilbertPrefetcher, StraightLinePrefetcher
from repro.core import ScoutPrefetcher
from repro.datagen import make_road_network
from repro.index import FlatIndex
from repro.sim import SimulationConfig, run_experiment
from repro.workload import generate_sequences


def main() -> None:
    roads = make_road_network(grid_size=14, seed=3)
    extent = roads.bounds.extent
    print(f"Road network: {roads.n_objects:,} segments over "
          f"{extent[0]:.0f} x {extent[1]:.0f} map units")
    index = FlatIndex(roads, fanout=16)

    # Viewport-sized queries along routes (area in squared map units).
    area = (extent[0] * 0.06) ** 2
    sequences = generate_sequences(
        roads, n_sequences=6, seed=3, n_queries=25, volume=area, window_ratio=1.0
    )
    print(f"Workload: 25-query route sequences, viewport ~{area ** 0.5:.0f} units wide\n")

    # A small device cache makes prefetch accuracy decisive.
    config = SimulationConfig(cache_capacity_pages=max(64, index.n_pages // 20))

    prefetchers = [
        StraightLinePrefetcher(),
        EWMAPrefetcher(lam=0.3),
        HilbertPrefetcher(roads),
        ScoutPrefetcher(roads),
    ]
    print(f"{'prefetcher':16s}{'cache hit rate':>16s}{'speedup':>10s}")
    for prefetcher in prefetchers:
        result = run_experiment(index, sequences, prefetcher, config=config)
        print(
            f"{prefetcher.name:16s}{100 * result.cache_hit_rate:15.1f}%"
            f"{result.speedup:9.2f}x"
        )
    print(
        "\nRoads are graphs, not smooth curves: SCOUT follows the route's"
        "\ngeometry through turns and junctions where extrapolation points"
        "\noff the road."
    )


if __name__ == "__main__":
    main()
