"""Eight concurrent clients vs a shrinking shared prefetch cache.

The paper serves one interactive client from a private cache; a
deployment multiplexes many users over the same cache and disk.  This
script runs 8 staggered navigation sessions on synthetic neuron tissue
through the serving layer (DESIGN.md §6) and shows how SCOUT's and
EWMA's *aggregate* hit rates hold while the shared cache has headroom,
then collapse together once 8 working sets no longer fit -- plus the
contention counters that explain why (cross-client hits, misses caused
by eviction pressure).

Run:  python examples/multiclient_serving.py

The full client-scaling grid (1..16 clients x prefetchers x cache
sizes, resumable and parallel) is the sweep engine's job:

    scout-repro sweep --figure clients --jobs 4 --out results/clients.jsonl
"""

from repro.baselines import EWMAPrefetcher
from repro.core import ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import ServingSimulator, SimulationConfig
from repro.workload import multiclient_sessions

N_CLIENTS = 8


def main() -> None:
    tissue = make_neuron_tissue(n_neurons=40, seed=7)
    index = FlatIndex(tissue, fanout=16)
    auto_pages = SimulationConfig().cache_capacity_for(index)
    print(f"Neuron tissue: {tissue.n_objects:,} objects across {index.n_pages:,} pages")
    print(f"{N_CLIENTS} clients, staggered arrivals, one shared cache + disk\n")

    clients = multiclient_sessions(
        tissue, n_clients=N_CLIENTS, seed=21, n_queries=25, volume=80_000.0, stagger=1
    )
    prefetcher_kinds = {
        "ewma-0.3": lambda: EWMAPrefetcher(lam=0.3),
        "scout": lambda: ScoutPrefetcher(tissue),
    }

    header = f"{'shared cache':>14s}" + "".join(f"{name:>12s}" for name in prefetcher_kinds)
    print(header + f"{'cross-hits':>12s}{'evict-miss':>12s}")
    for capacity in (auto_pages, 256, 128, 64):
        row = f"{capacity:>8d} pages"
        cross = evicted = 0
        for make_prefetcher in prefetcher_kinds.values():
            simulator = ServingSimulator(
                index, SimulationConfig(cache_capacity_pages=capacity)
            )
            report = simulator.run(clients, [make_prefetcher() for _ in clients])
            row += f"{100 * report.aggregate_hit_rate:11.1f}%"
            cross, evicted = report.cross_client_hits, report.evicted_misses
        print(row + f"{cross:>12d}{evicted:>12d}")  # contention from the scout run

    print(
        "\nWith headroom, per-client accuracy matches the single-client"
        "\nexperiments; once eight working sets outgrow the cache, eviction"
        "\npressure (right column) erases prefetched pages before their"
        "\nclient returns for them and every method degrades together."
    )


if __name__ == "__main__":
    main()
