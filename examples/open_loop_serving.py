"""The serving daemon under open-loop load: percentiles, bursts, shedding.

Boots the ``scout-repro serve`` daemon in-process on an ephemeral port
and drives it three ways (DESIGN.md §8):

1. a smooth seeded Poisson load at a sustainable rate — the baseline
   latency distribution;
2. the *same* offered rate as an on/off bursty process — same average
   load, much heavier tail, which is exactly what mean-latency
   reporting hides and p99/p999 expose;
3. a deliberate overload against a tiny admission queue — the daemon
   sheds loudly (fast ``shed: true`` replies, exact counts) instead of
   letting the queue backlog poison every later request's latency.

Run with::

    PYTHONPATH=src python examples/open_loop_serving.py
"""

from __future__ import annotations

import asyncio

from repro.serve import DaemonConfig, ServeDaemon, run_loadgen


def show(title: str, report: dict) -> None:
    latency = report["latency"]
    print(f"\n{title}")
    print(
        f"  requests {report['requests']:4d}   ok {report['ok']:4d}   "
        f"shed {report['shed']:3d}   errors {report['errors']}"
    )
    print(
        f"  p50 {latency['p50_ms']:7.2f} ms   p99 {latency['p99_ms']:7.2f} ms   "
        f"p999 {latency['p999_ms']:7.2f} ms   max {latency['max_ms']:7.2f} ms"
    )
    print(
        f"  achieved {report['achieved_qps']:,.0f} q/s over "
        f"{report['elapsed_seconds']:.2f} s"
    )


async def drive(config: DaemonConfig, title: str, **load) -> None:
    daemon = ServeDaemon(config)
    await daemon.start()
    try:
        report = await run_loadgen("127.0.0.1", daemon.port, **load)
        show(title, report)
        final = daemon.final_report()
        print(
            f"  daemon: admitted {final['requests_admitted']}, "
            f"shed {final['requests_shed']}, "
            f"peak queue depth {final['queue_depth_max']}, "
            f"sessions completed {final['sessions_completed']}"
        )
    finally:
        await daemon.shutdown()


async def main() -> None:
    config = DaemonConfig(
        port=0,
        n_neurons=8,
        session_pool=4,
        queries_per_session=12,
        max_queue=64,
        report_interval=3600.0,
    )

    await drive(
        config,
        "Poisson @ 300/s (smooth, sustainable)",
        connections=4,
        process="poisson",
        rate=300.0,
        requests=300,
        seed=42,
    )

    await drive(
        config,
        "Bursty @ 300/s average (8x storms -- same load, heavier tail)",
        connections=4,
        process="bursty",
        rate=300.0,
        requests=300,
        seed=42,
        burst=8.0,
    )

    await drive(
        DaemonConfig(
            port=0,
            n_neurons=8,
            session_pool=4,
            queries_per_session=12,
            max_queue=4,
            report_interval=3600.0,
        ),
        "Overload vs max_queue=4 (admission control sheds, loudly)",
        connections=4,
        process="poisson",
        rate=100_000.0,
        requests=300,
        seed=7,
    )

    print(
        "\nSame seed, same request count, every run -- only the wall-clock"
        "\nlatencies vary.  The bursty tail and the shed counts are the two"
        "\nthings a closed-loop (issue, wait, repeat) harness cannot see."
    )


if __name__ == "__main__":
    asyncio.run(main())
