"""Serving through a failing disk: hit rate vs fault rate, breaker on/off.

The simulated disk normally never fails; a deployment's disks time out,
stall, and deliver torn pages.  This script wraps the serving layer's
shared disk in a seeded `FaultyDiskModel` (DESIGN.md §7) and walks the
fault-rate ladder twice -- once with each client's circuit breaker
armed, once without -- to show the trade the breaker makes: when the
disk degrades hard, breaking to demand paging gives up prefetch hit
rate in exchange for *not* paying retry storms and failed prefetch
windows on every query.

Run:  python examples/chaos_serving.py

The full chaos grid (fault rate x prefetcher x breaker, resumable and
parallel) is the sweep engine's job:

    scout-repro sweep --figure chaos --jobs 4 --out results/chaos.jsonl
"""

from repro.baselines import EWMAPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import ServingSimulator, SimulationConfig
from repro.storage import FaultPlan
from repro.workload import multiclient_sessions

N_CLIENTS = 4
FAULT_RATES = (0.0, 0.2, 0.5, 0.7)


def main() -> None:
    tissue = make_neuron_tissue(n_neurons=24, seed=7)
    index = FlatIndex(tissue, fanout=16)
    print(f"Neuron tissue: {tissue.n_objects:,} objects across {index.n_pages:,} pages")
    print(
        f"{N_CLIENTS} hotspot clients, one shared cache + one *faulty* disk\n"
        "(transient read errors at the listed rate; torn pages and\n"
        "latency spikes at half of it; all draws seeded)\n"
    )

    clients = multiclient_sessions(
        tissue, n_clients=N_CLIENTS, seed=21, n_queries=25,
        volume=80_000.0, mode="hotspot", stagger=1,
    )

    header = (
        f"{'fault rate':>10s}{'breaker':>9s}{'hit rate':>10s}"
        f"{'failed':>8s}{'degraded':>10s}{'opens':>7s}"
    )
    print(header)
    for breaker in (True, False):
        for rate in FAULT_RATES:
            plan = FaultPlan(
                transient_rate=rate, corrupt_rate=rate / 2,
                latency_rate=rate / 2, seed=11, breaker=breaker,
            )
            simulator = ServingSimulator(index, SimulationConfig(faults=plan))
            report = simulator.run(clients, [EWMAPrefetcher(lam=0.3) for _ in clients])
            print(
                f"{rate:>10.1f}{'on' if breaker else 'off':>9s}"
                f"{100 * report.aggregate_hit_rate:>9.1f}%"
                f"{report.failed_reads:>8d}{report.degraded_ticks:>10d}"
                f"{report.breaker_opens:>7d}"
            )
        print()

    print(
        "Reading the table: retries and backoff are charged as simulated\n"
        "time, so moderate fault rates only dent the hit rate.  At high\n"
        "rates the breaker trips (opens > 0) and degraded clients stop\n"
        "prefetching entirely -- lower hit rate than the breaker-off rows,\n"
        "but each degraded query pays plain demand-paging cost instead of\n"
        "retry storms inside doomed prefetch windows."
    )


if __name__ == "__main__":
    main()
