"""Serving over tiered storage: miss-path mechanisms and a real page file.

Everything upstream treats storage as an analytic cost counter; the
tiered subsystem (DESIGN.md §9) adds a second cache tier between the
prefetch cache and the disk, with the miss path modeled as a pluggable
mechanism (victim buffer / miss cache / stream buffer, after the
classic SimpleScalar taxonomy), and -- with the ``mmap`` backend -- a
real checksummed on-disk page file serving actual bytes.

The script first walks the miss-path ladder over a shared hotspot
fleet, showing how each mechanism absorbs backing-store reads, then
builds an mmap page file, *tears a slot the honest way* (a child
process dies mid-write with ``os._exit``) and lets the store detect
and repair it on the read path.

Run:  python examples/tiered_serving.py

The full tiers grid (prefetcher x miss path x tier size, resumable and
parallel) is the sweep engine's job:

    scout-repro sweep --figure tiers --jobs 4 --out results/tiers.jsonl
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.baselines import EWMAPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import ServingSimulator, SimulationConfig
from repro.storage import MISS_PATHS, PageFile, StorageSpec, TieredStore
from repro.storage.disk import DiskModel

N_CLIENTS = 4
TIER_PAGES = 16

#: A writer that really dies mid-write, leaving a torn slot behind.
_CRASH_WRITER = """
import sys
import numpy as np
from repro.storage.pagefile import PageFile

pf = PageFile(sys.argv[1])
pf.write_page(int(sys.argv[2]), np.array([1, 2, 3]), crash_after="payload")
"""


def main() -> None:
    tissue = make_neuron_tissue(n_neurons=24, seed=7)
    index = FlatIndex(tissue, fanout=16)
    print(f"Neuron tissue: {tissue.n_objects:,} objects across {index.n_pages:,} pages")
    print(
        f"{N_CLIENTS} hotspot clients, one shared cache, and a "
        f"{TIER_PAGES}-page storage tier\nin front of the disk; the miss "
        "path between tier and disk varies per row\n"
    )

    from repro.workload import multiclient_sessions

    clients = multiclient_sessions(
        tissue, n_clients=N_CLIENTS, seed=21, n_queries=25,
        volume=80_000.0, mode="hotspot", stagger=1,
    )

    print(
        f"{'miss path':>10s}{'hit rate':>10s}{'tier hits':>11s}"
        f"{'mech hits':>11s}{'backing':>9s}"
    )
    for path in MISS_PATHS:
        spec = StorageSpec(miss_path=path, tier_pages=TIER_PAGES)
        simulator = ServingSimulator(index, SimulationConfig(storage=spec))
        report = simulator.run(clients, [EWMAPrefetcher(lam=0.3) for _ in clients])
        print(
            f"{path:>10s}{100 * report.aggregate_hit_rate:>9.1f}%"
            f"{report.tier_hits:>11d}{report.miss_path_hits:>11d}"
            f"{report.tier_fills:>9d}"
        )
    print(
        "\nEach requested page resolves at exactly one layer, so tier hits\n"
        "+ mechanism hits + backing fills partition the request stream.\n"
        "The stream buffer shines on sequential runs, the victim buffer on\n"
        "re-references the small tier just evicted.\n"
    )

    # -- the mmap backend: real bytes, torn-write repair -------------------
    page_table = index.page_table
    with tempfile.TemporaryDirectory(prefix="scout-tiered-") as tmp:
        path = Path(tmp) / "pages.pf"
        PageFile.create(path, page_table).close()
        print(f"Page file: {path.stat().st_size:,} bytes for {page_table.n_pages} slots")

        # A child process dies with os._exit in the middle of rewriting
        # slot 3 -- the same crash the format is built to survive.
        subprocess.run(
            [sys.executable, "-c", _CRASH_WRITER, str(path), "3"],
            capture_output=True,
        )
        with PageFile(path) as probe:
            print(f"After the crashed writer: torn slots = {probe.scan_torn()}")

        store = TieredStore(
            DiskModel(), StorageSpec(backend="mmap", path=str(path)),
            page_table=page_table,
        )
        store.read_pages([3])
        ts = store.tier_stats
        print(
            f"Read through the store: torn detected = {ts.torn_detected}, "
            f"repaired = {ts.torn_repaired}"
        )
        with PageFile(path) as probe:
            print(f"After read-repair: torn slots = {probe.scan_torn()}")
        store.close()
    print(
        "\nTorn bytes are never served: the checksum rejects the slot, the\n"
        "page table repairs it, and the re-read is charged as simulated\n"
        "time -- the same read-repair shape as the fault plane's."
    )


if __name__ == "__main__":
    main()
