"""Explicit graph representations: SCOUT on a lung airway surface mesh.

§4.2: when the dataset already has an underlying graph (polygon meshes
store faces referencing shared vertices), SCOUT extracts the structure
graph directly from the mesh adjacency and skips grid hashing entirely.
This script compares the two construction paths on the same airway mesh
and then runs the full prefetching pipeline on it.

Run:  python examples/lung_mesh_explicit_graph.py

The lung mesh is one column of the Figure-17 applicability grid; run
the full cross-domain comparison with:

    scout-repro sweep --figure 17 --jobs 4 --out results/fig17_sweep.jsonl
"""

import numpy as np

from repro.baselines import EWMAPrefetcher
from repro.core import ScoutPrefetcher
from repro.datagen import make_lung_airways
from repro.geometry import AABB
from repro.graph import build_graph_explicit, build_graph_grid_hash
from repro.index import FlatIndex
from repro.sim import run_experiment
from repro.workload import generate_sequences


def main() -> None:
    lung = make_lung_airways(seed=2)
    print(f"Lung airway mesh: {lung.n_objects:,} triangle faces, "
          f"{len(lung.explicit_edges):,} face-adjacency links")
    index = FlatIndex(lung, fanout=16)

    # Compare the two graph-construction paths on one query result,
    # probing at a face centroid so the region is guaranteed non-empty.
    probe_center = lung.centroids[lung.n_objects // 2]
    region = AABB.cube(probe_center, float(np.prod(lung.bounds.extent)) * 1e-4)
    result = index.query(region)
    if result.n_objects:
        explicit = build_graph_explicit(lung, result.object_ids)
        hashed = build_graph_grid_hash(lung, result.object_ids, region)
        print(f"\nOne query result ({result.n_objects} faces):")
        print(f"  explicit mesh adjacency : {explicit.graph.n_edges:5d} edges, "
              f"{1000 * explicit.wall_seconds:.2f} ms")
        print(f"  grid hashing (fallback) : {hashed.graph.n_edges:5d} edges, "
              f"{1000 * hashed.wall_seconds:.2f} ms")

    volume = float(np.prod(lung.bounds.extent)) * 2e-4
    sequences = generate_sequences(lung, n_sequences=5, seed=2, n_queries=25, volume=volume)
    print(f"\nPrefetching along airway tracks ({len(sequences)} sequences):")
    for prefetcher in (EWMAPrefetcher(lam=0.3), ScoutPrefetcher(lung)):
        outcome = run_experiment(index, sequences, prefetcher)
        print(f"  {prefetcher.name:10s}: {100 * outcome.cache_hit_rate:5.1f}% hits, "
              f"{outcome.speedup:.2f}x speedup")
    print(
        "\nThe Dataset carries `explicit_edges`, so ScoutPrefetcher's graph"
        "\nbuilder dispatches to the mesh-adjacency path automatically."
    )


if __name__ == "__main__":
    main()
