"""Walkthrough visualization: watch SCOUT converge on the guiding fiber.

Reproduces the paper's §3.1 "walkthrough visualization" use case: a
neuroscientist flies along a neuron fiber issuing view-frustum queries.
The script traces SCOUT's internals query by query -- candidate-set
size, resets, prefetched pages, hits -- showing iterative candidate
pruning (§4.3) converge to the one structure being followed.

Run:  python examples/neuroscience_walkthrough.py
"""

from repro.core import ScoutConfig, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import SimulationEngine
from repro.workload import microbenchmark


def main() -> None:
    tissue = make_neuron_tissue(n_neurons=40, seed=21)
    index = FlatIndex(tissue, fanout=16)
    spec = microbenchmark("vis_high")
    print(f"Workload: {spec.label} ({spec.n_queries} frustum queries of "
          f"{spec.volume:,.0f} µm³, ratio {spec.window_ratio})\n")

    (sequence,) = spec.generate(tissue, n_sequences=1, seed=4)
    scout = ScoutPrefetcher(tissue, ScoutConfig())
    engine = SimulationEngine(index)
    metrics = engine.run(sequence, scout)

    print(f"{'query':>5s} {'result':>7s} {'cands':>6s} {'prefetch':>9s} "
          f"{'hit':>7s} {'window ms':>10s}")
    for record in metrics.records[:20]:
        hit_pct = (
            100.0 * record.objects_hit / record.objects_needed
            if record.objects_needed
            else 0.0
        )
        print(
            f"{record.index:5d} {record.n_result_objects:7d} "
            f"{record.n_candidates:6d} {record.prefetch_pages:9d} "
            f"{hit_pct:6.1f}% {1000 * record.window_seconds:10.2f}"
        )
    print("  ... (sequence continues)")

    sizes = scout.tracker.candidate_sizes
    print(f"\ncandidate-set sizes along the sequence: {sizes[:15]} ...")
    print(f"resets (user switched structure): {scout.tracker.resets}")
    print(f"\nsequence cache hit rate : {100 * metrics.cache_hit_rate:.1f}%")
    print(f"sequence speedup        : {metrics.speedup:.2f}x vs no prefetching")
    print(
        "\nNote how the candidate set collapses within a few queries "
        "('oftentimes the structure followed is identified after six "
        "queries', §4.3) and the hit rate rises once it does."
    )


if __name__ == "__main__":
    main()
