"""The paper's honest negative result: smooth arteries favour EWMA.

Figure 17(a) reports that on the pig-heart arterial tree with *small*
queries, EWMA (96 %) beats SCOUT (90 %): arterial branches are smooth
enough for weighted-movement extrapolation to be nearly perfect.  With
*large* queries the branches bifurcate inside the query and SCOUT takes
the lead again.  This script reproduces both regimes side by side.

Run:  python examples/arterial_vs_ewma.py

The full Figure-17 comparison (both regimes, all three cross-domain
datasets, the standard prefetcher set, resumable and parallel) is the
sweep engine's job:

    scout-repro sweep --figure 17 --jobs 4 --out results/fig17_sweep.jsonl
"""

import numpy as np

from repro.baselines import EWMAPrefetcher
from repro.core import ScoutPrefetcher
from repro.datagen import make_arterial_tree
from repro.index import FlatIndex
from repro.sim import run_experiment
from repro.workload import generate_sequences


def main() -> None:
    arterial = make_arterial_tree(seed=9)
    print(f"Arterial tree: {arterial.n_objects:,} cylinders "
          f"(smooth, low-curvature branches)")
    index = FlatIndex(arterial, fanout=16)

    dataset_volume = float(np.prod(arterial.bounds.extent))
    # §8.4: small queries are a tiny fraction of the dataset volume,
    # large ones three orders of magnitude bigger.
    floor = 60.0 / max(arterial.density(), 1e-12)
    regimes = {
        "small queries": max(dataset_volume * 5e-7, floor),
        "large queries": max(dataset_volume * 5e-4, floor * 8),
    }

    for label, volume in regimes.items():
        sequences = generate_sequences(
            arterial, n_sequences=6, seed=9, n_queries=25, volume=volume
        )
        ewma = run_experiment(index, sequences, EWMAPrefetcher(lam=0.3))
        scout = run_experiment(index, sequences, ScoutPrefetcher(arterial))
        print(f"\n{label} (volume {volume:,.0f}):")
        print(f"  ewma-0.3 : {100 * ewma.cache_hit_rate:5.1f}%  "
              f"({ewma.speedup:.2f}x)")
        print(f"  scout    : {100 * scout.cache_hit_rate:5.1f}%  "
              f"({scout.speedup:.2f}x)")

    print(
        "\nSmooth structures are extrapolation's home turf (paper §8.5);"
        "\nonce queries are large enough to contain bends and bifurcations,"
        "\ncontent-based prediction wins again."
    )


if __name__ == "__main__":
    main()
