"""Serving over a sharded cache: hot shard found, split moved, load spread.

Everything upstream funnels every client through ONE shared cache; the
sharded data plane (DESIGN.md §10) range-partitions the page space
along the page table's Hilbert keys into K cache shards -- each its
own simulated node with its own memory -- behind the same observable
cache contract.

The script makes the scale-out story concrete with a deliberately
skewed fleet: Zipf-hotspot clients hammer one sequence, so under a
static partition one shard takes nearly the whole demand stream while
its siblings idle.  It then arms the hot-shard rebalancer (an EWMA
detector plus a deterministic split-point mover) and shows the split
keys migrate, cached pages follow their new owners, and the per-shard
request balance -- and with it the aggregate hit rate -- recovers.

Run:  python examples/sharded_serving.py

The full shards grid (clients x shard count x partition x prefetcher,
resumable and parallel) is the sweep engine's job:

    scout-repro sweep --figure shards --jobs 4 --out results/shards.jsonl
"""

from repro.baselines import EWMAPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import ServingSimulator, SimulationConfig
from repro.storage.sharded import ShardSpec
from repro.workload import multiclient_sessions

N_CLIENTS = 16
N_SHARDS = 4
PAGES_PER_SHARD = 8


def serve(index, clients, spec):
    config = SimulationConfig(
        cache_capacity_pages=N_SHARDS * PAGES_PER_SHARD, shards=spec
    )
    simulator = ServingSimulator(index, config)
    return simulator.run(clients, [EWMAPrefetcher(lam=0.3) for _ in clients])


def shard_table(report) -> str:
    rows = [f"{'shard':>8s}{'requests':>10s}{'hits':>7s}{'share':>8s}"]
    total = sum(report.shard_requests)
    for shard, (requests, hits) in enumerate(
        zip(report.shard_requests, report.shard_hits)
    ):
        share = 0.0 if total == 0 else requests / total
        rows.append(f"{shard:>8d}{requests:>10d}{hits:>7d}{100 * share:>7.1f}%")
    return "\n".join(rows)


def main() -> None:
    tissue = make_neuron_tissue(n_neurons=24, seed=7)
    index = FlatIndex(tissue, fanout=16)
    print(f"Neuron tissue: {tissue.n_objects:,} objects across {index.n_pages:,} pages")
    print(
        f"{N_CLIENTS} hotspot clients share one hot sequence; the cache is "
        f"{N_SHARDS} Hilbert-partitioned\nshards of {PAGES_PER_SHARD} pages "
        "each (DESIGN.md §10).\n"
    )

    clients = multiclient_sessions(
        tissue, n_clients=N_CLIENTS, seed=21, n_queries=25,
        volume=80_000.0, mode="hotspot", stagger=0, hot_pool=1,
    )

    static = serve(index, clients, ShardSpec(n_shards=N_SHARDS))
    print("Static partition -- the hot sequence lives on one shard:")
    print(shard_table(static))
    print(
        f"aggregate hit rate {100 * static.aggregate_hit_rate:.1f}%, "
        f"rebalances {static.shard_rebalances}\n"
    )

    rebalanced = serve(
        index,
        clients,
        ShardSpec(n_shards=N_SHARDS, rebalance=True, rebalance_interval=8),
    )
    print("Rebalancer armed -- the hot shard donates half its key range:")
    print(shard_table(rebalanced))
    print(
        f"aggregate hit rate {100 * rebalanced.aggregate_hit_rate:.1f}%, "
        f"rebalances {rebalanced.shard_rebalances}, "
        f"pages moved {rebalanced.shard_pages_moved}"
    )

    static_max = max(static.shard_requests) / max(1, sum(static.shard_requests))
    moved_max = max(rebalanced.shard_requests) / max(1, sum(rebalanced.shard_requests))
    print(
        f"\nHottest-shard load share: {100 * static_max:.1f}% -> "
        f"{100 * moved_max:.1f}%.\n"
        "The detector is an EWMA of per-batch shard load; the mover cuts the\n"
        "hot shard's key range at its median owned key and hands the released\n"
        "half to the colder neighbor, migrating cached pages with their LRU\n"
        "position and owner tags.  Every step is a pure function of the touch\n"
        "sequence, so both serving schedulers rebalance identically -- run\n"
        "the sweep with --lockstep and the reports match bit for bit."
    )


if __name__ == "__main__":
    main()
