"""Quickstart: compare SCOUT against the baselines on one workload.

Generates a small synthetic brain tissue, indexes it, runs the paper's
"ad-hoc queries" microbenchmark with every prefetcher and prints the
cache hit rate and speedup of each -- a miniature Figure 11 column.

Run:  python examples/quickstart.py
"""

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    NoPrefetcher,
    StraightLinePrefetcher,
)
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import run_experiment
from repro.workload import microbenchmark


def main() -> None:
    print("Generating synthetic neuron tissue ...")
    tissue = make_neuron_tissue(n_neurons=40, seed=7)
    print(f"  {tissue.n_objects:,} cylinders, bounds extent "
          f"{tissue.bounds.extent.round(0)} µm")

    print("Bulk-loading the FLAT index (STR pages + neighborhood links) ...")
    index = FlatIndex(tissue, fanout=16)
    print(f"  {index.n_pages:,} pages")

    spec = microbenchmark("adhoc_stat")
    print(f"Workload: {spec.label} -- {spec.n_queries} queries of "
          f"{spec.volume:,.0f} µm³, window ratio {spec.window_ratio}")
    sequences = spec.generate(tissue, n_sequences=5, seed=7)

    prefetchers = [
        NoPrefetcher(),
        StraightLinePrefetcher(),
        EWMAPrefetcher(lam=0.3),
        HilbertPrefetcher(tissue),
        ScoutPrefetcher(tissue, ScoutConfig()),
        ScoutOptPrefetcher(tissue, index, ScoutConfig()),
    ]

    print(f"\n{'prefetcher':16s}{'cache hit rate':>16s}{'speedup':>10s}")
    for prefetcher in prefetchers:
        result = run_experiment(index, sequences, prefetcher)
        print(
            f"{prefetcher.name:16s}{100 * result.cache_hit_rate:15.1f}%"
            f"{result.speedup:9.2f}x"
        )

    print(
        "\nSCOUT identifies the guiding structure from the query *content*"
        "\n(a proximity graph of the results) instead of extrapolating query"
        "\npositions -- which is why it stays accurate where the fiber bends."
    )


if __name__ == "__main__":
    main()
