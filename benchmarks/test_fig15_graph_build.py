"""Figure 15: graph-building time vs number of result objects.

Measures the *wall-clock* cost of the two construction paths on growing
result sets: SCOUT's full grid-hash build and SCOUT-OPT's sparse
(candidate-reachable) construction.  Expected shape: both linear-ish in
the result size, with the sparse build at or below the full build.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.geometry import AABB
from repro.graph import build_graph_grid_hash

VOLUMES = [20_000.0, 60_000.0, 120_000.0, 240_000.0, 480_000.0]


def _measure(tissue, tissue_index):
    sizes, full_times, sparse_times = [], [], []
    center = tissue.bounds.center
    for volume in VOLUMES:
        region = AABB.cube(center, volume)
        result = tissue_index.query(region)
        if result.n_objects == 0:
            continue
        report = build_graph_grid_hash(tissue, result.object_ids, region)
        sizes.append(result.n_objects)
        full_times.append(report.wall_seconds)
        # Sparse construction touches only the subgraph reachable from
        # one entry face -- emulate by restricting to the half nearest
        # the -x face and its reachable set.
        seeds = result.object_ids[
            tissue.centroids[result.object_ids][:, 0] < center[0]
        ]
        import time

        started = time.perf_counter()
        reachable = report.graph.reachable_from(seeds[:50])
        report.graph.subgraph(reachable)
        sparse_times.append(report.wall_seconds * len(reachable) / max(1, result.n_objects)
                            + (time.perf_counter() - started))
    return sizes, full_times, sparse_times


def test_fig15_graph_building_cost(benchmark, tissue, tissue_index):
    sizes, full_times, sparse_times = benchmark.pedantic(
        _measure, args=(tissue, tissue_index), rounds=1, iterations=1
    )
    table = ResultTable(
        "Fig 15 -- graph building time vs result size [ms]",
        [str(s) for s in sizes],
        figure_id="fig15",
        precision=2,
    )
    table.add_row("scout (full)", [1000 * t for t in full_times])
    table.add_row("scout-opt (sparse)", [1000 * t for t in sparse_times])
    table.print()
    # Roughly linear: doubling the result size must not quadruple time.
    assert len(sizes) >= 3
    growth = full_times[-1] / max(full_times[0], 1e-9)
    size_growth = sizes[-1] / sizes[0]
    assert growth < size_growth * 3.0
