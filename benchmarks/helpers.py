"""Common helpers for the figure benchmarks."""

from __future__ import annotations

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    StraightLinePrefetcher,
)
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.sim import ExperimentResult, run_experiment
from repro.workload.sweeps import scale_factor

#: Sequences per experiment cell (scaled by REPRO_SCALE).  The paper
#: uses 30-50; the default keeps the full suite laptop-sized while
#: remaining statistically stable at page granularity.
BASE_SEQUENCES = 6


def n_sequences() -> int:
    return max(2, int(round(BASE_SEQUENCES * scale_factor())))


def standard_prefetchers(dataset, index) -> dict[str, object]:
    """The comparison set of Figures 11, 12 and 17."""
    return {
        "ewma-0.3": EWMAPrefetcher(lam=0.3),
        "straight-line": StraightLinePrefetcher(),
        "hilbert": HilbertPrefetcher(dataset),
        "scout": ScoutPrefetcher(dataset, ScoutConfig()),
    }


def scout_only(dataset) -> ScoutPrefetcher:
    return ScoutPrefetcher(dataset, ScoutConfig())


def scout_opt(dataset, index) -> ScoutOptPrefetcher:
    return ScoutOptPrefetcher(dataset, index, ScoutConfig())


def hit_pct(result: ExperimentResult) -> float:
    return 100.0 * result.cache_hit_rate


def run(index, sequences, prefetcher) -> ExperimentResult:
    return run_experiment(index, sequences, prefetcher)
