"""Common helpers for the figure benchmarks."""

from __future__ import annotations

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    StraightLinePrefetcher,
)
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.sim import (
    CellResult,
    ExperimentResult,
    ParallelRunner,
    run_experiment,
    warm_cell_resources,
)
from repro.workload.sweeps import fig13_matrix, scale_factor

#: Sequences per experiment cell (scaled by REPRO_SCALE).  The paper
#: uses 30-50; the default keeps the full suite laptop-sized while
#: remaining statistically stable at page granularity.
BASE_SEQUENCES = 6


def n_sequences() -> int:
    return max(2, int(round(BASE_SEQUENCES * scale_factor())))


def standard_prefetchers(dataset, index) -> dict[str, object]:
    """The comparison set of Figures 11, 12 and 17."""
    return {
        "ewma-0.3": EWMAPrefetcher(lam=0.3),
        "straight-line": StraightLinePrefetcher(),
        "hilbert": HilbertPrefetcher(dataset),
        "scout": ScoutPrefetcher(dataset, ScoutConfig()),
    }


def scout_only(dataset) -> ScoutPrefetcher:
    return ScoutPrefetcher(dataset, ScoutConfig())


def scout_opt(dataset, index) -> ScoutOptPrefetcher:
    return ScoutOptPrefetcher(dataset, index, ScoutConfig())


def hit_pct(result: ExperimentResult | CellResult) -> float:
    return 100.0 * result.metrics.cache_hit_rate


def run(index, sequences, prefetcher) -> ExperimentResult:
    """One cell on prebuilt objects (the single-cell primitive)."""
    return run_experiment(index, sequences, prefetcher)


def run_cells(cells, jobs: int = 1, store=None, resume: bool = True) -> list[CellResult]:
    """Run declarative cells through the orchestrator, in cell order."""
    return ParallelRunner(jobs=jobs, store=store).run(cells, resume=resume).results


def warm(cells) -> None:
    """Pre-build datasets/indexes so benchmark timing covers simulation only."""
    warm_cell_resources(cells)


def fig13_panel(panel: str, *, sequences_per_cell: int | None = None, **overrides):
    """The Fig-13 panel matrix at benchmark scale (fixture-sized tissue).

    Cells rebuild the same tissue as the session fixtures (``scaled(60)``
    neurons, seed 7, FLAT fanout 16) via the runner's per-process memo,
    so expressing a panel as a matrix costs one extra dataset build for
    the whole benchmark session.
    """
    from conftest import BENCH_FANOUT, SEED, scaled

    return fig13_matrix(
        panel,
        n_neurons=overrides.pop("n_neurons", scaled(60)),
        n_sequences=sequences_per_cell if sequences_per_cell is not None else n_sequences(),
        dataset_seed=SEED,
        fanout=BENCH_FANOUT,
        **overrides,
    )
