"""Figure 12: accuracy and speedup on the with-gap microbenchmarks.

Adds SCOUT-OPT to the comparison.  Expected shape: SCOUT only modestly
above the trajectory baselines (with gaps it too falls back to linear
extrapolation), while SCOUT-OPT's index-assisted gap traversal puts it
clearly on top.
"""

import pytest

from repro.analysis import ResultTable
from repro.workload import MICROBENCHMARKS, microbenchmark_names

from helpers import hit_pct, n_sequences, run, scout_opt, standard_prefetchers

BENCHES = microbenchmark_names(with_gaps=True)


def _grid(tissue, tissue_index):
    hit = ResultTable("Fig 12 -- cache hit rate with gaps [%]", BENCHES, figure_id="fig12")
    speed = ResultTable("Fig 12 -- speedup with gaps", BENCHES, precision=2)
    prefetchers = standard_prefetchers(tissue, tissue_index)
    prefetchers["scout-opt"] = scout_opt(tissue, tissue_index)
    results = {}
    for name, prefetcher in prefetchers.items():
        hits, speeds = [], []
        for bench in BENCHES:
            spec = MICROBENCHMARKS[bench]
            sequences = spec.generate(tissue, n_sequences(), seed=12)
            result = run(tissue_index, sequences, prefetcher)
            hits.append(hit_pct(result))
            speeds.append(result.speedup)
        hit.add_row(name, hits)
        speed.add_row(name, speeds)
        results[name] = (hits, speeds)
    hit.print()
    speed.print()
    return results


def test_fig12_gap_benchmarks(benchmark, tissue, tissue_index):
    results = benchmark.pedantic(_grid, args=(tissue, tissue_index), rounds=1, iterations=1)
    scout_hits, _ = results["scout"]
    opt_hits, opt_speeds = results["scout-opt"]
    # SCOUT-OPT dominates SCOUT on every gap benchmark.
    assert all(o >= s - 1.0 for o, s in zip(opt_hits, scout_hits))
    assert sum(opt_hits) > sum(scout_hits)
    # And it beats every baseline.
    for other in ("ewma-0.3", "straight-line", "hilbert"):
        other_hits, _ = results[other]
        assert sum(opt_hits) > sum(other_hits), other
