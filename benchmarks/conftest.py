"""Shared fixtures for the figure benchmarks.

Dataset generation and FLAT preprocessing dominate setup time, so the
benchmark suite shares session-scoped instances.  ``REPRO_SCALE``
multiplies dataset sizes and sequence counts for bigger runs.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    make_arterial_tree,
    make_lung_airways,
    make_neuron_tissue,
    make_road_network,
)
from repro.index import FlatIndex
from repro.workload.sweeps import scale_factor

#: Page capacity used throughout the benchmarks.  The paper uses 87
#: objects per 4 KB page on a 450M-object tissue; at laptop scale a
#: 16-object page keeps the *spatial* page-to-query ratio in the
#: paper's regime (pages much smaller than queries).  See DESIGN.md §2.
BENCH_FANOUT = 16

SEED = 7


def scaled(n: int) -> int:
    return max(2, int(round(n * scale_factor())))


@pytest.fixture(scope="session")
def tissue():
    return make_neuron_tissue(n_neurons=scaled(60), seed=SEED)


@pytest.fixture(scope="session")
def tissue_index(tissue):
    return FlatIndex(tissue, fanout=BENCH_FANOUT)


@pytest.fixture(scope="session")
def arterial():
    return make_arterial_tree(seed=SEED)


@pytest.fixture(scope="session")
def arterial_index(arterial):
    return FlatIndex(arterial, fanout=BENCH_FANOUT)


@pytest.fixture(scope="session")
def lung():
    return make_lung_airways(seed=SEED)


@pytest.fixture(scope="session")
def lung_index(lung):
    return FlatIndex(lung, fanout=BENCH_FANOUT)


@pytest.fixture(scope="session")
def roads():
    return make_road_network(grid_size=20, spacing=40.0, seed=SEED)


@pytest.fixture(scope="session")
def roads_index(roads):
    return FlatIndex(roads, fanout=BENCH_FANOUT)
