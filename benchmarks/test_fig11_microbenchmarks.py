"""Figure 11: accuracy (a) and speedup (b) on the no-gap microbenchmarks.

Four prefetchers (EWMA 0.3, Straight Line, Hilbert, SCOUT) across the
five no-gap rows of Figure 10.  Expected shape: SCOUT wins every
benchmark; model building (long window) and visualization (long
sequences) are SCOUT's best cells; ad-hoc queries are its weakest.
"""

import pytest

from repro.analysis import ResultTable
from repro.workload import MICROBENCHMARKS, microbenchmark_names

from helpers import hit_pct, n_sequences, run, standard_prefetchers

BENCHES = microbenchmark_names(with_gaps=False)


def _grid(tissue, tissue_index):
    hit = ResultTable("Fig 11a -- cache hit rate [%]", BENCHES, figure_id="fig11a")
    speed = ResultTable(
        "Fig 11b -- speedup vs no prefetching", BENCHES, figure_id="fig11b", precision=2
    )
    results = {}
    for name, prefetcher in standard_prefetchers(tissue, tissue_index).items():
        hits, speeds = [], []
        for bench in BENCHES:
            spec = MICROBENCHMARKS[bench]
            sequences = spec.generate(tissue, n_sequences(), seed=11)
            result = run(tissue_index, sequences, prefetcher)
            hits.append(hit_pct(result))
            speeds.append(result.speedup)
        hit.add_row(name, hits)
        speed.add_row(name, speeds)
        results[name] = (hits, speeds)
    hit.print()
    speed.print()
    return results


def test_fig11_microbenchmarks(benchmark, tissue, tissue_index):
    results = benchmark.pedantic(_grid, args=(tissue, tissue_index), rounds=1, iterations=1)
    scout_hits, scout_speeds = results["scout"]
    # SCOUT wins every no-gap microbenchmark (Fig 11a).
    for other in ("ewma-0.3", "straight-line", "hilbert"):
        other_hits, _ = results[other]
        wins = sum(s >= o for s, o in zip(scout_hits, other_hits))
        assert wins >= len(BENCHES) - 1, (other, scout_hits, other_hits)
    # Accuracy in the paper's band and meaningful speedups (Fig 11b).
    assert min(scout_hits) > 55.0
    assert max(scout_hits) > 85.0
    assert max(scout_speeds) > 5.0
