"""Figure 17: applicability across scientific and non-scientific datasets.

Runs the comparison on the lung airway mesh, the arterial tree and the
road network, with query sizes defined relative to the dataset volume
as in §8.4 (small: 5e-7 of the dataset volume; large: 5e-4).  Expected
shapes: (a) on small queries SCOUT leads on lung and roads, but the
*smooth* arterial tree favours EWMA; (b) on large queries SCOUT leads
everywhere (bends and bifurcations defeat extrapolation).
"""

import pytest

from repro.analysis import ResultTable
from repro.workload import generate_sequences
from repro.workload.sweeps import fig17_query_volume

from helpers import hit_pct, n_sequences, run, standard_prefetchers

N_QUERIES = 25


def _grid(datasets):
    # Query volumes come from the shared Fig-17 sizing in
    # repro.workload.sweeps (§8.4 fractions with a small-dataset floor),
    # the same function the `sweep --figure 17` grid is built from, so
    # this harness and the sweep engine can never drift apart.
    tables = {}
    results = {}
    for label in ("small", "large"):
        table = ResultTable(
            f"Fig 17{'a' if label == 'small' else 'b'} -- hit rate, {label} queries [%]",
            [name for name, _, _ in datasets],
            figure_id="fig17a" if label == "small" else "fig17b",
        )
        for prefetcher_name in ("ewma-0.3", "straight-line", "hilbert", "scout"):
            cells = []
            for dataset_name, dataset, index in datasets:
                volume = fig17_query_volume(dataset, label)
                sequences = generate_sequences(
                    dataset, max(3, n_sequences() // 2), seed=17,
                    n_queries=N_QUERIES, volume=volume,
                )
                prefetcher = standard_prefetchers(dataset, index)[prefetcher_name]
                cells.append(hit_pct(run(index, sequences, prefetcher)))
            table.add_row(prefetcher_name, cells)
            results[(label, prefetcher_name)] = cells
        tables[label] = table
        table.print()
    return results


def test_fig17_applicability(
    benchmark, lung, lung_index, arterial, arterial_index, roads, roads_index
):
    datasets = [
        ("lung", lung, lung_index),
        ("arterial", arterial, arterial_index),
        ("roads", roads, roads_index),
    ]
    results = benchmark.pedantic(_grid, args=(datasets,), rounds=1, iterations=1)

    # (a) small queries: the smooth arterial tree favours extrapolation;
    # SCOUT must stay competitive (paper: EWMA 96% vs SCOUT 90%).
    arterial_ewma = results[("small", "ewma-0.3")][1]
    arterial_scout = results[("small", "scout")][1]
    assert arterial_scout > arterial_ewma - 25.0

    # (b) large queries: SCOUT at or near the top on every dataset.
    # At synthetic scale the floored "small" volume is already sizeable,
    # which compresses the small/large contrast (see EXPERIMENTS.md);
    # SCOUT must win on roads outright and stay competitive elsewhere.
    roads_scout = results[("large", "scout")][2]
    roads_best_other = max(
        results[("large", p)][2] for p in ("ewma-0.3", "straight-line", "hilbert")
    )
    assert roads_scout > roads_best_other
    for i, name in enumerate(["lung", "arterial"]):
        scout = results[("large", "scout")][i]
        best_other = max(
            results[("large", p)][i] for p in ("ewma-0.3", "straight-line", "hilbert")
        )
        assert scout > best_other - 20.0, (name, scout, best_other)
