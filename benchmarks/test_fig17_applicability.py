"""Figure 17: applicability across scientific and non-scientific datasets.

Runs the comparison on the lung airway mesh, the arterial tree and the
road network, with query sizes defined relative to the dataset volume
as in §8.4 (small: 5e-7 of the dataset volume; large: 5e-4).  Expected
shapes: (a) on small queries SCOUT leads on lung and roads, but the
*smooth* arterial tree favours EWMA; (b) on large queries SCOUT leads
everywhere (bends and bifurcations defeat extrapolation).
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.workload import generate_sequences

from helpers import hit_pct, n_sequences, run, standard_prefetchers

SMALL_FRACTION = 5e-7
LARGE_FRACTION = 5e-4
N_QUERIES = 25


def _dataset_volume(dataset) -> float:
    extent = dataset.bounds.extent
    if dataset.dims == 2:
        return float(extent[0] * extent[1])
    return float(np.prod(extent))


def _query_volume(dataset, fraction: float) -> float:
    # §8.4 sizes queries as a fraction of the dataset volume.  Our
    # synthetic stand-ins are orders of magnitude smaller than the
    # paper's datasets, so the small fraction is floored at a volume
    # that returns at least a handful of objects; the large regime is
    # kept a fixed factor above the small one so the two regimes stay
    # distinct even when the floor binds.
    floor = 60.0 / max(dataset.density(), 1e-12)
    small = max(_dataset_volume(dataset) * SMALL_FRACTION, floor)
    if fraction == SMALL_FRACTION:
        return small
    # Cap the large regime at 4x small: synthetic datasets are small
    # enough that the paper's raw 5e-4 fraction would cover a large
    # share of the whole structure and degenerate the walk.
    return small * 4.0


def _grid(datasets):
    tables = {}
    results = {}
    for label, fraction in (("small", SMALL_FRACTION), ("large", LARGE_FRACTION)):
        table = ResultTable(
            f"Fig 17{'a' if label == 'small' else 'b'} -- hit rate, {label} queries [%]",
            [name for name, _, _ in datasets],
            figure_id="fig17a" if label == "small" else "fig17b",
        )
        for prefetcher_name in ("ewma-0.3", "straight-line", "hilbert", "scout"):
            cells = []
            for dataset_name, dataset, index in datasets:
                volume = _query_volume(dataset, fraction)
                sequences = generate_sequences(
                    dataset, max(3, n_sequences() // 2), seed=17,
                    n_queries=N_QUERIES, volume=volume,
                )
                prefetcher = standard_prefetchers(dataset, index)[prefetcher_name]
                cells.append(hit_pct(run(index, sequences, prefetcher)))
            table.add_row(prefetcher_name, cells)
            results[(label, prefetcher_name)] = cells
        tables[label] = table
        table.print()
    return results


def test_fig17_applicability(
    benchmark, lung, lung_index, arterial, arterial_index, roads, roads_index
):
    datasets = [
        ("lung", lung, lung_index),
        ("arterial", arterial, arterial_index),
        ("roads", roads, roads_index),
    ]
    results = benchmark.pedantic(_grid, args=(datasets,), rounds=1, iterations=1)

    # (a) small queries: the smooth arterial tree favours extrapolation;
    # SCOUT must stay competitive (paper: EWMA 96% vs SCOUT 90%).
    arterial_ewma = results[("small", "ewma-0.3")][1]
    arterial_scout = results[("small", "scout")][1]
    assert arterial_scout > arterial_ewma - 25.0

    # (b) large queries: SCOUT at or near the top on every dataset.
    # At synthetic scale the floored "small" volume is already sizeable,
    # which compresses the small/large contrast (see EXPERIMENTS.md);
    # SCOUT must win on roads outright and stay competitive elsewhere.
    roads_scout = results[("large", "scout")][2]
    roads_best_other = max(
        results[("large", p)][2] for p in ("ewma-0.3", "straight-line", "hilbert")
    )
    assert roads_scout > roads_best_other
    for i, name in enumerate(["lung", "arterial"]):
        scout = results[("large", "scout")][i]
        best_other = max(
            results[("large", p)][i] for p in ("ewma-0.3", "straight-line", "hilbert")
        )
        assert scout > best_other - 20.0, (name, scout, best_other)
