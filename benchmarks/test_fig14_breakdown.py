"""Figure 14: response-time breakdown vs dataset density.

Splits SCOUT's total per-sequence time into graph building, prediction
(traversal) and residual I/O while the tissue density grows.  Expected
shape: graph building stays a modest share (~15 % in the paper),
prediction a small one (<= 6 %), with no relative growth as the result
sizes increase.
"""

import pytest

from repro.analysis import ResultTable
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.workload import generate_sequences
from repro.workload.sweeps import SENSITIVITY_DEFAULTS as D

from conftest import BENCH_FANOUT
from helpers import n_sequences, run, scout_only

NEURON_COUNTS = [40, 60, 80, 100]


def _breakdown():
    rows = {"residual-io": [], "graph-build": [], "prediction": []}
    shares = []
    for n_neurons in NEURON_COUNTS:
        tissue = make_neuron_tissue(n_neurons=n_neurons, seed=14, extent=700.0)
        index = FlatIndex(tissue, fanout=BENCH_FANOUT)
        seqs = generate_sequences(
            tissue, max(3, n_sequences() // 2), seed=14,
            n_queries=D.n_queries, volume=D.volume, window_ratio=D.window_ratio,
        )
        result = run(index, seqs, scout_only(tissue))
        metrics = result.metrics
        residual = metrics.response_seconds
        build = metrics.graph_build_seconds
        predict = metrics.prediction_seconds - metrics.graph_build_seconds
        rows["residual-io"].append(residual)
        rows["graph-build"].append(build)
        rows["prediction"].append(predict)
        total = residual + build + predict
        shares.append((build / total, predict / total))
    return rows, shares


def test_fig14_time_breakdown(benchmark):
    rows, shares = benchmark.pedantic(_breakdown, rounds=1, iterations=1)
    table = ResultTable(
        "Fig 14 -- response time breakdown [s, simulated]",
        [f"{n}n" for n in NEURON_COUNTS],
        figure_id="fig14",
        precision=3,
    )
    for label, cells in rows.items():
        table.add_row(label, cells)
    table.print()
    share_table = ResultTable(
        "Fig 14 -- graph-build / prediction share of response [%]",
        [f"{n}n" for n in NEURON_COUNTS],
    )
    share_table.add_row("graph-build", [100 * b for b, _ in shares])
    share_table.add_row("prediction", [100 * p for _, p in shares])
    share_table.print()
    # Modeling cost must not dominate, and its share must not grow
    # systematically with density (the paper's headline observation).
    for build_share, predict_share in shares:
        assert build_share < 0.45
        assert predict_share < 0.20
    first_total = shares[0][0] + shares[0][1]
    last_total = shares[-1][0] + shares[-1][1]
    assert last_total < first_total + 0.15
