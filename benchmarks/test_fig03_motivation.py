"""Figure 3: accuracy of the state-of-the-art vs query volume.

The paper's motivation experiment: EWMA (λ=0.3), Straight Line and
Polynomial (degree 2 and 3) on 25-query sequences over neuron tissue,
with query volumes from 10k to 220k µm³.  Expected shape: modest
absolute accuracy, polynomials below the others (higher degrees
oscillate), and accuracy falling as the volume grows.
"""

import pytest

from repro.analysis import ResultTable
from repro.baselines import EWMAPrefetcher, PolynomialPrefetcher, StraightLinePrefetcher
from repro.workload import generate_sequences

from helpers import hit_pct, n_sequences, run

VOLUMES = [10_000.0, 80_000.0, 150_000.0, 220_000.0]


def _series(tissue, tissue_index):
    prefetchers = {
        "ewma-0.3": EWMAPrefetcher(lam=0.3),
        "straight-line": StraightLinePrefetcher(),
        "poly-2": PolynomialPrefetcher(2),
        "poly-3": PolynomialPrefetcher(3),
    }
    table = ResultTable(
        "Fig 3 -- baseline accuracy vs query volume [cache hit %]",
        [f"{int(v/1000)}k" for v in VOLUMES],
        figure_id="fig3",
    )
    rows = {}
    for name, prefetcher in prefetchers.items():
        cells = []
        for volume in VOLUMES:
            sequences = generate_sequences(
                tissue, n_sequences(), seed=31, n_queries=25, volume=volume
            )
            cells.append(hit_pct(run(tissue_index, sequences, prefetcher)))
        table.add_row(name, cells)
        rows[name] = cells
    table.print()
    return rows


def test_fig03_motivation(benchmark, tissue, tissue_index):
    rows = benchmark.pedantic(_series, args=(tissue, tissue_index), rounds=1, iterations=1)
    # Shape assertions from the paper's reading of the figure:
    # higher-degree polynomials do worse (oscillation) ...
    assert sum(rows["poly-3"]) < sum(rows["poly-2"])
    # ... and accuracy degrades from small to large queries.
    for name in ("ewma-0.3", "straight-line"):
        assert rows[name][-1] < rows[name][0] + 10.0
