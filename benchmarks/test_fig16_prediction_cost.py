"""Figure 16: prediction time per result element vs position in sequence.

The paper runs 50 sequences of 10 queries and shows that the prediction
time per result element *decreases* along the sequence: iterative
candidate pruning shrinks the subgraph that must be traversed.
"""

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.sim import SimulationEngine
from repro.workload import generate_sequences

from helpers import n_sequences, scout_only

N_QUERIES = 10


def _per_index_costs(tissue, tissue_index):
    engine = SimulationEngine(tissue_index)
    sequences = generate_sequences(
        tissue, n_sequences() * 2, seed=16, n_queries=N_QUERIES, volume=80_000.0
    )
    per_index = [[] for _ in range(N_QUERIES)]
    for sequence in sequences:
        prefetcher = scout_only(tissue)
        metrics = engine.run(sequence, prefetcher)
        for record in metrics.records:
            if record.n_result_objects:
                per_index[record.index].append(
                    record.prediction_seconds / record.n_result_objects
                )
    return [float(np.mean(v)) * 1e6 if v else 0.0 for v in per_index]


def test_fig16_prediction_cost_decreases(benchmark, tissue, tissue_index):
    costs = benchmark.pedantic(
        _per_index_costs, args=(tissue, tissue_index), rounds=1, iterations=1
    )
    table = ResultTable(
        "Fig 16 -- prediction time per result element [µs, simulated]",
        [str(i + 1) for i in range(N_QUERIES)],
        figure_id="fig16",
        precision=3,
    )
    table.add_row("scout", costs)
    table.print()
    # The tail of the sequence is cheaper per element than the head.
    head = np.mean(costs[:3])
    tail = np.mean(costs[-3:])
    assert tail <= head * 1.05
