"""Figure 13: sensitivity of SCOUT's accuracy to workload parameters.

Six panels, each varying one parameter around the §7.4 defaults
(25-query sequences, 80k µm³ cubes, window ratio 1).  Expected shapes:
(a) accuracy falls with query volume; (b) roughly flat with density;
(c) rises with sequence length; (d) rises steeply with window ratio;
(e) robust at fine grid resolutions; (f) falls with gap distance, with
SCOUT-OPT above SCOUT.
"""

import pytest

from repro.analysis import ResultTable
from repro.core import ScoutConfig, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.workload import generate_sequences
from repro.workload.sweeps import SENSITIVITY_DEFAULTS as D, fig13_axes

from conftest import BENCH_FANOUT
from helpers import hit_pct, n_sequences, run, scout_only, scout_opt

AXES = fig13_axes()


def _sweep(tissue, index, volumes=None, lengths=None, ratios=None, resolutions=None):
    """Generic SCOUT sweep over one workload axis."""
    cells = []
    if volumes is not None:
        for volume in volumes:
            seqs = generate_sequences(
                tissue, n_sequences(), seed=13, n_queries=D.n_queries, volume=volume,
                window_ratio=D.window_ratio,
            )
            cells.append(hit_pct(run(index, seqs, scout_only(tissue))))
    if lengths is not None:
        for length in lengths:
            seqs = generate_sequences(
                tissue, n_sequences(), seed=13, n_queries=int(length), volume=D.volume,
                window_ratio=D.window_ratio,
            )
            cells.append(hit_pct(run(index, seqs, scout_only(tissue))))
    if ratios is not None:
        for ratio in ratios:
            seqs = generate_sequences(
                tissue, n_sequences(), seed=13, n_queries=D.n_queries, volume=D.volume,
                window_ratio=ratio,
            )
            cells.append(hit_pct(run(index, seqs, scout_only(tissue))))
    if resolutions is not None:
        seqs = generate_sequences(
            tissue, n_sequences(), seed=13, n_queries=D.n_queries, volume=D.volume,
            window_ratio=D.window_ratio,
        )
        for resolution in resolutions:
            prefetcher = ScoutPrefetcher(tissue, ScoutConfig(grid_resolution=int(resolution)))
            cells.append(hit_pct(run(index, seqs, prefetcher)))
    return cells


def test_fig13a_query_volume(benchmark, tissue, tissue_index):
    volumes = AXES["a_query_volume"]
    cells = benchmark.pedantic(
        _sweep, args=(tissue, tissue_index), kwargs={"volumes": volumes}, rounds=1, iterations=1
    )
    table = ResultTable(
        "Fig 13a -- accuracy vs query volume [hit %]",
        [f"{int(v/1000)}k" for v in volumes],
        figure_id="fig13a",
    )
    table.add_row("scout", cells)
    table.print()
    # Accuracy decreases from the smallest to the largest volume.
    assert cells[-1] < cells[0]


def test_fig13b_density(benchmark):
    neuron_counts = AXES["b_density_neurons"]

    def sweep():
        cells = []
        for n_neurons in neuron_counts:
            # Fixed tissue volume, growing object count = growing density
            # (the paper adds 50M objects to the same 285 mm^3).
            tissue = make_neuron_tissue(n_neurons=int(n_neurons), seed=13, extent=700.0)
            index = FlatIndex(tissue, fanout=BENCH_FANOUT)
            seqs = generate_sequences(
                tissue, max(3, n_sequences() // 2), seed=13,
                n_queries=D.n_queries, volume=D.volume, window_ratio=D.window_ratio,
            )
            cells.append(hit_pct(run(index, seqs, scout_only(tissue))))
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ResultTable(
        "Fig 13b -- accuracy vs dataset density [hit %]",
        [f"{n}n" for n in neuron_counts],
        figure_id="fig13b",
    )
    table.add_row("scout", cells)
    table.print()
    # Roughly flat: no collapse as density grows.
    assert min(cells) > max(cells) - 25.0
    assert min(cells) > 50.0


def test_fig13c_sequence_length(benchmark, tissue, tissue_index):
    lengths = AXES["c_sequence_length"]
    cells = benchmark.pedantic(
        _sweep, args=(tissue, tissue_index), kwargs={"lengths": lengths}, rounds=1, iterations=1
    )
    table = ResultTable(
        "Fig 13c -- accuracy vs sequence length [hit %]",
        [str(n) for n in lengths],
        figure_id="fig13c",
    )
    table.add_row("scout", cells)
    table.print()
    # Iterative pruning pays off: long sequences beat the shortest one.
    assert cells[-1] > cells[0]


def test_fig13d_window_ratio(benchmark, tissue, tissue_index):
    ratios = AXES["d_window_ratio"]
    cells = benchmark.pedantic(
        _sweep, args=(tissue, tissue_index), kwargs={"ratios": ratios}, rounds=1, iterations=1
    )
    table = ResultTable(
        "Fig 13d -- accuracy vs prefetch window ratio [hit %]",
        [f"{r:g}" for r in ratios],
        figure_id="fig13d",
    )
    table.add_row("scout", cells)
    table.print()
    # Strong rise with the window: the paper reports 29% -> 88%.
    assert cells[0] < cells[-1] - 20.0
    assert cells == sorted(cells) or cells[1] <= cells[-1]


def test_fig13e_grid_resolution(benchmark, tissue, tissue_index):
    resolutions = AXES["e_grid_resolution"]
    cells = benchmark.pedantic(
        _sweep,
        args=(tissue, tissue_index),
        kwargs={"resolutions": resolutions},
        rounds=1,
        iterations=1,
    )
    table = ResultTable(
        "Fig 13e -- accuracy vs grid resolution [hit %]",
        [str(r) for r in resolutions],
        figure_id="fig13e",
    )
    table.add_row("scout", cells)
    table.print()
    # The fine-resolution plateau (32768 vs 4096) holds within noise.
    assert abs(cells[0] - cells[1]) < 12.0


def test_fig13f_gap_distance(benchmark, tissue, tissue_index):
    gaps = AXES["f_gap_distance"]

    def sweep():
        scout_cells, opt_cells = [], []
        for gap in gaps:
            seqs = generate_sequences(
                tissue, n_sequences(), seed=13, n_queries=D.n_queries,
                volume=D.volume, gap=gap, window_ratio=D.window_ratio,
            )
            scout_cells.append(hit_pct(run(tissue_index, seqs, scout_only(tissue))))
            opt_cells.append(
                hit_pct(run(tissue_index, seqs, scout_opt(tissue, tissue_index)))
            )
        return scout_cells, opt_cells

    scout_cells, opt_cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ResultTable(
        "Fig 13f -- accuracy vs gap distance [hit %]",
        [f"{g:g}" for g in gaps],
        figure_id="fig13f",
    )
    table.add_row("scout", scout_cells)
    table.add_row("scout-opt", opt_cells)
    table.print()
    # SCOUT-OPT's gap traversal keeps it on top across gap distances.
    assert sum(opt_cells) >= sum(scout_cells)
