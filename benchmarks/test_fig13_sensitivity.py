"""Figure 13: sensitivity of SCOUT's accuracy to workload parameters.

Six panels, each varying one parameter around the §7.4 defaults
(25-query sequences, 80k µm³ cubes, window ratio 1).  Expected shapes:
(a) accuracy falls with query volume; (b) roughly flat with density;
(c) rises with sequence length; (d) rises steeply with window ratio;
(e) robust at fine grid resolutions; (f) falls with gap distance, with
SCOUT-OPT above SCOUT.

Each panel is expressed as a declarative :class:`ExperimentMatrix`
(:func:`repro.workload.sweeps.fig13_matrix`) and executed through the
parallel-capable orchestrator -- the same grid the ``scout-repro
sweep`` CLI runs -- then pivoted into its table with
:func:`repro.analysis.sweep_table`.
"""

from repro.analysis import sweep_table
from repro.workload.sweeps import fig13_axes, fig13_axis_value

from helpers import fig13_panel, hit_pct, n_sequences, run_cells, warm

AXES = fig13_axes()


def _panel_table(panel, results, title, columns_format=str):
    table = sweep_table(
        title,
        results,
        column_of=lambda r: columns_format(fig13_axis_value(panel, r.spec)),
        row_of=lambda r: r.prefetcher_kind,
        value_of=hit_pct,
        figure_id=f"fig13{panel}",
    )
    table.print()
    return table


def test_fig13a_query_volume(benchmark):
    matrix = fig13_panel("a")
    warm(matrix)
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "a",
        results,
        "Fig 13a -- accuracy vs query volume [hit %]",
        columns_format=lambda v: f"{int(v / 1000)}k",
    )
    cells = table.row_values("scout")
    # Accuracy decreases from the smallest to the largest volume.
    assert cells[-1] < cells[0]


def test_fig13b_density(benchmark):
    matrix = fig13_panel("b", sequences_per_cell=max(3, n_sequences() // 2))
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "b",
        results,
        "Fig 13b -- accuracy vs dataset density [hit %]",
        columns_format=lambda n: f"{n}n",
    )
    cells = table.row_values("scout")
    # Roughly flat: no collapse as density grows.
    assert min(cells) > max(cells) - 25.0
    assert min(cells) > 50.0


def test_fig13c_sequence_length(benchmark):
    matrix = fig13_panel("c")
    warm(matrix)
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "c", results, "Fig 13c -- accuracy vs sequence length [hit %]"
    )
    cells = table.row_values("scout")
    # Iterative pruning pays off: long sequences beat the shortest one.
    assert cells[-1] > cells[0]


def test_fig13d_window_ratio(benchmark):
    matrix = fig13_panel("d")
    warm(matrix)
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "d",
        results,
        "Fig 13d -- accuracy vs prefetch window ratio [hit %]",
        columns_format=lambda r: f"{r:g}",
    )
    cells = table.row_values("scout")
    # Strong rise with the window: the paper reports 29% -> 88%.
    assert cells[0] < cells[-1] - 20.0
    assert cells == sorted(cells) or cells[1] <= cells[-1]


def test_fig13e_grid_resolution(benchmark):
    matrix = fig13_panel("e")
    warm(matrix)
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "e", results, "Fig 13e -- accuracy vs grid resolution [hit %]"
    )
    cells = table.row_values("scout")
    # The fine-resolution plateau (32768 vs 4096) holds within noise.
    assert abs(cells[0] - cells[1]) < 12.0


def test_fig13f_gap_distance(benchmark):
    matrix = fig13_panel("f")
    warm(matrix)
    results = benchmark.pedantic(run_cells, args=(matrix,), rounds=1, iterations=1)
    table = _panel_table(
        "f",
        results,
        "Fig 13f -- accuracy vs gap distance [hit %]",
        columns_format=lambda g: f"{g:g}",
    )
    scout_cells = table.row_values("scout")
    opt_cells = table.row_values("scout-opt")
    # SCOUT-OPT's gap traversal keeps it on top across gap distances.
    assert sum(opt_cells) >= sum(scout_cells)
