"""Figure 10: the microbenchmark parameter table (reproduced verbatim)."""

from repro.analysis import ResultTable
from repro.workload import MICROBENCHMARKS


def _render():
    table = ResultTable(
        "Fig 10 -- microbenchmark parameters",
        ["queries", "volume", "gap", "ratio"],
        precision=1,
    )
    for spec in MICROBENCHMARKS.values():
        table.add_row(
            spec.label[:28],
            [float(spec.n_queries), spec.volume, spec.gap, spec.window_ratio],
        )
    table.print()
    return table


def test_fig10_parameter_table(benchmark):
    table = benchmark.pedantic(_render, rounds=1, iterations=1)
    assert len(table.rows) == 7
    assert table.cell("Model Building", "ratio") == 2.0
