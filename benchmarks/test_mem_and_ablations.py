"""§8.2 memory accounting plus the DESIGN.md §5 ablations.

- Memory: SCOUT's prediction structures vs SCOUT-OPT's sparse subgraph,
  relative to the result footprint (paper: ~24 % vs ~6 %).
- Ablation ♦ deep vs broad prefetching: §5.2 predicts equal-ish means
  with lower variance for broad.
- Ablation ♦ incremental vs one-shot prefetching: §5.1's growing
  regions must not lose to a single full-size prefetch query.
- Ablation ♦ grid hashing vs brute-force graph construction cost.
"""

import time

import numpy as np
import pytest

from repro.analysis import ResultTable
from repro.baselines import ObservedQuery
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen.dataset import OBJECT_BYTES
from repro.geometry import AABB
from repro.graph import build_graph_brute_force, build_graph_grid_hash
from repro.sim import SimulationConfig, SimulationEngine, run_experiment
from repro.workload import generate_sequences

from helpers import hit_pct, n_sequences


def test_mem_graph_footprint(benchmark, tissue, tissue_index):
    def measure():
        sequences = generate_sequences(
            tissue, 3, seed=82, n_queries=10, volume=120_000.0
        )
        scout = ScoutPrefetcher(tissue)
        opt = ScoutOptPrefetcher(tissue, tissue_index)
        ratios = {"scout": [], "scout-opt": []}
        for sequence in sequences:
            scout.begin_sequence()
            opt.begin_sequence()
            for i, query in enumerate(sequence.queries):
                result = tissue_index.query(query.bounds)
                if result.n_objects == 0:
                    continue
                observed = ObservedQuery(i, query.bounds, result.object_ids)
                scout.observe(observed)
                opt.observe(observed)
                result_bytes = result.n_objects * OBJECT_BYTES
                ratios["scout"].append(scout.last_graph_memory_bytes / result_bytes)
                ratios["scout-opt"].append(opt.last_graph_memory_bytes / result_bytes)
        return {k: float(np.mean(v)) for k, v in ratios.items()}

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ResultTable(
        "§8.2 -- prediction-structure memory / result footprint [%]",
        ["scout", "scout-opt"],
        figure_id="mem",
    )
    table.add_row("measured", [100 * ratios["scout"], 100 * ratios["scout-opt"]])
    table.add_row("paper", [24.0, 6.0])
    table.print()
    assert ratios["scout-opt"] <= ratios["scout"]
    assert ratios["scout"] < 1.5  # same order as the result footprint


def test_ablation_deep_vs_broad(benchmark, tissue, tissue_index):
    def measure():
        sequences = generate_sequences(
            tissue, n_sequences(), seed=52, n_queries=25, volume=80_000.0
        )
        out = {}
        for strategy in ("deep", "broad"):
            result = run_experiment(
                tissue_index,
                sequences,
                ScoutPrefetcher(tissue, ScoutConfig(strategy=strategy)),
            )
            out[strategy] = (
                hit_pct(result),
                100 * result.metrics.hit_rate_std,
            )
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation -- deep vs broad prefetching", ["hit %", "std %"], precision=2
    )
    for strategy, (mean, std) in out.items():
        table.add_row(strategy, [mean, std])
    table.print()
    # §5.2: broad does not lose much in mean and both must function.
    assert out["broad"][0] > out["deep"][0] - 10.0


def test_ablation_incremental_vs_oneshot(benchmark, tissue, tissue_index):
    def measure():
        sequences = generate_sequences(
            tissue, n_sequences(), seed=53, n_queries=25, volume=80_000.0
        )
        incremental = run_experiment(
            tissue_index, sequences, ScoutPrefetcher(tissue)
        )
        oneshot_config = SimulationConfig(
            incremental_start_fraction=1.2,
            incremental_growth=1.0,
            incremental_max_steps=1,
            incremental_max_fraction=1.2,
        )
        oneshot = run_experiment(
            tissue_index, sequences, ScoutPrefetcher(tissue), config=oneshot_config
        )
        return hit_pct(incremental), hit_pct(oneshot)

    incremental, oneshot = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation -- incremental vs one-shot prefetch", ["hit %"], precision=2
    )
    table.add_row("incremental (§5.1)", [incremental])
    table.add_row("one-shot", [oneshot])
    table.print()
    assert incremental > oneshot - 8.0


def test_ablation_grid_hash_vs_brute_force(benchmark, tissue, tissue_index):
    def measure():
        region = AABB.cube(tissue.bounds.center, 120_000.0)
        result = tissue_index.query(region)
        ids = result.object_ids
        grid_report = build_graph_grid_hash(tissue, ids, region)
        started = time.perf_counter()
        brute_report = build_graph_brute_force(tissue, ids, distance_threshold=2.0)
        brute_seconds = time.perf_counter() - started
        return (
            len(ids),
            grid_report.wall_seconds,
            brute_seconds,
            grid_report.graph.n_edges,
            brute_report.graph.n_edges,
        )

    n, grid_s, brute_s, grid_edges, brute_edges = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table = ResultTable(
        "Ablation -- grid hashing vs brute force graph build",
        ["objects", "time ms", "edges"],
        precision=2,
    )
    table.add_row("grid-hash (§4.2)", [float(n), 1000 * grid_s, float(grid_edges)])
    table.add_row("brute-force O(n^2)", [float(n), 1000 * brute_s, float(brute_edges)])
    table.print()
    if n > 300:
        assert grid_s < brute_s  # the point of grid hashing
