"""View-frustum geometry tests."""

import numpy as np
import pytest

from repro.geometry import Frustum


class TestConstruction:
    def test_rejects_zero_axis(self):
        with pytest.raises(ValueError):
            Frustum([0, 0, 0], [0, 0, 0], depth=1.0, near_half=0.5, far_half=1.0)

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            Frustum([0, 0, 0], [0, 0, 1], depth=-1.0, near_half=0.5, far_half=1.0)

    def test_rejects_inverted_taper(self):
        with pytest.raises(ValueError):
            Frustum([0, 0, 0], [0, 0, 1], depth=1.0, near_half=2.0, far_half=1.0)

    def test_axis_normalized(self):
        f = Frustum([0, 0, 0], [0, 0, 10], depth=1.0, near_half=0.5, far_half=1.0)
        assert np.linalg.norm(f.axis) == pytest.approx(1.0)


class TestFromVolume:
    def test_volume_matches_request(self):
        f = Frustum.from_volume([0, 0, 0], [1, 0, 0], 30_000.0)
        assert f.volume == pytest.approx(30_000.0, rel=1e-6)

    def test_centered_on_request(self):
        f = Frustum.from_volume([5, 6, 7], [0, 1, 0], 1000.0)
        assert np.allclose(f.center, [5, 6, 7])

    def test_rejects_bad_taper(self):
        with pytest.raises(ValueError):
            Frustum.from_volume([0, 0, 0], [1, 0, 0], 100.0, taper=0.0)

    def test_rejects_bad_volume(self):
        with pytest.raises(ValueError):
            Frustum.from_volume([0, 0, 0], [1, 0, 0], -5.0)


class TestContainment:
    def frustum(self):
        return Frustum([0, 0, 0], [0, 0, 1], depth=2.0, near_half=0.5, far_half=1.0)

    def test_contains_axis_points(self):
        f = self.frustum()
        assert f.contains_point([0, 0, 0.1])
        assert f.contains_point([0, 0, 1.9])

    def test_narrow_end_excludes_wide_offsets(self):
        f = self.frustum()
        # Offset 0.75 fits at the far face (half=1.0) but not the near one.
        assert f.contains_point([0.75, 0, 1.9])
        assert not f.contains_point([0.75, 0, 0.05])

    def test_excludes_behind_and_beyond(self):
        f = self.frustum()
        assert not f.contains_point([0, 0, -0.1])
        assert not f.contains_point([0, 0, 2.1])

    def test_vectorized_matches_scalar(self, rng):
        f = Frustum.from_volume([0, 0, 0], [1, 1, 0], 500.0)
        pts = rng.uniform(-10, 10, size=(200, 3))
        mask = f.contains_points(pts)
        for i in range(200):
            assert mask[i] == f.contains_point(pts[i])


class TestBounding:
    def test_corners_inside_bounding_box(self):
        f = Frustum.from_volume([3, -2, 5], [1, 2, -1], 2000.0)
        box = f.bounding_aabb()
        for corner in f.corners():
            assert box.contains_point(corner)

    def test_bounding_box_contains_sampled_interior(self, rng):
        f = Frustum.from_volume([0, 0, 0], [0, 0, 1], 1000.0)
        box = f.bounding_aabb()
        pts = rng.uniform(box.lo - 1, box.hi + 1, size=(300, 3))
        inside = f.contains_points(pts)
        for p in pts[inside]:
            assert box.contains_point(p)

    def test_volume_of_bounding_box_exceeds_frustum(self):
        f = Frustum.from_volume([0, 0, 0], [1, 0, 0], 1234.0)
        assert f.bounding_aabb().volume >= f.volume
