"""Crash-recovery suite for the mmap-backed page file.

The page file's whole reason to exist is surviving an unclean writer:
its format promises that a process dying at *any* point mid-write
leaves a slot that cannot pass checksum verification, so a reopening
reader detects it, refuses to serve it, and repairs it from the
authoritative page table.  The tests here earn that promise the honest
way -- a child process really does die with ``os._exit`` in the middle
of :meth:`~repro.storage.pagefile.PageFile.write_page` (the ``_exit``
idiom of the fault plane's crash builders), and the parent then reopens
the file and walks the full detect / refuse / repair / re-serve cycle.

The healthy-file half pins the format itself: create/open round-trips,
header validation, out-of-range and oversize rejection, and the
storage=ram metric identity that keeps the golden fixtures honest.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.storage.page import PageTable
from repro.storage.pagefile import PageFile, PageFileError, TornPageError
from repro.storage.tiered import StorageSpec, TieredStore


def small_table() -> PageTable:
    return PageTable(
        [
            np.array([0, 1, 2]),
            np.array([3, 4]),
            np.array([5, 6, 7, 8]),
            np.array([9]),
        ]
    )


class TestHealthyFile:
    def test_create_then_read_roundtrips_every_page(self, tmp_path):
        table = small_table()
        with PageFile.create(tmp_path / "pages.pf", table) as pf:
            assert pf.n_pages == table.n_pages
            for page_id in range(table.n_pages):
                np.testing.assert_array_equal(
                    pf.read_page(page_id), table.objects_of_page(page_id)
                )
            assert pf.scan_torn() == []

    def test_reopen_sees_the_same_bytes(self, tmp_path):
        table = small_table()
        PageFile.create(tmp_path / "pages.pf", table).close()
        with PageFile(tmp_path / "pages.pf") as pf:
            np.testing.assert_array_equal(pf.read_page(2), table.objects_of_page(2))

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(PageFileError, match="does not exist"):
            PageFile(tmp_path / "nope.pf")

    def test_corrupt_header_is_rejected(self, tmp_path):
        path = tmp_path / "pages.pf"
        PageFile.create(path, small_table()).close()
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF  # break the magic
        path.write_bytes(bytes(raw))
        with pytest.raises(PageFileError, match="bad magic"):
            PageFile(path)

    def test_truncated_file_is_rejected(self, tmp_path):
        path = tmp_path / "pages.pf"
        PageFile.create(path, small_table()).close()
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PageFileError, match="truncated"):
            PageFile(path)

    def test_out_of_range_page_is_rejected(self, tmp_path):
        with PageFile.create(tmp_path / "pages.pf", small_table()) as pf:
            with pytest.raises(IndexError):
                pf.read_page(pf.n_pages)

    def test_oversize_payload_is_rejected(self, tmp_path):
        with PageFile.create(tmp_path / "pages.pf", small_table()) as pf:
            with pytest.raises(ValueError, match="exceeds slot size"):
                pf.write_page(0, np.arange(64, dtype=np.int64))

    def test_write_page_replaces_a_slot_verifiably(self, tmp_path):
        with PageFile.create(tmp_path / "pages.pf", small_table()) as pf:
            pf.write_page(1, np.array([40, 41], dtype=np.int64))
            np.testing.assert_array_equal(pf.read_page(1), [40, 41])
            assert pf.verify_page(1)


#: Child-process script: open the page file and die mid-write.  The
#: ``crash_after`` point is argv-selected so both tear shapes (sentinel
#: only, payload landed but checksum not restored) get a real process
#: death, not a simulated one.
_CRASH_WRITER = """
import sys
import numpy as np
from repro.storage.pagefile import PageFile

path, page_id, crash_after = sys.argv[1], int(sys.argv[2]), sys.argv[3]
pf = PageFile(path)
pf.write_page(page_id, np.array([7, 8, 9], dtype=np.int64), crash_after=crash_after)
raise SystemExit("unreachable: the writer must have died mid-write")
"""


def _crash_writer(path, page_id: int, crash_after: str) -> None:
    proc = subprocess.run(
        [sys.executable, "-c", _CRASH_WRITER, str(path), str(page_id), crash_after],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1, proc.stderr


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_after", ["stamp", "payload"])
    def test_killed_writer_leaves_a_detectable_torn_slot(self, tmp_path, crash_after):
        table = small_table()
        path = tmp_path / "pages.pf"
        PageFile.create(path, table).close()
        _crash_writer(path, 2, crash_after)

        with PageFile(path) as pf:
            # The reopen sweep finds exactly the torn slot ...
            assert pf.scan_torn() == [2]
            # ... which is never served ...
            with pytest.raises(TornPageError) as excinfo:
                pf.read_page(2)
            assert excinfo.value.page_id == 2
            # ... while untouched slots still verify and serve.
            np.testing.assert_array_equal(pf.read_page(0), table.objects_of_page(0))

            # Repair re-fetches from the authoritative table; the slot
            # then serves the canonical payload again.
            pf.repair_page(2, table)
            assert pf.scan_torn() == []
            np.testing.assert_array_equal(pf.read_page(2), table.objects_of_page(2))

    def test_tiered_store_repairs_torn_slots_on_the_read_path(self, tmp_path):
        from repro.storage.disk import DiskModel

        table = small_table()
        path = tmp_path / "pages.pf"
        PageFile.create(path, table).close()
        _crash_writer(path, 1, "payload")

        store = TieredStore(DiskModel(), StorageSpec(backend="mmap", path=str(path)))
        store.bind_page_table(table)
        try:
            healthy_cost = DiskModel().read_pages([1])
            elapsed = store.read_pages([1])
            ts = store.tier_stats
            assert ts.torn_detected == 1
            assert ts.torn_repaired == 1
            # The repair charges one clean demand re-read on top of the
            # original read -- read-repair, like the fault plane's.
            assert elapsed == pytest.approx(healthy_cost + DiskModel().read_pages([1]))
            # The slot is whole again: the next read is charged normally
            # and detects nothing.
            store.read_pages([1])
            assert store.tier_stats.torn_detected == 1
            np.testing.assert_array_equal(
                store.pagefile.read_page(1), table.objects_of_page(1)
            )
        finally:
            store.close()
        assert path.exists(), "an explicit-path page file must survive close()"


def test_ram_and_mmap_backends_are_metric_identical(tmp_path):
    """storage=ram golden fixtures stay valid for the mmap backend.

    The page file stores bytes, not time: on a healthy file the mmap
    backend's read path charges exactly what the ram backend charges, so
    every metric -- and therefore every golden fixture computed with
    storage=ram -- is backend-independent.
    """
    from repro.storage.disk import DiskModel

    table = small_table()
    spec_ram = StorageSpec(miss_path="combined", tier_pages=2)
    spec_mmap = StorageSpec(
        backend="mmap", miss_path="combined", tier_pages=2,
        path=str(tmp_path / "pages.pf"),
    )
    ram = TieredStore(DiskModel(), spec_ram, page_table=table)
    mm = TieredStore(DiskModel(), spec_mmap, page_table=table)
    try:
        for batch in ([0, 1], [1, 2], [3], [0, 1, 2, 3], []):
            assert mm.read_pages(batch) == ram.read_pages(batch)
        assert mm.stats == ram.stats
        assert mm.tier_stats == ram.tier_stats
    finally:
        mm.close()
