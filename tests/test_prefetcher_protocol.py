"""Protocol conformance across every prefetcher implementation.

The simulator assumes all prefetchers behave uniformly: distinct names,
safe re-sequencing, plans that are always well-formed lists of
PrefetchTargets, and non-negative cost reports.  One parametrized suite
enforces this for the whole zoo, so adding a prefetcher cannot silently
break the harness.
"""

import numpy as np
import pytest

from repro.baselines import (
    EWMAPrefetcher,
    HilbertPrefetcher,
    LayeredPrefetcher,
    NoPrefetcher,
    ObservedQuery,
    PolynomialPrefetcher,
    PrefetchTarget,
    StraightLinePrefetcher,
    VelocityPrefetcher,
)
from repro.core import ScoutOptPrefetcher, ScoutPrefetcher
from repro.geometry import AABB


def all_prefetchers(tissue, tissue_flat):
    return [
        NoPrefetcher(),
        StraightLinePrefetcher(),
        PolynomialPrefetcher(2),
        PolynomialPrefetcher(3),
        VelocityPrefetcher(),
        EWMAPrefetcher(0.3),
        HilbertPrefetcher(tissue),
        LayeredPrefetcher(tissue),
        ScoutPrefetcher(tissue),
        ScoutOptPrefetcher(tissue, tissue_flat),
    ]


@pytest.fixture()
def observations(tissue, tissue_flat, rng):
    from repro.workload import generate_sequence

    sequence = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
    observed = []
    for i, query in enumerate(sequence.queries):
        result = tissue_flat.query(query.bounds)
        observed.append(ObservedQuery(i, query.bounds, result.object_ids))
    return observed


class TestProtocol:
    def test_names_are_unique(self, tissue, tissue_flat):
        names = [p.name for p in all_prefetchers(tissue, tissue_flat)]
        assert len(names) == len(set(names))

    def test_plan_before_any_observation_is_safe(self, tissue, tissue_flat):
        for prefetcher in all_prefetchers(tissue, tissue_flat):
            prefetcher.begin_sequence()
            plan = prefetcher.plan()
            assert isinstance(plan, list)
            for target in plan:
                assert isinstance(target, PrefetchTarget)

    def test_full_drive_produces_valid_plans(self, tissue, tissue_flat, observations):
        for prefetcher in all_prefetchers(tissue, tissue_flat):
            prefetcher.begin_sequence()
            for observed in observations:
                prefetcher.observe(observed)
                plan = prefetcher.plan()
                assert isinstance(plan, list)
                for target in plan:
                    assert np.isfinite(target.anchor).all()
                    assert np.isfinite(target.direction).all()
                    assert target.share >= 0
                    if target.regions is not None:
                        assert all(isinstance(r, AABB) for r in target.regions)
                assert prefetcher.prediction_cost_seconds() >= 0.0
                assert prefetcher.graph_build_cost_seconds() >= 0.0
                assert isinstance(prefetcher.gap_io_pages(), list)

    def test_begin_sequence_is_idempotent(self, tissue, tissue_flat, observations):
        for prefetcher in all_prefetchers(tissue, tissue_flat):
            prefetcher.begin_sequence()
            prefetcher.observe(observations[0])
            prefetcher.begin_sequence()
            prefetcher.begin_sequence()
            assert isinstance(prefetcher.plan(), list)

    def test_reuse_across_sequences_is_clean(self, tissue, tissue_flat, observations):
        """Running the same instance twice must give identical plans."""
        for prefetcher in all_prefetchers(tissue, tissue_flat):
            if prefetcher.name.startswith("scout"):
                continue  # scout's internal RNG advances by design (deep picks)
            plans = []
            for _ in range(2):
                prefetcher.begin_sequence()
                for observed in observations[:3]:
                    prefetcher.observe(observed)
                plans.append(prefetcher.plan())
            assert len(plans[0]) == len(plans[1])
            for a, b in zip(plans[0], plans[1]):
                assert np.allclose(a.anchor, b.anchor)
