"""Boundary crossings: exit points, directions, smoothing."""

import numpy as np
import pytest

from repro.datagen.dataset import Dataset, NavEdge, NavigationGraph, Polyline
from repro.geometry import AABB
from repro.graph import SpatialGraph, component_crossings, region_crossings
from repro.graph.traversal import refine_crossing_direction


def chain_dataset(points: np.ndarray) -> Dataset:
    """A dataset that is a single polyline chain of segments."""
    p0 = points[:-1]
    p1 = points[1:]
    n = len(p0)
    nav = NavigationGraph(
        np.array([points[0], points[-1]]), [NavEdge(0, 1, Polyline(points))]
    )
    return Dataset(
        name="chain",
        p0=p0,
        p1=p1,
        radius=np.zeros(n),
        structure_id=np.zeros(n, dtype=np.int64),
        branch_id=np.zeros(n, dtype=np.int64),
        nav=nav,
    )


REGION = AABB([0, 0, 0], [10, 10, 10])


class TestRegionCrossings:
    def test_through_chain_has_two_crossings(self):
        points = np.array([[-5, 5, 5], [5, 5, 5], [15, 5, 5]], dtype=float)
        ds = chain_dataset(points)
        crossings = region_crossings(ds, np.arange(ds.n_objects), REGION)
        assert len(crossings) == 2
        xs = sorted(c.point[0] for c in crossings)
        assert xs[0] == pytest.approx(0.0) and xs[1] == pytest.approx(10.0)

    def test_crossing_directions_point_outward(self):
        points = np.array([[-5, 5, 5], [5, 5, 5], [15, 5, 5]], dtype=float)
        ds = chain_dataset(points)
        for crossing in region_crossings(ds, np.arange(ds.n_objects), REGION):
            outward = crossing.point + crossing.direction * 0.1
            assert not REGION.contains_point(outward)

    def test_interior_chain_has_no_crossings(self):
        points = np.array([[2, 2, 2], [4, 4, 4], [6, 6, 6]], dtype=float)
        ds = chain_dataset(points)
        assert region_crossings(ds, np.arange(ds.n_objects), REGION) == []

    def test_exterior_object_contributes_nothing(self):
        points = np.array([[20, 20, 20], [25, 25, 25]], dtype=float)
        ds = chain_dataset(points)
        assert region_crossings(ds, np.arange(ds.n_objects), REGION) == []

    def test_extrapolate(self):
        points = np.array([[5, 5, 5], [15, 5, 5]], dtype=float)
        ds = chain_dataset(points)
        (crossing,) = region_crossings(ds, np.array([0]), REGION)
        beyond = crossing.extrapolate(3.0)
        assert beyond[0] == pytest.approx(13.0)


class TestComponentCrossings:
    def test_groups_by_component(self):
        # Two disjoint chains, each crossing the region once.
        points_a = np.array([[5, 5, 5], [15, 5, 5]], dtype=float)
        points_b = np.array([[5, 8, 8], [5, 8, 18]], dtype=float)
        ds = chain_dataset(np.vstack([points_a, points_b]))
        # Manual graph: objects 0 (a), 1 (bridge artifact), 2 (b); keep 0 and 2.
        graph = SpatialGraph([0, 2])
        crossings = component_crossings(ds, graph, REGION)
        assert len(crossings) == 2
        total = sum(len(v) for v in crossings.values())
        assert total == 2

    def test_interior_component_included_with_empty_list(self):
        points = np.array([[2, 2, 2], [3, 3, 3]], dtype=float)
        ds = chain_dataset(points)
        graph = SpatialGraph([0])
        crossings = component_crossings(ds, graph, REGION)
        assert crossings == {0: []}


class TestDirectionRefinement:
    def test_smooths_towards_local_trend(self):
        # A chain heading +x with one deviant last segment.
        points = np.array(
            [[6, 5, 5], [7, 5, 5], [8, 5, 5], [9, 5, 5], [10.5, 6.5, 5]], dtype=float
        )
        ds = chain_dataset(points)
        ids = np.arange(ds.n_objects)
        (crossing,) = region_crossings(ds, ids, REGION)
        refined = refine_crossing_direction(ds, ids, crossing, radius=5.0)
        # The refined direction leans more towards +x than the raw one.
        assert refined.direction[0] > crossing.direction[0] - 1e-9
        assert np.linalg.norm(refined.direction) == pytest.approx(1.0)

    def test_no_nearby_objects_keeps_original(self):
        points = np.array([[5, 5, 5], [15, 5, 5]], dtype=float)
        ds = chain_dataset(points)
        (crossing,) = region_crossings(ds, np.array([0]), REGION)
        refined = refine_crossing_direction(ds, np.array([0]), crossing, radius=1e-6)
        assert np.allclose(refined.direction, crossing.direction)
