"""The Fig-10/11/12 microbenchmark grids as declarative matrices.

The contract under test: the matrix builders enumerate exactly the
figure's (benchmark x prefetcher) grid, cells are labelled back to
their Figure-10 rows, and -- the determinism anchor -- running a cell
through the orchestrator produces bit-identical metrics to the direct
``benchmarks/test_fig1*.py`` harness path (build tissue, generate
sequences, run_experiment) on the same tiny tissue.
"""

from __future__ import annotations

import pytest

from repro.baselines import EWMAPrefetcher, HilbertPrefetcher, StraightLinePrefetcher
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import run_cell, run_experiment
from repro.workload import MICROBENCHMARKS, microbenchmark_names
from repro.workload.sweeps import (
    FIG11_PREFETCHERS,
    FIG12_PREFETCHERS,
    fig10_matrix,
    fig11_matrix,
    fig12_matrix,
    microbenchmark_of,
)

TINY_NEURONS = 6
SEED = 7
FANOUT = 16
SEQUENCES = 2


@pytest.fixture(scope="module")
def tissue():
    return make_neuron_tissue(n_neurons=TINY_NEURONS, seed=SEED)


@pytest.fixture(scope="module")
def tissue_index(tissue):
    return FlatIndex(tissue, fanout=FANOUT)


def tiny(builder, **overrides):
    return builder(
        n_neurons=TINY_NEURONS,
        n_sequences=SEQUENCES,
        dataset_seed=SEED,
        fanout=FANOUT,
        **overrides,
    )


class TestGridShapes:
    def test_fig10_covers_the_whole_registry(self):
        matrix = tiny(fig10_matrix)
        assert len(matrix) == len(MICROBENCHMARKS)
        assert {cell.prefetcher.kind for cell in matrix} == {"scout"}

    def test_fig11_is_no_gap_benches_by_standard_prefetchers(self):
        matrix = tiny(fig11_matrix)
        no_gap = microbenchmark_names(with_gaps=False)
        assert len(matrix) == len(no_gap) * len(FIG11_PREFETCHERS)
        benches = {microbenchmark_of(cell.to_dict()) for cell in matrix}
        assert benches == set(no_gap)

    def test_fig12_adds_scout_opt_on_gap_benches(self):
        matrix = tiny(fig12_matrix)
        with_gaps = microbenchmark_names(with_gaps=True)
        assert len(matrix) == len(with_gaps) * len(FIG12_PREFETCHERS)
        kinds = {cell.prefetcher.kind for cell in matrix}
        assert "scout-opt" in kinds
        assert all(cell.workload.gap > 0 for cell in matrix)

    def test_benches_subset_and_validation(self):
        matrix = tiny(fig10_matrix, benches=["adhoc_stat", "model_building"])
        assert len(matrix) == 2
        with pytest.raises(ValueError, match="unknown microbenchmark"):
            tiny(fig10_matrix, benches=["warp_drive"])
        with pytest.raises(ValueError, match="at least one"):
            tiny(fig10_matrix, benches=[])

    def test_cells_label_back_to_their_benchmark(self):
        for cell in tiny(fig11_matrix):
            name = microbenchmark_of(cell.to_dict())
            bench = MICROBENCHMARKS[name]
            assert cell.workload.n_queries == bench.n_queries
            assert cell.workload.window_ratio == bench.window_ratio

    def test_non_benchmark_workload_labels_none(self):
        cell = tiny(fig10_matrix).cells()[0].to_dict()
        cell["workload"]["volume"] = 123_456.0
        assert microbenchmark_of(cell) is None


class TestDeterminismVsDirectHarness:
    """Matrix cells agree bit-for-bit with the benchmarks/ harness path."""

    def _direct(self, tissue, tissue_index, bench, prefetcher, seed):
        sequences = MICROBENCHMARKS[bench].generate(tissue, SEQUENCES, seed=seed)
        return run_experiment(tissue_index, sequences, prefetcher)

    def test_fig11_cells_match_direct_runs(self, tissue, tissue_index):
        bench = "adhoc_stat"
        matrix = tiny(fig11_matrix, benches=[bench])
        direct = {
            "ewma": EWMAPrefetcher(lam=0.3),
            "straight-line": StraightLinePrefetcher(),
            "hilbert": HilbertPrefetcher(tissue),
            "scout": ScoutPrefetcher(tissue, ScoutConfig()),
        }
        for cell in matrix:
            expected = self._direct(
                tissue, tissue_index, bench, direct[cell.prefetcher.kind], seed=11
            )
            assert run_cell(cell).metrics == expected.metrics, cell.prefetcher.kind

    def test_fig12_scout_opt_matches_direct_run(self, tissue, tissue_index):
        bench = "vis_gaps_high"
        matrix = tiny(fig12_matrix, benches=[bench], prefetchers=(("scout-opt", {}),))
        (cell,) = matrix.cells()
        expected = self._direct(
            tissue, tissue_index, bench, ScoutOptPrefetcher(tissue, tissue_index, ScoutConfig()), seed=12
        )
        assert run_cell(cell).metrics == expected.metrics

    def test_fig10_scout_matches_fig11_scout_cell(self):
        # Same bench, same seeds: the fig10 and fig11 grids must share
        # content-identical scout cells (resume dedupes across figures).
        fig10_cell = next(
            c for c in tiny(fig10_matrix, benches=["adhoc_stat"]) if c.prefetcher.kind == "scout"
        )
        fig11_cell = next(
            c for c in tiny(fig11_matrix, benches=["adhoc_stat"]) if c.prefetcher.kind == "scout"
        )
        assert fig10_cell.key() == fig11_cell.key()
