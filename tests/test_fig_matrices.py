"""The Fig-10/11/12 microbenchmark grids as declarative matrices.

The contract under test: the matrix builders enumerate exactly the
figure's (benchmark x prefetcher) grid, cells are labelled back to
their Figure-10 rows, and -- the determinism anchor -- running a cell
through the orchestrator produces bit-identical metrics to the direct
``benchmarks/test_fig1*.py`` harness path (build tissue, generate
sequences, run_experiment) on the same tiny tissue.
"""

from __future__ import annotations

import pytest

from repro.baselines import EWMAPrefetcher, HilbertPrefetcher, StraightLinePrefetcher
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import run_cell, run_experiment
from repro.workload import MICROBENCHMARKS, microbenchmark_names
from repro.workload.sweeps import (
    FIG11_PREFETCHERS,
    FIG12_PREFETCHERS,
    FIG17_DATASET_PARAMS,
    fig10_matrix,
    fig11_matrix,
    fig12_matrix,
    fig17_dataset_of,
    fig17_matrix,
    fig17_query_volume,
    microbenchmark_of,
)

TINY_NEURONS = 6
SEED = 7
FANOUT = 16
SEQUENCES = 2


@pytest.fixture(scope="module")
def tissue():
    return make_neuron_tissue(n_neurons=TINY_NEURONS, seed=SEED)


@pytest.fixture(scope="module")
def tissue_index(tissue):
    return FlatIndex(tissue, fanout=FANOUT)


def tiny(builder, **overrides):
    return builder(
        n_neurons=TINY_NEURONS,
        n_sequences=SEQUENCES,
        dataset_seed=SEED,
        fanout=FANOUT,
        **overrides,
    )


class TestGridShapes:
    def test_fig10_covers_the_whole_registry(self):
        matrix = tiny(fig10_matrix)
        assert len(matrix) == len(MICROBENCHMARKS)
        assert {cell.prefetcher.kind for cell in matrix} == {"scout"}

    def test_fig11_is_no_gap_benches_by_standard_prefetchers(self):
        matrix = tiny(fig11_matrix)
        no_gap = microbenchmark_names(with_gaps=False)
        assert len(matrix) == len(no_gap) * len(FIG11_PREFETCHERS)
        benches = {microbenchmark_of(cell.to_dict()) for cell in matrix}
        assert benches == set(no_gap)

    def test_fig12_adds_scout_opt_on_gap_benches(self):
        matrix = tiny(fig12_matrix)
        with_gaps = microbenchmark_names(with_gaps=True)
        assert len(matrix) == len(with_gaps) * len(FIG12_PREFETCHERS)
        kinds = {cell.prefetcher.kind for cell in matrix}
        assert "scout-opt" in kinds
        assert all(cell.workload.gap > 0 for cell in matrix)

    def test_benches_subset_and_validation(self):
        matrix = tiny(fig10_matrix, benches=["adhoc_stat", "model_building"])
        assert len(matrix) == 2
        with pytest.raises(ValueError, match="unknown microbenchmark"):
            tiny(fig10_matrix, benches=["warp_drive"])
        with pytest.raises(ValueError, match="at least one"):
            tiny(fig10_matrix, benches=[])

    def test_cells_label_back_to_their_benchmark(self):
        for cell in tiny(fig11_matrix):
            name = microbenchmark_of(cell.to_dict())
            bench = MICROBENCHMARKS[name]
            assert cell.workload.n_queries == bench.n_queries
            assert cell.workload.window_ratio == bench.window_ratio

    def test_non_benchmark_workload_labels_none(self):
        cell = tiny(fig10_matrix).cells()[0].to_dict()
        cell["workload"]["volume"] = 123_456.0
        assert microbenchmark_of(cell) is None


#: Shrunken Fig-17 dataset parameters for fast grid tests.
TINY_FIG17 = {
    "lung": {"seed": 17, "max_depth": 2},
    "arterial": {"seed": 17, "max_depth": 2},
    "roads": {"seed": 17, "grid_size": 4},
}


class TestFig17Grid:
    def test_covers_datasets_x_standard_prefetchers(self):
        cells = fig17_matrix("a", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        assert len(cells) == len(TINY_FIG17) * len(FIG11_PREFETCHERS)
        assert {cell.dataset.kind for cell in cells} == set(TINY_FIG17)
        assert {cell.prefetcher.kind for cell in cells} == {
            kind for kind, _ in FIG11_PREFETCHERS
        }
        assert {fig17_dataset_of(cell.to_dict()) for cell in cells} == set(TINY_FIG17)

    def test_default_grid_names_the_paper_datasets(self):
        assert list(FIG17_DATASET_PARAMS) == ["lung", "arterial", "roads"]

    def test_large_regime_is_fixed_factor_above_small(self):
        small = fig17_matrix("a", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        large = fig17_matrix("b", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        small_volumes = {c.dataset.kind: c.workload.volume for c in small}
        large_volumes = {c.dataset.kind: c.workload.volume for c in large}
        for kind in TINY_FIG17:
            assert large_volumes[kind] == pytest.approx(4.0 * small_volumes[kind])

    def test_volumes_differ_per_dataset(self):
        # Each dataset carries its own query volume (sized from its own
        # extent and density), which is why Fig 17 is a list of cells,
        # not one cross-product matrix.
        cells = fig17_matrix("a", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        volumes = {c.dataset.kind: c.workload.volume for c in cells}
        assert len(set(volumes.values())) == len(volumes)

    def test_query_volume_validates_regime(self, tissue):
        with pytest.raises(ValueError, match="regime"):
            fig17_query_volume(tissue, "medium")

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError, match="panel"):
            fig17_matrix("z", datasets=TINY_FIG17)
        with pytest.raises(ValueError, match="at least one dataset"):
            fig17_matrix("a", datasets={})

    def test_matrix_is_deterministic(self):
        once = fig17_matrix("a", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        again = fig17_matrix("a", datasets=TINY_FIG17, n_sequences=SEQUENCES)
        assert [c.key() for c in once] == [c.key() for c in again]

    def test_roads_cell_runs_end_to_end(self):
        cells = fig17_matrix(
            "a",
            datasets={"roads": TINY_FIG17["roads"]},
            prefetchers=(("scout", {}),),
            n_sequences=SEQUENCES,
        )
        (cell,) = cells
        result = run_cell(cell)
        assert result.ok and 0.0 <= result.metrics.cache_hit_rate <= 1.0


class TestDeterminismVsDirectHarness:
    """Matrix cells agree bit-for-bit with the benchmarks/ harness path."""

    def _direct(self, tissue, tissue_index, bench, prefetcher, seed):
        sequences = MICROBENCHMARKS[bench].generate(tissue, SEQUENCES, seed=seed)
        return run_experiment(tissue_index, sequences, prefetcher)

    def test_fig11_cells_match_direct_runs(self, tissue, tissue_index):
        bench = "adhoc_stat"
        matrix = tiny(fig11_matrix, benches=[bench])
        direct = {
            "ewma": EWMAPrefetcher(lam=0.3),
            "straight-line": StraightLinePrefetcher(),
            "hilbert": HilbertPrefetcher(tissue),
            "scout": ScoutPrefetcher(tissue, ScoutConfig()),
        }
        for cell in matrix:
            expected = self._direct(
                tissue, tissue_index, bench, direct[cell.prefetcher.kind], seed=11
            )
            assert run_cell(cell).metrics == expected.metrics, cell.prefetcher.kind

    def test_fig12_scout_opt_matches_direct_run(self, tissue, tissue_index):
        bench = "vis_gaps_high"
        matrix = tiny(fig12_matrix, benches=[bench], prefetchers=(("scout-opt", {}),))
        (cell,) = matrix.cells()
        expected = self._direct(
            tissue,
            tissue_index,
            bench,
            ScoutOptPrefetcher(tissue, tissue_index, ScoutConfig()),
            seed=12,
        )
        assert run_cell(cell).metrics == expected.metrics

    def test_fig10_scout_matches_fig11_scout_cell(self):
        # Same bench, same seeds: the fig10 and fig11 grids must share
        # content-identical scout cells (resume dedupes across figures).
        fig10_cell = next(
            c for c in tiny(fig10_matrix, benches=["adhoc_stat"]) if c.prefetcher.kind == "scout"
        )
        fig11_cell = next(
            c for c in tiny(fig11_matrix, benches=["adhoc_stat"]) if c.prefetcher.kind == "scout"
        )
        assert fig10_cell.key() == fig11_cell.key()
