"""Hilbert-curve correctness: bijectivity, locality, bounds."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import hilbert_decode, hilbert_encode


class TestRoundtrip:
    @given(st.integers(0, 2**15 - 1))
    def test_3d_decode_encode(self, value):
        coords = hilbert_decode(value, dims=3, bits=5)
        assert hilbert_encode(coords, bits=5) == value

    @given(st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31)))
    def test_3d_encode_decode(self, coords):
        value = hilbert_encode(coords, bits=5)
        assert hilbert_decode(value, dims=3, bits=5) == coords

    @given(st.tuples(st.integers(0, 255), st.integers(0, 255)))
    def test_2d_roundtrip(self, coords):
        value = hilbert_encode(coords, bits=8)
        assert hilbert_decode(value, dims=2, bits=8) == coords


class TestRoundtripAnyPrecision:
    """Bijectivity as a property over the whole (dims, bits) lattice.

    The fixed-precision round-trips above pin the common configurations;
    these shrink over precision too, so a transform bug that only bites
    at odd bit widths (the Skilling loops run ``bits - 1`` times) still
    falls to the smallest failing example.
    """

    @given(st.integers(2, 3), st.integers(1, 6), st.integers(0, 2**18 - 1))
    def test_decode_encode_identity(self, dims, bits, seed):
        value = seed % (1 << (dims * bits))
        coords = hilbert_decode(value, dims=dims, bits=bits)
        assert all(0 <= c < (1 << bits) for c in coords)
        assert hilbert_encode(coords, bits=bits) == value

    @given(st.integers(2, 3), st.integers(1, 6), st.integers(0, 2**18 - 1))
    def test_encode_decode_identity(self, dims, bits, seed):
        coords = tuple((seed >> (axis * bits)) % (1 << bits) for axis in range(dims))
        value = hilbert_encode(coords, bits=bits)
        assert 0 <= value < (1 << (dims * bits))
        assert hilbert_decode(value, dims=dims, bits=bits) == coords


class TestLocalityMonotonicity:
    """Curve distance bounds grid distance, monotonically in the step.

    Each unit step along the curve moves exactly one grid cell, so by
    the triangle inequality ``d`` curve steps can move at most ``d``
    cells of Manhattan distance -- the locality guarantee the sharded
    cache's range partitioning (DESIGN.md §10) and the Hilbert-Prefetch
    baseline both lean on.  Property-tested so the bound holds from
    adjacent values out to long strides, not just for neighbors.
    """

    @given(st.integers(0, 2**8 - 2), st.integers(1, 64))
    def test_2d_curve_distance_bounds_manhattan_distance(self, value, step):
        step = min(step, 2**8 - 1 - value)
        a = np.array(hilbert_decode(value, dims=2, bits=4))
        b = np.array(hilbert_decode(value + step, dims=2, bits=4))
        assert np.abs(b - a).sum() <= step

    @given(st.integers(0, 2**9 - 2), st.integers(1, 64))
    def test_3d_curve_distance_bounds_manhattan_distance(self, value, step):
        step = min(step, 2**9 - 1 - value)
        a = np.array(hilbert_decode(value, dims=3, bits=3))
        b = np.array(hilbert_decode(value + step, dims=3, bits=3))
        assert np.abs(b - a).sum() <= step

    @given(st.integers(2, 3), st.integers(2, 5), st.integers(0, 2**15 - 2))
    def test_unit_steps_move_exactly_one_cell(self, dims, bits, seed):
        value = seed % ((1 << (dims * bits)) - 1)
        a = np.array(hilbert_decode(value, dims=dims, bits=bits))
        b = np.array(hilbert_decode(value + 1, dims=dims, bits=bits))
        assert np.abs(b - a).sum() == 1


class TestCurveStructure:
    def test_visits_every_cell_exactly_once_2d(self):
        seen = {hilbert_decode(v, dims=2, bits=3) for v in range(64)}
        assert len(seen) == 64

    def test_visits_every_cell_exactly_once_3d(self):
        seen = {hilbert_decode(v, dims=3, bits=2) for v in range(64)}
        assert len(seen) == 64

    def test_consecutive_values_are_grid_neighbors_2d(self):
        """The defining Hilbert property: curve steps move one cell."""
        previous = np.array(hilbert_decode(0, dims=2, bits=4))
        for value in range(1, 256):
            current = np.array(hilbert_decode(value, dims=2, bits=4))
            assert np.abs(current - previous).sum() == 1, value
            previous = current

    def test_consecutive_values_are_grid_neighbors_3d(self):
        previous = np.array(hilbert_decode(0, dims=3, bits=3))
        for value in range(1, 512):
            current = np.array(hilbert_decode(value, dims=3, bits=3))
            assert np.abs(current - previous).sum() == 1, value
            previous = current


class TestValidation:
    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(ValueError):
            hilbert_encode((8, 0, 0), bits=3)

    def test_rejects_negative_coordinate(self):
        with pytest.raises(ValueError):
            hilbert_encode((-1, 0, 0), bits=3)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            hilbert_decode(512, dims=3, bits=3)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hilbert_encode((0, 0), bits=0)

    def test_one_dimension_is_identity(self):
        assert hilbert_encode((5,), bits=4) == 5
        assert hilbert_decode(5, dims=1, bits=4) == (5,)
