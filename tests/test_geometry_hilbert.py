"""Hilbert-curve correctness: bijectivity, locality, bounds."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import hilbert_decode, hilbert_encode


class TestRoundtrip:
    @given(st.integers(0, 2**15 - 1))
    def test_3d_decode_encode(self, value):
        coords = hilbert_decode(value, dims=3, bits=5)
        assert hilbert_encode(coords, bits=5) == value

    @given(st.tuples(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31)))
    def test_3d_encode_decode(self, coords):
        value = hilbert_encode(coords, bits=5)
        assert hilbert_decode(value, dims=3, bits=5) == coords

    @given(st.tuples(st.integers(0, 255), st.integers(0, 255)))
    def test_2d_roundtrip(self, coords):
        value = hilbert_encode(coords, bits=8)
        assert hilbert_decode(value, dims=2, bits=8) == coords


class TestCurveStructure:
    def test_visits_every_cell_exactly_once_2d(self):
        seen = {hilbert_decode(v, dims=2, bits=3) for v in range(64)}
        assert len(seen) == 64

    def test_visits_every_cell_exactly_once_3d(self):
        seen = {hilbert_decode(v, dims=3, bits=2) for v in range(64)}
        assert len(seen) == 64

    def test_consecutive_values_are_grid_neighbors_2d(self):
        """The defining Hilbert property: curve steps move one cell."""
        previous = np.array(hilbert_decode(0, dims=2, bits=4))
        for value in range(1, 256):
            current = np.array(hilbert_decode(value, dims=2, bits=4))
            assert np.abs(current - previous).sum() == 1, value
            previous = current

    def test_consecutive_values_are_grid_neighbors_3d(self):
        previous = np.array(hilbert_decode(0, dims=3, bits=3))
        for value in range(1, 512):
            current = np.array(hilbert_decode(value, dims=3, bits=3))
            assert np.abs(current - previous).sum() == 1, value
            previous = current


class TestValidation:
    def test_rejects_out_of_range_coordinate(self):
        with pytest.raises(ValueError):
            hilbert_encode((8, 0, 0), bits=3)

    def test_rejects_negative_coordinate(self):
        with pytest.raises(ValueError):
            hilbert_encode((-1, 0, 0), bits=3)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            hilbert_decode(512, dims=3, bits=3)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hilbert_encode((0, 0), bits=0)

    def test_one_dimension_is_identity(self):
        assert hilbert_encode((5,), bits=4) == 5
        assert hilbert_decode(5, dims=1, bits=4) == (5,)
