"""Fault tolerance of the sweep orchestrator.

The contract under test: a crashing or hung cell (1) gets a bounded
number of retries, (2) is recorded in the store as a ``status:
failed|timeout`` envelope instead of aborting the sweep, and (3) is
retried -- not skipped -- on the next resume, so a store converges on
all-ok as causes are fixed.  Legacy schema-1 records still load, and
schema-envelope mismatches are classified stale (recomputed), never
rendered.  A worker that dies *hard* (``os._exit``, simulating an OOM
kill or segfault) breaks the process pool; the runner must respawn it,
re-enqueue the in-flight cells with one attempt charged, and finish the
sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import (
    CellResult,
    CellSpec,
    DatasetSpec,
    IndexSpec,
    ParallelRunner,
    PrefetcherSpec,
    ResultStore,
    WorkloadSpec,
    run_cell,
)

TINY_DATASET = DatasetSpec("neuron", {"n_neurons": 6, "seed": 11})
TINY_INDEX = IndexSpec("flat", {"fanout": 16})
TINY_WORKLOAD = WorkloadSpec(n_sequences=2, n_queries=5, volume=20_000.0)


def cell(prefetcher: PrefetcherSpec) -> CellSpec:
    return CellSpec(TINY_DATASET, TINY_INDEX, TINY_WORKLOAD, prefetcher, seed=3)


OK_CELL = cell(PrefetcherSpec("none"))
HANGING_CELL = cell(PrefetcherSpec("_sleep", {"seconds": 60.0}))
RAISING_CELL = cell(PrefetcherSpec("_fail", {"message": "injected kaboom"}))


class TestFailureEnvelope:
    def test_raising_cell_recorded_not_raised(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=1, store=store, retries=0).run([RAISING_CELL, OK_CELL])
        failed, ok = report.results
        assert failed.status == "failed" and not failed.ok
        assert failed.metrics is None
        assert "injected kaboom" in failed.error
        assert ok.ok and ok.metrics is not None
        assert report.n_failed == 1 and report.n_computed == 1
        assert report.failed_keys == [RAISING_CELL.key()]
        assert report.ok_results == [ok]

    def test_retries_counted_in_envelope(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=1, store=store, retries=2).run([RAISING_CELL])
        assert report.results[0].attempts == 3

    def test_failure_record_round_trips_through_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path), retries=0).run([RAISING_CELL])
        reloaded = ResultStore(path).load()[RAISING_CELL.key()]
        assert reloaded.status == "failed"
        assert reloaded.metrics is None
        assert "injected kaboom" in reloaded.error

    def test_resume_retries_failures_but_skips_ok(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path), retries=0).run([RAISING_CELL, OK_CELL])
        report = ParallelRunner(jobs=1, store=ResultStore(path), retries=0).run(
            [RAISING_CELL, OK_CELL]
        )
        assert report.skipped_keys == [OK_CELL.key()]
        assert report.failed_keys == [RAISING_CELL.key()]

    def test_transient_failure_succeeds_on_retry(self, tmp_path):
        flaky = cell(PrefetcherSpec("_fail", {"once_flag": str(tmp_path / "flag")}))
        report = ParallelRunner(jobs=1, retries=1).run([flaky])
        result = report.results[0]
        assert result.ok and result.attempts == 2
        assert report.n_computed == 1 and report.n_failed == 0

    def test_pooled_failures_do_not_abort_siblings(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=2, store=store, retries=0).run(
            [RAISING_CELL, OK_CELL, cell(PrefetcherSpec("straight-line"))]
        )
        assert report.n_failed == 1 and report.n_computed == 2
        assert all(r.ok for r in report.results[1:])

    def test_invalid_envelope_states_rejected(self):
        ok = run_cell(OK_CELL)
        with pytest.raises(ValueError, match="status"):
            CellResult(key=ok.key, spec=ok.spec, metrics=ok.metrics, status="exploded")
        with pytest.raises(ValueError, match="inconsistent"):
            CellResult(key=ok.key, spec=ok.spec, metrics=None, status="ok")
        with pytest.raises(ValueError, match="inconsistent"):
            CellResult(key=ok.key, spec=ok.spec, metrics=ok.metrics, status="failed")


class TestTimeouts:
    def test_hanging_cell_times_out_and_sweep_continues(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=1, store=store, timeout=0.3, retries=1).run(
            [HANGING_CELL, OK_CELL]
        )
        hung, ok = report.results
        assert hung.status == "timeout"
        assert hung.attempts == 2  # retried once before giving up
        assert "timeout" in hung.error.lower()
        assert ok.ok

    def test_pooled_hanging_cell_times_out(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=2, store=store, timeout=0.3, retries=0).run(
            [HANGING_CELL, OK_CELL]
        )
        by_key = {r.key: r for r in report.results}
        assert by_key[HANGING_CELL.key()].status == "timeout"
        assert by_key[OK_CELL.key()].ok

    def test_pooled_failure_elapsed_excludes_queue_wait(self, tmp_path):
        # With jobs=1 worth of slots busy, a queued cell waits; its
        # failure envelope must still record execution time (~timeout
        # per attempt), not time-since-submit.
        report = ParallelRunner(jobs=2, timeout=0.3, retries=0).run(
            [HANGING_CELL, cell(PrefetcherSpec("_sleep", {"seconds": 61.0})), OK_CELL]
        )
        for result in report.results[:2]:
            assert result.status == "timeout"
            assert result.elapsed_seconds < 5.0

    def test_timeout_leaves_fast_cells_untouched(self):
        generous = ParallelRunner(jobs=1, timeout=120.0).run([OK_CELL]).results[0]
        unlimited = ParallelRunner(jobs=1).run([OK_CELL]).results[0]
        assert generous.ok
        assert generous.metrics == unlimited.metrics

    def test_runner_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="timeout"):
            ParallelRunner(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ParallelRunner(retries=-1)


class TestPoolCrashes:
    """A worker killed mid-sweep must not abort the run."""

    def test_killed_worker_respawns_pool_and_sweep_completes(self, tmp_path):
        # The killer dies once (the flag file survives the respawned
        # pool), with a delay so the sibling finishes its first attempt
        # before the crash; every cell must still end up ok.
        killer = cell(
            PrefetcherSpec("_exit", {"once_flag": str(tmp_path / "flag"), "seconds": 0.5})
        )
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=2, store=store, retries=2).run([killer, OK_CELL])

        assert report.pool_crashes == 1
        assert all(result.ok for result in report.results)
        assert report.n_failed == 0
        # The whole outcome is durable: a fresh reader sees only ok cells.
        reloaded = ResultStore(tmp_path / "store.jsonl").load()
        assert {key for key in reloaded} == {killer.key(), OK_CELL.key()}
        assert all(result.ok for result in reloaded.values())

    def test_crash_looping_cell_exhausts_attempts(self, tmp_path):
        # No flag: the cell kills its worker on every attempt.  Attempt
        # accounting must bound the crash loop and record an envelope.
        # (Run alone so no sibling races the crash; sibling survival is
        # covered deterministically by the once_flag test above.)
        killer = cell(PrefetcherSpec("_exit", {}))
        store = ResultStore(tmp_path / "store.jsonl")
        report = ParallelRunner(jobs=2, store=store, retries=1).run([killer])

        assert report.pool_crashes == 2  # one breakage per attempt
        dead = report.results[0]
        assert dead.status == "failed" and dead.attempts == 2
        assert "BrokenProcessPool" in dead.error
        # The envelope is durable, so the next resume retries the cell.
        reloaded = ResultStore(tmp_path / "store.jsonl").load()[killer.key()]
        assert reloaded.status == "failed"

    def test_single_cell_with_jobs_gt_1_stays_isolated(self, tmp_path):
        # A one-cell batch (e.g. a resume retrying the only failure)
        # must still run in a worker process: run serially, a hard crash
        # would kill the orchestrator itself.
        killer = cell(PrefetcherSpec("_exit", {}))
        report = ParallelRunner(jobs=2, retries=0).run([killer])
        assert report.results[0].status == "failed"
        assert report.pool_crashes == 1


class TestSchemaCompatibility:
    def _stored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path)).run([OK_CELL])
        return path

    def test_schema1_record_loads_as_ok(self, tmp_path):
        path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        for legacy_unknown in ("status", "attempts", "error"):
            record.pop(legacy_unknown)
        record["schema"] = 1
        path.write_text(json.dumps(record) + "\n")

        store = ResultStore(path)
        result = store.load()[OK_CELL.key()]
        assert result.ok and result.attempts == 1 and result.error is None
        assert store.n_stale == 0 and store.n_corrupt == 0

    def test_missing_metric_key_is_stale_not_corrupt(self, tmp_path):
        path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        del record["metrics"]["prediction_seconds"]  # written by an older revision
        path.write_text(json.dumps(record) + "\n")

        store = ResultStore(path)
        assert store.load() == {}
        assert store.n_stale == 1 and store.n_corrupt == 0
        assert store.n_dropped == 1

        # The stale cell is recomputed, not rendered from the old row.
        report = ParallelRunner(jobs=1, store=store).run([OK_CELL])
        assert report.n_computed == 1 and report.n_skipped == 0

    def test_unknown_schema_version_is_stale(self, tmp_path):
        path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record) + "\n")

        store = ResultStore(path)
        store.load()
        assert store.n_stale == 1 and store.n_corrupt == 0

    def test_garbled_line_is_corrupt_not_stale(self, tmp_path):
        path = self._stored(tmp_path)
        path.write_text("{ not json\n")
        store = ResultStore(path)
        store.load()
        assert store.n_corrupt == 1 and store.n_stale == 0

    def test_ok_results_excludes_failures(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        ParallelRunner(jobs=1, store=store, retries=0).run([RAISING_CELL, OK_CELL])
        assert {r.key for r in store.ok_results()} == {OK_CELL.key()}
        assert len(store.results()) == 2

    def test_compact_upgrades_schema1_records_in_place(self, tmp_path):
        # A legacy record is kept, rewritten as a (larger) schema-2
        # envelope -- so reclaimed_bytes is honestly negative here.
        path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        for legacy_unknown in ("status", "attempts", "error"):
            record.pop(legacy_unknown)
        record["schema"] = 1
        path.write_text(json.dumps(record) + "\n")

        report = ResultStore(path).compact()
        assert report.n_kept == 1 and report.reclaimed_bytes < 0
        upgraded = json.loads(path.read_text())
        assert upgraded["schema"] == 2 and upgraded["status"] == "ok"

    def test_compact_clears_stale_counts(self, tmp_path):
        path = self._stored(tmp_path)
        record = json.loads(path.read_text())
        record["schema"] = 999
        with path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        store = ResultStore(path)
        report = store.compact()
        assert report.n_kept == 1 and report.n_stale == 1
        assert report.reclaimed_bytes > 0
        fresh = ResultStore(path)
        fresh.load()
        assert fresh.n_stale == 0 and fresh.n_corrupt == 0
