"""The parallel experiment orchestrator and its persisted result store.

The contract under test: a cell's metrics are a pure function of its
spec, so (1) serial and parallel runs agree bit-for-bit, (2) a resumed
run reuses stored cells without recomputing them, and (3) corrupt or
truncated store lines are detected, dropped and recomputed.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import (
    CellSpec,
    DatasetSpec,
    ExperimentMatrix,
    IndexSpec,
    ParallelRunner,
    PrefetcherSpec,
    ResultStore,
    WorkloadSpec,
    cell_key,
    run_cell,
)
from repro.sim.results import CellResult

TINY_DATASET = DatasetSpec("neuron", {"n_neurons": 6, "seed": 11})
TINY_INDEX = IndexSpec("flat", {"fanout": 16})
TINY_WORKLOAD = WorkloadSpec(n_sequences=2, n_queries=5, volume=20_000.0)


def tiny_matrix(prefetchers=None) -> ExperimentMatrix:
    return ExperimentMatrix(
        datasets=(TINY_DATASET,),
        indexes=(TINY_INDEX,),
        workloads=(TINY_WORKLOAD,),
        prefetchers=tuple(
            prefetchers
            or (
                PrefetcherSpec("ewma", {"lam": 0.3}),
                PrefetcherSpec("straight-line"),
                PrefetcherSpec("none"),
            )
        ),
        seeds=(3,),
    )


class TestSpecs:
    def test_matrix_is_the_cross_product(self):
        matrix = ExperimentMatrix(
            datasets=(TINY_DATASET,),
            indexes=(TINY_INDEX,),
            workloads=(TINY_WORKLOAD, WorkloadSpec(n_sequences=1, n_queries=3, volume=9_000.0)),
            prefetchers=(PrefetcherSpec("none"), PrefetcherSpec("ewma", {"lam": 0.3})),
            seeds=(1, 2),
        )
        cells = matrix.cells()
        assert len(matrix) == len(cells) == 8
        assert len({cell.key() for cell in cells}) == 8

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            ExperimentMatrix(
                datasets=(),
                indexes=(TINY_INDEX,),
                workloads=(TINY_WORKLOAD,),
                prefetchers=(PrefetcherSpec("none"),),
            )

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError, match="dataset kind"):
            DatasetSpec("galaxy")
        with pytest.raises(ValueError, match="index kind"):
            IndexSpec("btree")
        with pytest.raises(ValueError, match="prefetcher kind"):
            PrefetcherSpec("psychic")

    def test_spec_round_trips_with_stable_key(self):
        cell = tiny_matrix().cells()[0]
        clone = CellSpec.from_dict(cell.to_dict())
        assert clone == cell
        assert clone.key() == cell.key()

    def test_key_ignores_numeric_spelling(self):
        a = CellSpec(TINY_DATASET, TINY_INDEX, TINY_WORKLOAD, PrefetcherSpec("none"), seed=3)
        b = CellSpec(
            TINY_DATASET,
            TINY_INDEX,
            WorkloadSpec(n_sequences=2, n_queries=5, volume=20_000, gap=0, window_ratio=1),
            PrefetcherSpec("none"),
            seed=3,
        )
        assert a.key() == b.key()

    def test_key_differs_when_any_axis_differs(self):
        base = CellSpec(TINY_DATASET, TINY_INDEX, TINY_WORKLOAD, PrefetcherSpec("none"), seed=3)
        other_seed = CellSpec(
            TINY_DATASET, TINY_INDEX, TINY_WORKLOAD, PrefetcherSpec("none"), seed=4
        )
        other_sim = CellSpec(
            TINY_DATASET,
            TINY_INDEX,
            TINY_WORKLOAD,
            PrefetcherSpec("none"),
            seed=3,
            sim={"cache_capacity_pages": 64},
        )
        assert len({base.key(), other_seed.key(), other_sim.key()}) == 3


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        matrix = tiny_matrix()
        serial = ParallelRunner(jobs=1).run(matrix)
        parallel = ParallelRunner(jobs=2).run(matrix)
        assert [r.key for r in serial.results] == [r.key for r in parallel.results]
        assert [r.metrics for r in serial.results] == [r.metrics for r in parallel.results]

    def test_results_follow_cell_order(self):
        cells = tiny_matrix().cells()
        report = ParallelRunner(jobs=1).run(list(reversed(cells)))
        assert [r.key for r in report.results] == [c.key() for c in reversed(cells)]

    def test_duplicate_cells_computed_once_and_share_results(self):
        cells = tiny_matrix().cells()
        report = ParallelRunner(jobs=1).run(cells + cells)
        assert report.n_computed == len(cells)
        assert report.results[: len(cells)] == report.results[len(cells) :]

    def test_sim_overrides_reach_the_engine(self):
        spec = CellSpec(
            TINY_DATASET,
            TINY_INDEX,
            TINY_WORKLOAD,
            PrefetcherSpec("ewma", {"lam": 0.3}),
            seed=3,
            sim={"cache_capacity_pages": 1},
        )
        starved = run_cell(spec)
        normal = run_cell(CellSpec(TINY_DATASET, TINY_INDEX, TINY_WORKLOAD,
                                   PrefetcherSpec("ewma", {"lam": 0.3}), seed=3))
        # A one-page prefetch cache cannot beat the unconstrained one.
        assert starved.metrics.cache_hit_rate <= normal.metrics.cache_hit_rate


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        matrix = tiny_matrix()
        path = tmp_path / "store.jsonl"
        first = ParallelRunner(jobs=1, store=ResultStore(path)).run(matrix)
        assert first.n_computed == len(matrix) and first.n_skipped == 0

        second = ParallelRunner(jobs=1, store=ResultStore(path)).run(matrix)
        assert second.n_computed == 0 and second.n_skipped == len(matrix)
        assert [r.metrics for r in second.results] == [r.metrics for r in first.results]

    def test_partial_store_computes_only_the_rest(self, tmp_path):
        cells = tiny_matrix().cells()
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path)).run(cells[:1])

        report = ParallelRunner(jobs=1, store=ResultStore(path)).run(cells)
        assert report.n_skipped == 1
        assert report.n_computed == len(cells) - 1

    def test_no_resume_recomputes_everything(self, tmp_path):
        matrix = tiny_matrix()
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path)).run(matrix)
        report = ParallelRunner(jobs=1, store=ResultStore(path)).run(matrix, resume=False)
        assert report.n_computed == len(matrix) and report.n_skipped == 0


class TestCorruptStore:
    def _seed_store(self, tmp_path):
        cells = tiny_matrix().cells()
        path = tmp_path / "store.jsonl"
        ParallelRunner(jobs=1, store=ResultStore(path)).run(cells)
        return cells, path

    def test_garbage_and_truncated_lines_are_dropped(self, tmp_path):
        cells, path = self._seed_store(tmp_path)
        lines = path.read_text().splitlines()
        lines[0] = "{ not json at all"
        lines[1] = lines[1][: len(lines[1]) // 2]  # crash mid-write
        path.write_text("\n".join(lines) + "\n")

        store = ResultStore(path)
        assert len(store.load()) == len(cells) - 2
        assert store.n_corrupt == 2

        report = ParallelRunner(jobs=1, store=store).run(cells)
        assert report.n_computed == 2 and report.n_skipped == len(cells) - 2

    def test_tampered_spec_fails_the_hash_check(self, tmp_path):
        cells, path = self._seed_store(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["spec"]["seed"] = 999  # spec no longer matches its key
        lines[0] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")

        store = ResultStore(path)
        assert store.n_corrupt == 0  # lazy: counted on load
        store.load()
        assert store.n_corrupt == 1
        assert len(store) == len(cells) - 1

    def test_wrong_schema_version_is_recomputed(self, tmp_path):
        cells, path = self._seed_store(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["schema"] = 999
        lines[0] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")

        report = ParallelRunner(jobs=1, store=ResultStore(path)).run(cells)
        assert report.n_computed == 1

    def test_compact_rewrites_without_corruption(self, tmp_path):
        cells, path = self._seed_store(tmp_path)
        with path.open("a") as fh:
            fh.write("garbage line\n")
        store = ResultStore(path)
        report = store.compact()
        assert report.n_kept == len(cells)
        assert report.n_corrupt == 1 and report.reclaimed_bytes > 0
        fresh = ResultStore(path)
        fresh.load()
        assert fresh.n_corrupt == 0 and len(fresh) == len(cells)

    def test_append_after_crash_truncated_tail(self, tmp_path):
        """A recomputed record must not glue onto a partial final line."""
        cells, path = self._seed_store(tmp_path)
        raw = path.read_bytes().rstrip(b"\n")
        path.write_bytes(raw[:-20])  # last line now partial, no newline

        store = ResultStore(path)
        report = ParallelRunner(jobs=1, store=store).run(cells)
        assert report.n_computed == 1

        fresh = ResultStore(path)
        assert len(fresh.load()) == len(cells)  # recomputed record survived
        assert fresh.n_corrupt == 1  # the partial line stayed isolated

    def test_duplicate_keys_last_record_wins(self, tmp_path):
        cells, path = self._seed_store(tmp_path)
        store = ResultStore(path)
        original = store.get(cells[0].key())
        doctored = CellResult(
            key=original.key,
            spec=original.spec,
            metrics=original.metrics,
            elapsed_seconds=original.elapsed_seconds + 123.0,
        )
        store.append(doctored)
        reloaded = ResultStore(path).load()
        assert reloaded[original.key].elapsed_seconds == doctored.elapsed_seconds


class TestRoundTrip:
    def test_stored_metrics_round_trip_exactly(self, tmp_path):
        cells = tiny_matrix().cells()
        path = tmp_path / "store.jsonl"
        report = ParallelRunner(jobs=1, store=ResultStore(path)).run(cells)
        reloaded = ResultStore(path).load()
        for result in report.results:
            assert reloaded[result.key].metrics == result.metrics

    def test_infinite_speedup_survives_the_store(self, tmp_path):
        # The oracle on a fully-cacheable workload can hit every page,
        # driving residual I/O to zero and speedup to infinity.
        result = run_cell(
            CellSpec(TINY_DATASET, TINY_INDEX, TINY_WORKLOAD, PrefetcherSpec("oracle"), seed=3)
        )
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append(result)
        reloaded = ResultStore(path).load()[result.key]
        assert reloaded.metrics.speedup == result.metrics.speedup

    def test_cell_key_matches_module_helper(self):
        cell = tiny_matrix().cells()[0]
        assert cell.key() == cell_key(cell.to_dict())
