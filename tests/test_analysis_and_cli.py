"""Reporting tables, sweep definitions and the CLI entry point."""

import pytest

from repro.analysis import ResultTable, format_row, paper_reference
from repro.cli import main
from repro.workload.sweeps import SENSITIVITY_DEFAULTS, fig13_axes, scale_factor


class TestResultTable:
    def test_render_includes_rows_and_columns(self):
        table = ResultTable("demo", ["a", "b"], figure_id="fig3")
        table.add_row("scout", [1.25, 2.5])
        text = table.render()
        assert "demo" in text and "scout" in text
        assert "paper:" in text  # fig3 has a reference note

    def test_row_length_validated(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("bad", [1.0])

    def test_cell_lookup(self):
        table = ResultTable("demo", ["x"])
        table.add_row("r", [3.25])
        assert table.cell("r", "x") == 3.25
        with pytest.raises(KeyError):
            table.cell("missing", "x")

    def test_format_row_handles_none_and_strings(self):
        row = format_row("label", [None, "n/a", 1.5])
        assert "n/a" in row and "1.5" in row

    def test_paper_reference_empty_for_unknown(self):
        assert paper_reference("fig99") == ""


class TestSweeps:
    def test_axes_cover_all_panels(self):
        axes = fig13_axes()
        assert sorted(axes) == [
            "a_query_volume",
            "b_density_neurons",
            "c_sequence_length",
            "d_window_ratio",
            "e_grid_resolution",
            "f_gap_distance",
        ]
        assert axes["e_grid_resolution"][0] == 32_768

    def test_defaults_match_paper(self):
        assert SENSITIVITY_DEFAULTS.n_queries == 25
        assert SENSITIVITY_DEFAULTS.volume == 80_000.0
        assert SENSITIVITY_DEFAULTS.window_ratio == 1.0

    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_scale_factor_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()


class TestCli:
    def test_list_benchmarks(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "adhoc_stat" in out and "vis_gaps_low" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "--prefetcher",
                "straight-line",
                "--benchmark",
                "adhoc_stat",
                "--neurons",
                "6",
                "--sequences",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out and "speedup" in out
