"""Reporting tables, sweep definitions and the CLI entry point."""

import pytest

from repro.analysis import ResultTable, format_row, paper_reference, sweep_table
from repro.cli import main
from repro.workload.sweeps import (
    SENSITIVITY_DEFAULTS,
    fig13_axes,
    fig13_axis_value,
    fig13_matrix,
    scale_factor,
)


class TestResultTable:
    def test_render_includes_rows_and_columns(self):
        table = ResultTable("demo", ["a", "b"], figure_id="fig3")
        table.add_row("scout", [1.25, 2.5])
        text = table.render()
        assert "demo" in text and "scout" in text
        assert "paper:" in text  # fig3 has a reference note

    def test_row_length_validated(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("bad", [1.0])

    def test_cell_lookup(self):
        table = ResultTable("demo", ["x"])
        table.add_row("r", [3.25])
        assert table.cell("r", "x") == 3.25
        with pytest.raises(KeyError):
            table.cell("missing", "x")

    def test_format_row_handles_none_and_strings(self):
        row = format_row("label", [None, "n/a", 1.5])
        assert "n/a" in row and "1.5" in row

    def test_paper_reference_empty_for_unknown(self):
        assert paper_reference("fig99") == ""


class TestSweeps:
    def test_axes_cover_all_panels(self):
        axes = fig13_axes()
        assert sorted(axes) == [
            "a_query_volume",
            "b_density_neurons",
            "c_sequence_length",
            "d_window_ratio",
            "e_grid_resolution",
            "f_gap_distance",
        ]
        assert axes["e_grid_resolution"][0] == 32_768

    def test_defaults_match_paper(self):
        assert SENSITIVITY_DEFAULTS.n_queries == 25
        assert SENSITIVITY_DEFAULTS.volume == 80_000.0
        assert SENSITIVITY_DEFAULTS.window_ratio == 1.0

    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_scale_factor_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()


class TestSweepTable:
    def make_results(self):
        return [
            {"row": "scout", "x": 0.1, "v": 29.0},
            {"row": "scout", "x": 2.5, "v": 88.0},
            {"row": "ewma", "x": 0.1, "v": 20.0},
        ]

    def test_pivots_rows_and_columns_in_first_appearance_order(self):
        table = sweep_table(
            "demo",
            self.make_results(),
            column_of=lambda r: r["x"],
            row_of=lambda r: r["row"],
            value_of=lambda r: r["v"],
        )
        assert table.columns == ["0.1", "2.5"]
        assert table.row_values("scout") == [29.0, 88.0]

    def test_missing_cells_render_blank(self):
        table = sweep_table(
            "demo",
            self.make_results(),
            column_of=lambda r: r["x"],
            row_of=lambda r: r["row"],
            value_of=lambda r: r["v"],
        )
        assert table.row_values("ewma") == [20.0, None]
        assert "ewma" in table.render()


class TestFig13Matrix:
    def test_every_panel_has_axis_sized_grid(self):
        axes = fig13_axes()
        for panel, axis_key in [
            ("a", "a_query_volume"),
            ("b", "b_density_neurons"),
            ("c", "c_sequence_length"),
            ("d", "d_window_ratio"),
            ("e", "e_grid_resolution"),
        ]:
            matrix = fig13_matrix(panel, n_neurons=6, n_sequences=2)
            assert len(matrix) == len(axes[axis_key]), panel

    def test_gap_panel_pairs_scout_with_scout_opt(self):
        matrix = fig13_matrix("f", n_neurons=6, n_sequences=2)
        kinds = {cell.prefetcher.kind for cell in matrix}
        assert kinds == {"scout", "scout-opt"}
        assert len(matrix) == 2 * len(fig13_axes()["f_gap_distance"])

    def test_axis_values_recoverable_from_specs(self):
        axis = [0.5, 1.5]
        matrix = fig13_matrix("d", n_neurons=6, n_sequences=2, axis=axis)
        values = [fig13_axis_value("d", cell.to_dict()) for cell in matrix]
        assert values == axis

    def test_unknown_panel_rejected(self):
        with pytest.raises(ValueError, match="panel"):
            fig13_matrix("z")
        with pytest.raises(ValueError, match="panel"):
            fig13_axis_value("z", {})


class TestCli:
    def test_list_benchmarks(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "adhoc_stat" in out and "vis_gaps_low" in out

    def test_run_subcommand_is_the_legacy_default(self, capsys):
        assert main(["run", "--list"]) == 0
        assert "adhoc_stat" in capsys.readouterr().out

    def test_run_small_experiment(self, capsys):
        code = main(
            [
                "--prefetcher",
                "straight-line",
                "--benchmark",
                "adhoc_stat",
                "--neurons",
                "6",
                "--sequences",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out and "speedup" in out


class TestSweepCli:
    SWEEP_ARGS = [
        "sweep",
        "--panels", "d",
        "--points", "2",
        "--neurons", "6",
        "--sequences", "2",
        "--jobs", "1",
    ]

    def test_sweep_computes_then_resumes(self, capsys, tmp_path):
        args = self.SWEEP_ARGS + ["--out", str(tmp_path / "sweep.jsonl")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Fig 13d" in out and "computed 2" in out and "resumed 0" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "computed 0" in out and "resumed 2" in out

    def test_sweep_no_resume_recomputes(self, capsys, tmp_path):
        args = self.SWEEP_ARGS + ["--out", str(tmp_path / "sweep.jsonl")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-resume"]) == 0
        assert "computed 2" in capsys.readouterr().out

    def test_sweep_recovers_from_corrupt_store(self, capsys, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        args = self.SWEEP_ARGS + ["--out", str(store_path)]
        assert main(args) == 0
        capsys.readouterr()
        lines = store_path.read_text().splitlines()
        lines[0] = lines[0][:30]  # truncate: crash mid-write
        store_path.write_text("\n".join(lines) + "\n")

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "computed 1" in out and "resumed 1" in out and "corrupt-dropped 1" in out

    def test_sweep_list_cells(self, capsys, tmp_path):
        args = self.SWEEP_ARGS + ["--list-cells", "--out", str(tmp_path / "s.jsonl")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out and "scout" in out
        assert not (tmp_path / "s.jsonl").exists()

    def test_sweep_rejects_unknown_panel(self, capsys):
        assert main(["sweep", "--panels", "q"]) == 2
        assert "unknown panel" in capsys.readouterr().out

    def test_sweep_figure_10_renders_bench_tables(self, capsys, tmp_path):
        args = [
            "sweep", "--figure", "10", "--benches", "adhoc_stat",
            "--neurons", "6", "--sequences", "2",
            "--out", str(tmp_path / "fig10.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Fig 10 sweep" in out and "adhoc_stat" in out
        assert "computed 1" in out and "failed 0" in out

        assert main(args) == 0
        assert "resumed 1" in capsys.readouterr().out

    def test_sweep_rejects_unknown_bench(self, capsys, tmp_path):
        args = [
            "sweep", "--figure", "11", "--benches", "warp_drive",
            "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(args) == 2
        assert "unknown microbenchmark" in capsys.readouterr().out

    def test_sweep_rejects_malformed_shard(self, capsys, tmp_path):
        for shard in ("2/2", "a/b", "3"):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", "--shard", shard, "--out", str(tmp_path / "s.jsonl")])
            assert excinfo.value.code == 2

    def test_sharded_sweep_merges_to_full_grid(self, capsys, tmp_path):
        out = tmp_path / "fig10.jsonl"
        base = [
            "sweep", "--figure", "10", "--benches", "adhoc_stat,model_building",
            "--neurons", "6", "--sequences", "2", "--out", str(out),
        ]
        shard_cells = []
        for shard in ("0/2", "1/2"):
            assert main(base + ["--shard", shard]) == 0
            summary = capsys.readouterr().out
            assert f"shard {shard}" in summary
            shard_cells.append(int(summary.split("cells ", 1)[1].split()[0]))
        assert sum(shard_cells) == 2  # the slices partition the grid

        shard_paths = [str(tmp_path / f"fig10.shard{i}of2.jsonl") for i in (0, 1)]
        assert main(["merge", "--out", str(out)] + shard_paths) == 0
        merge_out = capsys.readouterr().out
        assert "merged 2 cells" in merge_out

        # The merged store satisfies an unsharded resume of the grid.
        assert main(base) == 0
        assert "resumed 2" in capsys.readouterr().out

    def test_sweep_rejects_mixed_figure_flags(self, tmp_path):
        mixed = [
            ["sweep", "--figure", "10", "--panels", "a"],
            ["sweep", "--figure", "11", "--points", "2"],
            ["sweep", "--figure", "13", "--benches", "adhoc_stat"],
            ["sweep", "--figure", "17", "--benches", "adhoc_stat"],
            ["sweep", "--figure", "17", "--points", "2"],
            ["sweep", "--figure", "17", "--neurons", "6"],
            ["sweep", "--figure", "13", "--datasets", "roads"],
            ["sweep", "--figure", "13", "--clients", "1,2"],
            ["sweep", "--figure", "10", "--cache-pages", "64"],
            ["sweep", "--figure", "17", "--contention", "hotspot"],
            ["sweep", "--figure", "clients", "--sequences", "2"],
            ["sweep", "--figure", "clients", "--panels", "a"],
        ]
        for args in mixed:
            with pytest.raises(SystemExit) as excinfo:
                main(args + ["--out", str(tmp_path / "s.jsonl")])
            assert excinfo.value.code == 2, args

    CLIENTS_ARGS = [
        "sweep", "--figure", "clients",
        "--clients", "1,2",
        "--cache-pages", "auto,32",
        "--neurons", "6",
        "--jobs", "1",
    ]

    def test_clients_sweep_renders_per_client_count_tables(self, capsys, tmp_path):
        args = self.CLIENTS_ARGS + ["--out", str(tmp_path / "clients.jsonl")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Serving sweep -- shared cache auto -- aggregate hit rate" in out
        assert "Serving sweep -- shared cache 32 pages" in out
        assert "per-client hit-rate std" in out
        assert "computed 8" in out and "failed 0" in out

        # The store satisfies a resume, like every other figure grid.
        assert main(args) == 0
        assert "resumed 8" in capsys.readouterr().out

    def test_clients_sweep_hotspot_mode_and_list_cells(self, capsys, tmp_path):
        args = self.CLIENTS_ARGS + [
            "--contention", "hotspot",
            "--list-cells", "--out", str(tmp_path / "c.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 cells" in out and "clients=2" in out

    def test_clients_sweep_rejects_bad_values(self, tmp_path):
        bad = [
            ["sweep", "--figure", "clients", "--clients", "0"],
            ["sweep", "--figure", "clients", "--clients", "two"],
            ["sweep", "--figure", "clients", "--cache-pages", "0"],
            ["sweep", "--figure", "clients", "--cache-pages", "many"],
            ["sweep", "--figure", "18"],
        ]
        for args in bad:
            with pytest.raises(SystemExit) as excinfo:
                main(args + ["--out", str(tmp_path / "s.jsonl")])
            assert excinfo.value.code == 2, args

    def test_merge_warns_about_missing_inputs(self, capsys, tmp_path):
        out = tmp_path / "fig10.jsonl"
        assert main([
            "sweep", "--figure", "10", "--benches", "adhoc_stat",
            "--neurons", "6", "--sequences", "2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        missing = str(tmp_path / "nope.jsonl")
        assert main(["merge", "--out", str(out), str(out), missing]) == 0
        merge_out = capsys.readouterr().out
        assert "does not exist" in merge_out and "missing-inputs 1" in merge_out
        assert "merged 1 cells" in merge_out

    def test_sweep_list_cells_names_benches(self, capsys, tmp_path):
        args = [
            "sweep", "--figure", "12", "--list-cells",
            "--neurons", "6", "--sequences", "2",
            "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "bench=vis_gaps_high" in out and "scout-opt" in out
        assert "10 cells" in out  # 2 gap benches x 5 prefetchers

    def test_sweep_figure_17_computes_and_renders_dataset_table(self, capsys, tmp_path):
        args = [
            "sweep", "--figure", "17", "--panels", "a", "--datasets", "roads",
            "--sequences", "2", "--out", str(tmp_path / "fig17.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Fig 17a" in out and "roads" in out and "scout" in out
        assert "paper:" in out  # fig17a carries the paper's shape note
        assert "computed 4" in out and "failed 0" in out

        assert main(args) == 0
        assert "resumed 4" in capsys.readouterr().out

    def test_sweep_figure_17_list_cells_names_datasets(self, capsys, tmp_path):
        args = [
            "sweep", "--figure", "17", "--list-cells", "--sequences", "2",
            "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "dataset=lung" in out and "dataset=arterial" in out and "dataset=roads" in out
        assert "24 cells" in out  # 2 panels x 3 datasets x 4 prefetchers

    def test_sweep_figure_17_rejects_unknown_panel_and_dataset(self, capsys, tmp_path):
        assert main(["sweep", "--figure", "17", "--panels", "q",
                     "--out", str(tmp_path / "s.jsonl")]) == 2
        assert "unknown panel" in capsys.readouterr().out
        assert main(["sweep", "--figure", "17", "--datasets", "ocean",
                     "--out", str(tmp_path / "s.jsonl")]) == 2
        assert "unknown dataset" in capsys.readouterr().out

    def test_compact_rewrites_store_and_reports_reclaimed_bytes(self, capsys, tmp_path):
        store_path = tmp_path / "sweep.jsonl"
        assert main(self.SWEEP_ARGS + ["--out", str(store_path)]) == 0
        capsys.readouterr()
        lines = store_path.read_text().splitlines()
        with store_path.open("a") as fh:
            fh.write("{ not json\n")  # corrupt
            fh.write(lines[0] + "\n")  # superseded duplicate
        before = store_path.stat().st_size

        assert main(["compact", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 2 cells" in out and "corrupt 1" in out and "superseded 1" in out
        assert "reclaimed" in out
        assert store_path.stat().st_size < before

        # Every ok record survived: the sweep fully resumes from it.
        assert main(self.SWEEP_ARGS + ["--out", str(store_path)]) == 0
        assert "resumed 2" in capsys.readouterr().out

    def test_compact_missing_store_fails(self, capsys, tmp_path):
        assert main(["compact", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().out

    def test_sweep_neurons_rescales_density_panel(self, capsys, tmp_path):
        # Panel b's axis is the neuron count; --neurons must shrink it
        # rather than being silently ignored (first tick 40 -> 40*4/80).
        args = [
            "sweep", "--panels", "b", "--points", "1", "--neurons", "4",
            "--sequences", "2", "--list-cells", "--out", str(tmp_path / "s.jsonl"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "axis=2" in out and "1 cells" in out
