"""Simulator: Figure-2 timeline semantics, metrics, experiment helpers."""

import numpy as np
import pytest

from repro.baselines import NoPrefetcher, OraclePrefetcher, StraightLinePrefetcher
from repro.core import ScoutPrefetcher
from repro.sim import (
    SimulationConfig,
    SimulationEngine,
    aggregate,
    run_experiment,
)
from repro.sim.metrics import QueryRecord, SequenceMetrics
from repro.workload import generate_sequence, generate_sequences


def record(index=0, needed=10, hit=5, objects=100, objects_hit=50, residual=1.0, cold=2.0):
    return QueryRecord(
        index=index,
        pages_needed=needed,
        pages_hit=hit,
        objects_needed=objects,
        objects_hit=objects_hit,
        residual_seconds=residual,
        cold_seconds=cold,
        window_seconds=1.0,
        prediction_seconds=0.01,
        graph_build_seconds=0.005,
        prefetch_pages=3,
        prefetch_seconds=0.5,
        gap_io_pages=0,
        n_result_objects=objects,
        n_candidates=1,
    )


class TestMetrics:
    def test_first_query_excluded_from_hit_rate(self):
        metrics = SequenceMetrics(
            records=[record(0, objects_hit=0), record(1, objects_hit=100)]
        )
        assert metrics.cache_hit_rate == pytest.approx(1.0)

    def test_hit_rate_object_weighted(self):
        metrics = SequenceMetrics(
            records=[
                record(0),
                record(1, objects=100, objects_hit=25),
                record(2, objects=300, objects_hit=300),
            ]
        )
        assert metrics.cache_hit_rate == pytest.approx(325 / 400)

    def test_page_hit_rate(self):
        metrics = SequenceMetrics(records=[record(0), record(1, needed=10, hit=4)])
        assert metrics.page_hit_rate == pytest.approx(0.4)

    def test_speedup_is_cold_over_response(self):
        metrics = SequenceMetrics(records=[record(residual=1.0, cold=4.0)] * 3)
        assert metrics.speedup == pytest.approx(4.0)

    def test_speedup_infinite_when_response_zero(self):
        metrics = SequenceMetrics(records=[record(residual=0.0)])
        assert metrics.speedup == float("inf")

    def test_empty_sequence_hit_rate_zero(self):
        assert SequenceMetrics().cache_hit_rate == 0.0

    def test_aggregate_pools_counts(self):
        seq_a = SequenceMetrics(records=[record(0), record(1, objects=100, objects_hit=100)])
        seq_b = SequenceMetrics(records=[record(0), record(1, objects=100, objects_hit=0)])
        pooled = aggregate([seq_a, seq_b])
        assert pooled.cache_hit_rate == pytest.approx(0.5)
        assert pooled.n_sequences == 2
        assert pooled.hit_rate_std > 0

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_breakdown_totals(self):
        metrics = SequenceMetrics(records=[record()] * 4)
        assert metrics.graph_build_seconds == pytest.approx(0.02)
        assert metrics.prediction_seconds == pytest.approx(0.04)
        assert metrics.total_prefetch_pages == 12


class TestEngineSemantics:
    def test_no_prefetcher_means_no_hits_and_unit_speedup(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, NoPrefetcher())
        assert metrics.cache_hit_rate == 0.0
        assert metrics.speedup == pytest.approx(1.0)

    def test_oracle_hits_nearly_everything(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=8, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        oracle = OraclePrefetcher(seq)
        metrics = engine.run(seq, oracle)
        assert metrics.cache_hit_rate > 0.8
        assert metrics.speedup > 3.0

    def test_first_query_never_hits(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, OraclePrefetcher(seq))
        assert metrics.records[0].pages_hit == 0

    def test_window_scales_with_ratio(self, tissue, tissue_flat, rng):
        slow = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0, window_ratio=0.5)
        engine = SimulationEngine(tissue_flat)
        m = engine.run(slow, NoPrefetcher())
        for r in m.records:
            assert r.window_seconds == pytest.approx(0.5 * r.cold_seconds)

    def test_zero_window_prevents_prefetching(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0, window_ratio=0.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, OraclePrefetcher(seq))
        assert metrics.total_prefetch_pages == 0
        assert metrics.cache_hit_rate == 0.0

    def test_prefetch_seconds_never_exceed_window(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=6, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, ScoutPrefetcher(tissue))
        for r in metrics.records:
            # One batch may overshoot by a single region's cost.
            assert r.prefetch_seconds <= r.window_seconds + 0.05

    def test_residual_io_matches_missed_pages(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, NoPrefetcher())
        for r in metrics.records:
            assert r.pages_hit == 0
            assert r.residual_seconds == pytest.approx(r.cold_seconds)

    def test_cache_capacity_config(self, tissue_flat):
        assert SimulationConfig(cache_capacity_pages=17).cache_capacity_for(tissue_flat) == 17
        auto = SimulationConfig().cache_capacity_for(tissue_flat)
        assert auto >= 256

    def test_scout_records_candidates(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        metrics = engine.run(seq, ScoutPrefetcher(tissue))
        assert any(r.n_candidates > 0 for r in metrics.records[1:])

    def test_deterministic(self, tissue, tissue_flat, rng):
        seq = generate_sequence(tissue, rng, n_queries=5, volume=40_000.0)
        engine = SimulationEngine(tissue_flat)
        m1 = engine.run(seq, ScoutPrefetcher(tissue))
        m2 = engine.run(seq, ScoutPrefetcher(tissue))
        assert [r.pages_hit for r in m1.records] == [r.pages_hit for r in m2.records]


class TestRunExperiment:
    def test_aggregates_all_sequences(self, tissue, tissue_flat):
        seqs = generate_sequences(tissue, 3, seed=2, n_queries=4, volume=40_000.0)
        result = run_experiment(tissue_flat, seqs, StraightLinePrefetcher())
        assert result.metrics.n_sequences == 3
        assert len(result.sequences) == 3
        assert result.prefetcher_name == "straight-line"

    def test_oracle_rebinds_per_sequence(self, tissue, tissue_flat):
        seqs = generate_sequences(tissue, 2, seed=2, n_queries=4, volume=40_000.0)
        result = run_experiment(tissue_flat, seqs, OraclePrefetcher())
        assert result.cache_hit_rate > 0.5

    def test_rejects_empty_sequences(self, tissue_flat):
        with pytest.raises(ValueError):
            run_experiment(tissue_flat, [], NoPrefetcher())

    def test_caches_cold_per_sequence(self, tissue, tissue_flat):
        """§7.1: the prefetch cache is cleared between sequences."""
        seqs = generate_sequences(tissue, 2, seed=3, n_queries=4, volume=40_000.0)
        result = run_experiment(tissue_flat, seqs, OraclePrefetcher())
        for seq_metrics in result.sequences:
            assert seq_metrics.records[0].pages_hit == 0
