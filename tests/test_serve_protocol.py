"""Wire framing for the serving daemon: length-prefixed JSON frames.

Framing is the one layer where a single bad byte can smear across every
later request on the connection, so the contract is pinned tightly:
exact roundtrips under pipelining, hard rejection of oversized and
malformed frames, and a clean ``None`` only at a true frame boundary --
an EOF mid-header or mid-payload is a :class:`ProtocolError`, never a
silent truncation.
"""

from __future__ import annotations

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
)

json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)
messages = st.dictionaries(st.text(max_size=10), json_values, max_size=6)


def _reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read_all(data: bytes) -> list[dict]:
    async def drain():
        reader = _reader_for(data)
        frames = []
        while (frame := await read_frame(reader)) is not None:
            frames.append(frame)
        return frames

    return asyncio.run(drain())


class TestEncodeDecode:
    def test_roundtrip(self):
        message = {"op": "query", "client_id": 3, "nested": {"a": [1, 2]}}
        wire = encode_frame(message)
        (length,) = struct.unpack(">I", wire[:4])
        assert length == len(wire) - 4
        assert decode_frame(wire[4:]) == message

    @given(messages)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_arbitrary_messages(self, message):
        wire = encode_frame(message)
        assert decode_frame(wire[4:]) == message

    def test_oversized_payload_rejected_on_encode(self):
        huge = {"blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError):
            encode_frame(huge)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_frame(b'"just a string"')

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json")
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe")


class TestReadFrame:
    def test_pipelined_frames_stay_separate(self):
        wire = b"".join(encode_frame({"op": "query", "i": i}) for i in range(5))
        frames = _read_all(wire)
        assert [f["i"] for f in frames] == [0, 1, 2, 3, 4]

    def test_clean_eof_at_boundary_is_none(self):
        assert _read_all(b"") == []

    def test_eof_mid_header_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read_all(b"\x00\x00")

    def test_eof_mid_frame_is_protocol_error(self):
        wire = encode_frame({"op": "hello"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_all(wire[:-1])

    def test_oversized_announcement_rejected_before_reading(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="announced"):
            _read_all(header)
