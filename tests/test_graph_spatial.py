"""SpatialGraph: structure ops and components vs networkx reference."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import SpatialGraph


def random_graph(seed: int, n: int = 40, p: float = 0.08) -> tuple[SpatialGraph, nx.Graph]:
    rng = np.random.default_rng(seed)
    ours = SpatialGraph(range(n))
    theirs = nx.Graph()
    theirs.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                ours.add_edge(u, v)
                theirs.add_edge(u, v)
    return ours, theirs


class TestBasics:
    def test_add_edge_symmetric(self):
        g = SpatialGraph()
        g.add_edge(1, 2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.n_edges == 1

    def test_self_loops_ignored(self):
        g = SpatialGraph()
        g.add_edge(3, 3)
        assert g.n_edges == 0

    def test_isolated_vertices_counted(self):
        g = SpatialGraph([1, 2, 3])
        assert g.n_vertices == 3 and g.n_edges == 0

    def test_degree(self):
        g = SpatialGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.degree(0) == 2 and g.degree(1) == 1

    def test_edges_sorted_unique(self):
        g = SpatialGraph()
        g.add_edge(2, 1)
        g.add_edge(1, 2)
        g.add_edge(0, 3)
        assert g.edges() == [(0, 3), (1, 2)]

    def test_merge(self):
        a = SpatialGraph()
        a.add_edge(0, 1)
        b = SpatialGraph()
        b.add_edge(1, 2)
        a.merge(b)
        assert a.has_edge(0, 1) and a.has_edge(1, 2)

    def test_contains(self):
        g = SpatialGraph([7])
        assert 7 in g and 8 not in g


class TestComponents:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_networkx(self, seed):
        ours, theirs = random_graph(seed)
        expected = sorted(
            (sorted(c) for c in nx.connected_components(theirs)), key=len, reverse=True
        )
        got = sorted((sorted(c) for c in ours.connected_components()), key=len, reverse=True)
        assert sorted(map(tuple, got)) == sorted(map(tuple, expected))

    def test_largest_first(self):
        g = SpatialGraph([9])
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        comps = g.connected_components()
        assert len(comps[0]) >= len(comps[-1])

    def test_component_of(self):
        g = SpatialGraph([5])
        g.add_edge(0, 1)
        assert g.component_of(0) == {0, 1}
        assert g.component_of(5) == {5}
        with pytest.raises(KeyError):
            g.component_of(99)

    def test_reachable_from(self):
        g = SpatialGraph([4])
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.reachable_from([0]) == {0, 1, 2}
        assert g.reachable_from([4]) == {4}
        assert g.reachable_from([99]) == set()

    def test_subgraph_induced(self):
        g = SpatialGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = g.subgraph([0, 1, 2])
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert 3 not in sub
        assert sub.n_edges == 2


class TestMemoryAccounting:
    def test_memory_scales_with_edges(self):
        sparse = SpatialGraph(range(100))
        dense = SpatialGraph(range(100))
        for i in range(99):
            dense.add_edge(i, i + 1)
        assert dense.memory_bytes() > sparse.memory_bytes()

    def test_subgraph_memory_smaller(self):
        g = SpatialGraph()
        for i in range(50):
            g.add_edge(i, i + 1)
        sub = g.subgraph(range(10))
        assert sub.memory_bytes() < g.memory_bytes()
