"""Golden-metrics regression suite: one pinned cell per evaluation figure.

Each fixture under ``tests/golden/`` freezes the *exact* metrics (hit
rate, pages fetched, unused-prefetch rate, ...) of one small-seed cell
from each figure grid (10-13 and 17).  The suite recomputes the cell
from its stored spec and compares **exactly** -- simulation cells are
deterministic functions of their spec, so any drift in the engine,
prefetchers, generators or workload synthesis shows up as a diff here
before it silently shifts a paper table.

Intentional changes regenerate the fixtures::

    pytest tests/test_golden_metrics.py --update-golden

then commit the diff (it documents the behavior change for review).

The exact float comparison makes fixtures sensitive to the numpy/BLAS
build: regenerate them on the CI platform (linux x86-64) -- a fixture
produced on a different architecture can differ in the last ulp of a
reduction and fail CI with no code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.sim import CellSpec, ServingSimulator, run_experiment
from repro.sim.runner import (
    DatasetSpec,
    IndexSpec,
    PrefetcherSpec,
    WorkloadSpec,
    prepare_cell,
    prepare_serving_cell,
)
from repro.workload.sweeps import (
    fig10_matrix,
    fig11_matrix,
    fig12_matrix,
    fig13_matrix,
    fig17_matrix,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

TINY = dict(n_neurons=6, n_sequences=2, dataset_seed=7)


def golden_cells() -> dict[str, CellSpec]:
    """One small, fast representative cell per figure grid."""
    return {
        "fig10": fig10_matrix(benches=["adhoc_stat"], **TINY).cells()[0],
        "fig11": fig11_matrix(
            benches=["model_building"], prefetchers=(("ewma", {"lam": 0.3}),), **TINY
        ).cells()[0],
        "fig12": fig12_matrix(
            benches=["vis_gaps_low"], prefetchers=(("scout-opt", {}),), **TINY
        ).cells()[0],
        "fig13": fig13_matrix("d", n_neurons=6, n_sequences=2, dataset_seed=7).cells()[0],
        "fig17": fig17_matrix(
            "a",
            datasets={"roads": {"seed": 17, "grid_size": 6}},
            prefetchers=(("scout", {}),),
            n_sequences=2,
        )[0],
        # One serving cell with real contention: three clients follow a
        # single hot sequence through an undersized shared cache, so the
        # fixture freezes cross-client hits and eviction-induced misses
        # alongside the ordinary metric set.  The two serving schedulers
        # are proven bit-identical (test_serving_lockstep.py), so this
        # fixture pins both at once.
        "clients": CellSpec(
            dataset=DatasetSpec("neuron", {"n_neurons": 6, "seed": 7}),
            index=IndexSpec("flat", {"fanout": 16}),
            workload=WorkloadSpec(n_sequences=3, n_queries=4, volume=30_000.0),
            prefetcher=PrefetcherSpec("ewma", {"lam": 0.3}),
            seed=21,
            sim={"cache_capacity_pages": 8},
            serve={"n_clients": 3, "mode": "hotspot", "stagger": 1, "hot_pool": 1},
        ),
        # The clients cell again, but served through an *active*
        # TieredStore (combined miss path over a small tier), freezing
        # the storage-side accounting -- tier hits, miss-path hits,
        # backing fills -- alongside the ordinary serving metric set.
        # The disabled-store configuration needs no fixture of its own:
        # the differential suite (test_tiered_properties.py) proves it
        # bit-identical to the bare disk, so the other fixtures pin it.
        "tiers": CellSpec(
            dataset=DatasetSpec("neuron", {"n_neurons": 6, "seed": 7}),
            index=IndexSpec("flat", {"fanout": 16}),
            workload=WorkloadSpec(n_sequences=3, n_queries=4, volume=30_000.0),
            prefetcher=PrefetcherSpec("ewma", {"lam": 0.3}),
            seed=21,
            sim={"cache_capacity_pages": 8},
            serve={"n_clients": 3, "mode": "hotspot", "stagger": 1, "hot_pool": 1},
            storage={"miss_path": "combined", "tier_pages": 8},
        ),
        # The clients cell a third time, served through an *active*
        # sharded cache (4 Hilbert-partitioned shards with the hot-shard
        # rebalancer armed), freezing the routing-side accounting --
        # per-shard request/hit partitions, rebalance events, moved
        # pages -- alongside the ordinary serving metric set.  The
        # disabled (K=1) configuration needs no fixture of its own: the
        # differential suite (test_sharded_cache.py) proves it op-by-op
        # identical to the bare cache, so the other fixtures pin it.
        "shards": CellSpec(
            dataset=DatasetSpec("neuron", {"n_neurons": 6, "seed": 7}),
            index=IndexSpec("flat", {"fanout": 16}),
            workload=WorkloadSpec(n_sequences=3, n_queries=4, volume=30_000.0),
            prefetcher=PrefetcherSpec("ewma", {"lam": 0.3}),
            seed=21,
            sim={"cache_capacity_pages": 8},
            serve={"n_clients": 3, "mode": "hotspot", "stagger": 1, "hot_pool": 1},
            shards={
                "n_shards": 4,
                "partition": "hilbert",
                "rebalance": True,
                "rebalance_interval": 4,
            },
        ),
    }


def compute_metrics(spec: CellSpec) -> dict:
    """The golden metric set of one cell, from a fresh end-to-end run.

    Executes the cell through :func:`repro.sim.runner.prepare_cell` --
    the exact pipeline the sweep engine runs -- but keeps the per-query
    records, which carry the page-level accounting the aggregate
    metrics drop.  Serving cells (a ``serve`` mapping on the spec) run
    through :class:`ServingSimulator` instead and additionally freeze
    the shared-cache contention counters.
    """
    if spec.serve:
        return compute_serving_metrics(spec)
    index, sequences, prefetcher, config = prepare_cell(spec)
    outcome = run_experiment(index, sequences, prefetcher, config)

    records = [record for sequence in outcome.sequences for record in sequence.records]
    eligible = [record for sequence in outcome.sequences for record in sequence.eligible]
    pages_prefetched = sum(record.prefetch_pages for record in records)
    pages_hit = sum(record.pages_hit for record in eligible)
    pages_missed = sum(record.pages_needed - record.pages_hit for record in eligible)
    gap_io_pages = sum(record.gap_io_pages for record in records)
    metrics = outcome.metrics
    return {
        "cache_hit_rate": metrics.cache_hit_rate,
        "hit_rate_std": metrics.hit_rate_std,
        "speedup": None if math.isinf(metrics.speedup) else metrics.speedup,
        "pages_prefetched": int(pages_prefetched),
        "pages_fetched": int(pages_prefetched + pages_missed + gap_io_pages),
        "unused_prefetch_rate": (
            0.0 if pages_prefetched == 0 else max(0.0, 1.0 - pages_hit / pages_prefetched)
        ),
        "per_sequence_hit_rates": [float(r) for r in metrics.per_sequence_hit_rates],
    }


def compute_serving_metrics(spec: CellSpec) -> dict:
    """The golden metric set of one multi-client serving cell.

    Same keys as the single-client path (clients stand in for
    sequences) plus the contention counters that make a serving run a
    serving run: cross-client hits, eviction-induced misses, shared
    cache evictions and the tick count.  Scheduler-agnostic by the
    lockstep bit-identity guarantee.
    """
    index, clients, prefetchers, config = prepare_serving_cell(spec)
    report = ServingSimulator(index, config).run(clients, prefetchers)

    records = [record for client in report.clients for record in client.metrics.records]
    eligible = [record for client in report.clients for record in client.metrics.eligible]
    pages_prefetched = sum(record.prefetch_pages for record in records)
    pages_hit = sum(record.pages_hit for record in eligible)
    pages_missed = sum(record.pages_needed - record.pages_hit for record in eligible)
    gap_io_pages = sum(record.gap_io_pages for record in records)
    metrics = report.to_aggregate()
    metric_set = {
        "cache_hit_rate": metrics.cache_hit_rate,
        "hit_rate_std": metrics.hit_rate_std,
        "speedup": None if math.isinf(metrics.speedup) else metrics.speedup,
        "pages_prefetched": int(pages_prefetched),
        "pages_fetched": int(pages_prefetched + pages_missed + gap_io_pages),
        "unused_prefetch_rate": (
            0.0 if pages_prefetched == 0 else max(0.0, 1.0 - pages_hit / pages_prefetched)
        ),
        "per_sequence_hit_rates": [float(r) for r in metrics.per_sequence_hit_rates],
        "cross_client_hits": int(report.cross_client_hits),
        "evicted_misses": int(report.evicted_misses),
        "cache_evictions": int(report.cache_evictions),
        "n_ticks": int(report.n_ticks),
    }
    if report.tiers_active:
        # Storage-side keys only when the cell configures an active
        # tier, so the pre-existing serving fixtures stay byte-identical.
        metric_set.update(
            tier_hits=int(report.tier_hits),
            miss_path_hits=int(report.miss_path_hits),
            tier_fills=int(report.tier_fills),
            tier_stall_seconds=float(report.tier_stall_seconds),
        )
    if report.shards_active:
        # Routing-side keys only when the cell shards the cache (K > 1),
        # for the same byte-identity reason.
        metric_set.update(
            shard_requests=[int(v) for v in report.shard_requests],
            shard_hits=[int(v) for v in report.shard_hits],
            shard_rebalances=int(report.shard_rebalances),
            shard_pages_moved=int(report.shard_pages_moved),
        )
    return metric_set


@pytest.mark.parametrize("figure", sorted(golden_cells()))
def test_figure_cell_matches_golden_metrics(figure, request):
    cell = golden_cells()[figure]
    path = GOLDEN_DIR / f"{figure}.json"
    computed = compute_metrics(cell)

    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"spec": cell.to_dict(), "metrics": computed}, indent=2, sort_keys=True)
            + "\n"
        )
        return

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"'pytest tests/test_golden_metrics.py --update-golden'"
    )
    stored = json.loads(path.read_text())
    assert stored["spec"] == cell.to_dict(), (
        f"the {figure} golden cell's spec changed; if intentional, regenerate "
        f"with --update-golden and commit the diff"
    )
    # Exact comparison, not approx: cells are deterministic functions of
    # their specs (the parallel-runner determinism guarantee), so any
    # difference at all is drift worth reviewing.
    assert computed == stored["metrics"], (
        f"{figure} metrics drifted from the golden fixture; if intentional, "
        f"regenerate with --update-golden and commit the diff"
    )
