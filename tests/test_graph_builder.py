"""Graph builders: grid hashing vs brute force, explicit adjacency, cost."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.graph import (
    build_graph,
    build_graph_brute_force,
    build_graph_explicit,
    build_graph_grid_hash,
)


@pytest.fixture(scope="module")
def query(tissue_rtree, tissue):
    region = AABB.cube(tissue.bounds.center, 60_000.0)
    result = tissue_rtree.query(region)
    if result.n_objects < 10:
        region = AABB.cube(tissue.centroids[0], 60_000.0)
        result = tissue_rtree.query(region)
    return region, result


class TestGridHash:
    def test_vertices_are_result_objects(self, tissue, query):
        region, result = query
        report = build_graph_grid_hash(tissue, result.object_ids, region)
        assert sorted(report.graph.vertices()) == sorted(result.object_ids.tolist())

    def test_consecutive_fiber_segments_connected(self, tissue, query):
        """Adjacent segments of one branch share an endpoint and must link."""
        region, result = query
        report = build_graph_grid_hash(tissue, result.object_ids, region)
        ids = result.object_ids
        same_branch = [
            (int(a), int(b))
            for a, b in zip(ids[:-1], ids[1:])
            if b == a + 1 and tissue.branch_id[a] == tissue.branch_id[b]
        ]
        connected = sum(report.graph.has_edge(a, b) for a, b in same_branch)
        assert same_branch and connected >= 0.9 * len(same_branch)

    def test_finer_resolution_fewer_or_equal_edges(self, tissue, query):
        region, result = query
        coarse = build_graph_grid_hash(tissue, result.object_ids, region, resolution=64)
        fine = build_graph_grid_hash(tissue, result.object_ids, region, resolution=8192)
        assert fine.graph.n_edges <= coarse.graph.n_edges

    def test_edges_subset_of_brute_force_at_cell_scale(self, tissue, query):
        """Grid-hash edges connect objects within ~one cell diagonal."""
        region, result = query
        resolution = 4096
        report = build_graph_grid_hash(tissue, result.object_ids, region, resolution)
        cell_diagonal = float(np.linalg.norm(region.extent)) / (resolution ** (1 / 3))
        reference = build_graph_brute_force(tissue, result.object_ids, cell_diagonal * 1.5)
        for u, v in report.graph.edges():
            assert reference.graph.has_edge(u, v), (u, v)

    def test_empty_result(self, tissue):
        region = AABB([0, 0, 0], [1, 1, 1])
        report = build_graph_grid_hash(tissue, np.empty(0, dtype=np.int64), region)
        assert report.graph.n_vertices == 0 and report.graph.n_edges == 0

    def test_work_units_positive(self, tissue, query):
        region, result = query
        report = build_graph_grid_hash(tissue, result.object_ids, region)
        assert report.work_units > 0
        assert report.wall_seconds >= 0.0


class TestBruteForce:
    def test_threshold_zero_only_touching(self, tissue, query):
        region, result = query
        ids = result.object_ids[:40]
        report = build_graph_brute_force(tissue, ids, distance_threshold=1e-9)
        for u, v in report.graph.edges():
            # Touching segments share an endpoint (consecutive on a branch).
            shared = (
                np.allclose(tissue.p1[u], tissue.p0[v])
                or np.allclose(tissue.p1[v], tissue.p0[u])
                or np.allclose(tissue.p0[u], tissue.p0[v])
                or np.allclose(tissue.p1[u], tissue.p1[v])
            )
            assert shared

    def test_larger_threshold_more_edges(self, tissue, query):
        region, result = query
        ids = result.object_ids[:40]
        small = build_graph_brute_force(tissue, ids, 0.1)
        large = build_graph_brute_force(tissue, ids, 50.0)
        assert large.graph.n_edges >= small.graph.n_edges


class TestExplicit:
    def test_uses_mesh_adjacency(self, lung):
        ids = np.arange(min(500, lung.n_objects))
        report = build_graph_explicit(lung, ids)
        assert report.graph.n_edges > 0
        edge_set = {tuple(sorted(e)) for e in map(tuple, lung.explicit_edges)}
        for u, v in report.graph.edges():
            assert (min(u, v), max(u, v)) in edge_set

    def test_restricted_to_result(self, lung):
        ids = np.arange(100)
        report = build_graph_explicit(lung, ids)
        for u, v in report.graph.edges():
            assert u < 100 and v < 100

    def test_rejects_dataset_without_adjacency(self, tissue):
        with pytest.raises(ValueError):
            build_graph_explicit(tissue, np.arange(10))


class TestDispatch:
    def test_mesh_goes_explicit(self, lung):
        region = lung.bounds
        report = build_graph(lung, np.arange(200), region)
        assert report.resolution == 0  # explicit path

    def test_segments_go_grid_hash(self, tissue, query):
        region, result = query
        report = build_graph(tissue, result.object_ids, region)
        assert report.resolution > 0
