"""Engine internals: incremental region generation and budget accounting."""

import numpy as np
import pytest

from repro.baselines import NoPrefetcher, ObservedQuery, Prefetcher, PrefetchTarget
from repro.geometry import AABB
from repro.sim import SimulationConfig, SimulationEngine
from repro.workload import generate_sequence


class FixedPlanPrefetcher(Prefetcher):
    """Emits a constant plan; used to probe engine accounting."""

    name = "fixed"

    def __init__(self, targets, cost=0.0, gap_pages=()):
        self.targets = targets
        self.cost = cost
        self._gap_pages = list(gap_pages)

    def observe(self, observed: ObservedQuery) -> None:
        pass

    def plan(self):
        return self.targets

    def prediction_cost_seconds(self) -> float:
        return self.cost

    def gap_io_pages(self):
        pages, self._gap_pages = self._gap_pages, []
        return pages


@pytest.fixture()
def engine(tissue_flat):
    return SimulationEngine(tissue_flat)


@pytest.fixture()
def sequence(tissue, rng):
    return generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)


class TestIncrementalRegions:
    def make_target(self, direction=(1.0, 0, 0)):
        return PrefetchTarget(anchor=np.zeros(3), direction=np.array(direction))

    def test_regions_grow_up_to_cap(self, engine):
        side = 10.0
        regions = list(engine._incremental_regions(self.make_target(), side))
        cfg = engine.config
        assert len(regions) == cfg.incremental_max_steps
        sides = [r.extent[0] for r in regions]
        assert sides[0] == pytest.approx(side * cfg.incremental_start_fraction)
        assert all(b >= a - 1e-9 for a, b in zip(sides, sides[1:]))
        assert max(sides) <= side * cfg.incremental_max_fraction + 1e-9

    def test_regions_advance_along_direction(self, engine):
        regions = list(engine._incremental_regions(self.make_target(), 10.0))
        xs = [r.center[0] for r in regions]
        assert xs == sorted(xs)
        assert xs[-1] > xs[0]

    def test_first_region_touches_anchor(self, engine):
        regions = list(engine._incremental_regions(self.make_target(), 10.0))
        assert regions[0].contains_point(np.zeros(3))

    def test_zero_direction_expands_in_place(self, engine):
        target = PrefetchTarget(anchor=np.ones(3), direction=np.zeros(3))
        regions = list(engine._incremental_regions(target, 10.0))
        for region in regions:
            assert np.allclose(region.center, 1.0)

    def test_explicit_regions_passthrough(self, engine):
        boxes = (AABB([0, 0, 0], [1, 1, 1]), AABB([5, 5, 5], [6, 6, 6]))
        target = PrefetchTarget(anchor=np.zeros(3), direction=np.zeros(3), regions=boxes)
        regions = list(engine._incremental_regions(target, 10.0))
        assert regions == list(boxes)


class TestBudgetAccounting:
    def test_counts_are_consistent(self, engine, sequence, tissue):
        from repro.core import ScoutPrefetcher

        metrics = engine.run(sequence, ScoutPrefetcher(tissue))
        for record in metrics.records:
            assert 0 <= record.pages_hit <= record.pages_needed
            assert 0 <= record.objects_hit <= record.objects_needed
            assert record.residual_seconds >= 0
            assert record.cold_seconds >= record.residual_seconds - 1e-12
            assert record.prefetch_pages >= 0

    def test_prediction_cost_eats_the_window(self, engine, sequence):
        """A prediction costlier than the window leaves nothing to prefetch."""
        target = PrefetchTarget(anchor=sequence.queries[0].center, direction=np.zeros(3))
        greedy = FixedPlanPrefetcher([target], cost=1e9)
        metrics = engine.run(sequence, greedy)
        assert metrics.total_prefetch_pages == 0

    def test_gap_pages_charged_within_window(self, engine, sequence, tissue_flat):
        all_pages = list(range(min(50, tissue_flat.n_pages)))
        prefetcher = FixedPlanPrefetcher([], gap_pages=all_pages)
        metrics = engine.run(sequence, prefetcher)
        # Some gap pages are fetched, but never more time than the window.
        for record in metrics.records:
            assert record.prefetch_seconds <= record.window_seconds + 0.05

    def test_share_zero_target_gets_nothing_alone(self, engine, sequence, tissue):
        center = tissue.bounds.center
        targets = [
            PrefetchTarget(anchor=center, direction=np.zeros(3), share=0.0),
        ]
        metrics = engine.run(sequence, FixedPlanPrefetcher(targets))
        # A zero-share plan is normalized to a full share (total_share
        # fallback), so it still prefetches: the engine must not divide
        # by zero.
        assert metrics.total_prefetch_pages >= 0

    def test_empty_plan_is_noop(self, engine, sequence):
        metrics = engine.run(sequence, FixedPlanPrefetcher([]))
        assert metrics.total_prefetch_pages == 0
        assert metrics.cache_hit_rate == 0.0

    def test_engine_matches_no_prefetcher_for_empty_plans(self, engine, sequence):
        a = engine.run(sequence, FixedPlanPrefetcher([]))
        b = engine.run(sequence, NoPrefetcher())
        assert [r.residual_seconds for r in a.records] == [
            r.residual_seconds for r in b.records
        ]


def one_page_seconds(engine) -> float:
    """Worst-case cost of a single page read under the engine's disk."""
    params = engine.config.disk
    return params.positioning_s / params.stripe_ways + params.transfer_s_per_page


class TestEngineInvariants:
    """Window-budget accounting must hold for every query of any sequence.

    Prefetch I/O (gap traversal + plan execution) plus the prediction
    cost charged against the window may exceed the window by at most the
    one page read that was in flight when the window closed; and hits
    can never exceed what the query needed.
    """

    def prefetchers(self, tissue, index):
        from repro.baselines import EWMAPrefetcher, HilbertPrefetcher
        from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher

        return [
            ScoutPrefetcher(tissue, ScoutConfig()),
            ScoutOptPrefetcher(tissue, index, ScoutConfig()),
            EWMAPrefetcher(lam=0.3),
            HilbertPrefetcher(tissue),
        ]

    @pytest.mark.parametrize("window_ratio", [0.1, 1.0, 2.5])
    def test_window_budget_never_overshoots(self, engine, tissue, tissue_flat, rng, window_ratio):
        sequence = generate_sequence(
            tissue, rng, n_queries=8, volume=30_000.0, window_ratio=window_ratio
        )
        slack = one_page_seconds(engine) + 1e-9
        for prefetcher in self.prefetchers(tissue, tissue_flat):
            metrics = engine.run(sequence, prefetcher)
            for r in metrics.records:
                assert r.pages_hit <= r.pages_needed
                assert r.objects_hit <= r.objects_needed
                budget = max(0.0, r.window_seconds - r.prediction_seconds)
                assert r.prefetch_seconds <= budget + slack, prefetcher.name
                if r.prediction_seconds <= r.window_seconds:
                    assert (
                        r.prefetch_seconds + r.prediction_seconds
                        <= r.window_seconds + slack
                    ), prefetcher.name

    def test_gap_io_counts_toward_the_same_window(self, engine, sequence, tissue_flat):
        pages = list(range(min(200, tissue_flat.n_pages)))
        prefetcher = FixedPlanPrefetcher([], gap_pages=pages)
        slack = one_page_seconds(engine) + 1e-9
        metrics = engine.run(sequence, prefetcher)
        for r in metrics.records:
            assert r.prefetch_seconds <= r.window_seconds + slack


class TestCarryRedistribution:
    """Window time a dead target cannot spend goes to targets that can.

    Regression for the single-pass carry bug: carry only flowed forward
    through the target list, so when a later target ran dry the leftover
    was discarded even though earlier targets still had regions to grow
    -- a plan of one live and one dead equal-share target stranded half
    the window.
    """

    def make_context(self, engine, tissue, tissue_flat, rng):
        from repro.storage.cache import PrefetchCache
        from repro.storage.disk import DiskModel

        sequence = generate_sequence(tissue, rng, n_queries=2, volume=40_000.0)
        query = sequence.queries[0]
        cache = PrefetchCache(engine.config.cache_capacity_for(tissue_flat))
        disk = DiskModel(engine.config.disk)
        return query, cache, disk

    def live_target(self, query, share=1.0):
        # Follow the walk tangent: that is where the tissue has data, so
        # the target's incremental regions keep yielding uncached pages.
        return PrefetchTarget(anchor=query.center, direction=query.direction, share=share)

    def dead_target(self, tissue, share=1.0):
        far = tissue.bounds.hi + 100.0 * (tissue.bounds.hi - tissue.bounds.lo)
        return PrefetchTarget(
            anchor=far,
            direction=np.zeros(3),
            share=share,
            regions=(AABB(far, far + 1.0),),
        )

    def budget_for(self, engine, n_pages=10):
        return n_pages * one_page_seconds(engine)

    def test_live_target_inherits_dead_targets_share(
        self, engine, tissue, tissue_flat, rng
    ):
        budget = self.budget_for(engine)

        query, cache, disk = self.make_context(engine, tissue, tissue_flat, rng)
        live = self.live_target(query, share=0.5)
        dead = self.dead_target(tissue, share=0.5)
        _, seconds_mixed = engine._execute_plan([live, dead], query, cache, disk, budget)

        query, cache, disk = self.make_context(engine, tissue, tissue_flat, rng)
        _, seconds_alone = engine._execute_plan(
            [self.live_target(query)], query, cache, disk, budget
        )

        # The live target alone can consume (almost) the whole window...
        assert seconds_alone > 0.8 * budget
        # ...and pairing it with a dead equal-share target must not strand
        # the dead target's half (the old code spent <= 0.5*budget + a batch).
        assert seconds_mixed > 0.8 * budget
        assert seconds_mixed == pytest.approx(seconds_alone, rel=0.05)

    def test_spending_never_exceeds_budget_plus_one_page(
        self, engine, tissue, tissue_flat, rng
    ):
        budget = self.budget_for(engine)
        query, cache, disk = self.make_context(engine, tissue, tissue_flat, rng)
        targets = [
            self.live_target(query, share=0.7),
            PrefetchTarget(anchor=query.center, direction=np.zeros(3), share=0.3),
        ]
        _, seconds = engine._execute_plan(targets, query, cache, disk, budget)
        assert seconds <= budget + one_page_seconds(engine) + 1e-9

    def test_all_dead_targets_spend_nothing(self, engine, tissue, tissue_flat, rng):
        query, cache, disk = self.make_context(engine, tissue, tissue_flat, rng)
        targets = [self.dead_target(tissue, share=0.5), self.dead_target(tissue, share=0.5)]
        pages, seconds = engine._execute_plan(targets, query, cache, disk, self.budget_for(engine))
        assert pages == 0 and seconds == 0.0
