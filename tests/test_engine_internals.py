"""Engine internals: incremental region generation and budget accounting."""

import numpy as np
import pytest

from repro.baselines import NoPrefetcher, ObservedQuery, Prefetcher, PrefetchTarget
from repro.geometry import AABB
from repro.sim import SimulationConfig, SimulationEngine
from repro.workload import generate_sequence


class FixedPlanPrefetcher(Prefetcher):
    """Emits a constant plan; used to probe engine accounting."""

    name = "fixed"

    def __init__(self, targets, cost=0.0, gap_pages=()):
        self.targets = targets
        self.cost = cost
        self._gap_pages = list(gap_pages)

    def observe(self, observed: ObservedQuery) -> None:
        pass

    def plan(self):
        return self.targets

    def prediction_cost_seconds(self) -> float:
        return self.cost

    def gap_io_pages(self):
        pages, self._gap_pages = self._gap_pages, []
        return pages


@pytest.fixture()
def engine(tissue_flat):
    return SimulationEngine(tissue_flat)


@pytest.fixture()
def sequence(tissue, rng):
    return generate_sequence(tissue, rng, n_queries=4, volume=40_000.0)


class TestIncrementalRegions:
    def make_target(self, direction=(1.0, 0, 0)):
        return PrefetchTarget(anchor=np.zeros(3), direction=np.array(direction))

    def test_regions_grow_up_to_cap(self, engine):
        side = 10.0
        regions = list(engine._incremental_regions(self.make_target(), side))
        cfg = engine.config
        assert len(regions) == cfg.incremental_max_steps
        sides = [r.extent[0] for r in regions]
        assert sides[0] == pytest.approx(side * cfg.incremental_start_fraction)
        assert all(b >= a - 1e-9 for a, b in zip(sides, sides[1:]))
        assert max(sides) <= side * cfg.incremental_max_fraction + 1e-9

    def test_regions_advance_along_direction(self, engine):
        regions = list(engine._incremental_regions(self.make_target(), 10.0))
        xs = [r.center[0] for r in regions]
        assert xs == sorted(xs)
        assert xs[-1] > xs[0]

    def test_first_region_touches_anchor(self, engine):
        regions = list(engine._incremental_regions(self.make_target(), 10.0))
        assert regions[0].contains_point(np.zeros(3))

    def test_zero_direction_expands_in_place(self, engine):
        target = PrefetchTarget(anchor=np.ones(3), direction=np.zeros(3))
        regions = list(engine._incremental_regions(target, 10.0))
        for region in regions:
            assert np.allclose(region.center, 1.0)

    def test_explicit_regions_passthrough(self, engine):
        boxes = (AABB([0, 0, 0], [1, 1, 1]), AABB([5, 5, 5], [6, 6, 6]))
        target = PrefetchTarget(anchor=np.zeros(3), direction=np.zeros(3), regions=boxes)
        regions = list(engine._incremental_regions(target, 10.0))
        assert regions == list(boxes)


class TestBudgetAccounting:
    def test_counts_are_consistent(self, engine, sequence, tissue):
        from repro.core import ScoutPrefetcher

        metrics = engine.run(sequence, ScoutPrefetcher(tissue))
        for record in metrics.records:
            assert 0 <= record.pages_hit <= record.pages_needed
            assert 0 <= record.objects_hit <= record.objects_needed
            assert record.residual_seconds >= 0
            assert record.cold_seconds >= record.residual_seconds - 1e-12
            assert record.prefetch_pages >= 0

    def test_prediction_cost_eats_the_window(self, engine, sequence):
        """A prediction costlier than the window leaves nothing to prefetch."""
        target = PrefetchTarget(anchor=sequence.queries[0].center, direction=np.zeros(3))
        greedy = FixedPlanPrefetcher([target], cost=1e9)
        metrics = engine.run(sequence, greedy)
        assert metrics.total_prefetch_pages == 0

    def test_gap_pages_charged_within_window(self, engine, sequence, tissue_flat):
        all_pages = list(range(min(50, tissue_flat.n_pages)))
        prefetcher = FixedPlanPrefetcher([], gap_pages=all_pages)
        metrics = engine.run(sequence, prefetcher)
        # Some gap pages are fetched, but never more time than the window.
        for record in metrics.records:
            assert record.prefetch_seconds <= record.window_seconds + 0.05

    def test_share_zero_target_gets_nothing_alone(self, engine, sequence, tissue):
        center = tissue.bounds.center
        targets = [
            PrefetchTarget(anchor=center, direction=np.zeros(3), share=0.0),
        ]
        metrics = engine.run(sequence, FixedPlanPrefetcher(targets))
        # A zero-share plan is normalized to a full share (total_share
        # fallback), so it still prefetches: the engine must not divide
        # by zero.
        assert metrics.total_prefetch_pages >= 0

    def test_empty_plan_is_noop(self, engine, sequence):
        metrics = engine.run(sequence, FixedPlanPrefetcher([]))
        assert metrics.total_prefetch_pages == 0
        assert metrics.cache_hit_rate == 0.0

    def test_engine_matches_no_prefetcher_for_empty_plans(self, engine, sequence):
        a = engine.run(sequence, FixedPlanPrefetcher([]))
        b = engine.run(sequence, NoPrefetcher())
        assert [r.residual_seconds for r in a.records] == [
            r.residual_seconds for r in b.records
        ]
