"""End-to-end tests of the serving daemon and the open-loop generator.

Everything runs in-process over real sockets on an ephemeral port
(``port=0``), with ``asyncio.run`` driving one event loop per test --
what CI's serve-smoke job does across processes, pinned here where the
daemon's internal counters are also visible:

* the seeded load generator issues a *deterministic request count* for
  a given ``(process, rate, requests, seed)``, and the daemon's
  admitted+shed counters partition it exactly;
* admission control sheds (fast ``shed: true`` replies) instead of
  queueing without bound when ``max_queue`` is tiny;
* graceful drain answers every admitted in-flight request before the
  daemon stops, and the final report says so;
* an exhausted session renews in place (same walk, fresh phase
  machine), so a connection can run past ``queries_per_session``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    DaemonConfig,
    ServeDaemon,
    bursty_arrivals,
    poisson_arrivals,
    run_loadgen,
)
from repro.serve.protocol import read_frame, write_frame


def daemon_config(**overrides) -> DaemonConfig:
    """A small daemon that boots in well under a second."""
    defaults = dict(
        port=0,
        n_neurons=6,
        seed=21,
        session_pool=4,
        queries_per_session=10,
        max_queue=64,
        report_interval=3600.0,
    )
    defaults.update(overrides)
    return DaemonConfig(**defaults)


async def _with_daemon(config: DaemonConfig, scenario):
    """Boot a daemon, run ``scenario(daemon)``, always shut down."""
    daemon = ServeDaemon(config)
    await daemon.start()
    try:
        return await scenario(daemon)
    finally:
        await daemon.shutdown()


class TestArrivalSchedules:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_arrivals(200.0, n_requests=50, seed=7)
        b = poisson_arrivals(200.0, n_requests=50, seed=7)
        assert np.array_equal(a, b)
        assert len(a) == 50
        assert np.all(np.diff(a) > 0)
        assert poisson_arrivals(200.0, n_requests=50, seed=8)[0] != a[0]

    def test_poisson_duration_mode_count_is_seeded(self):
        a = poisson_arrivals(500.0, duration=0.5, seed=3)
        b = poisson_arrivals(500.0, duration=0.5, seed=3)
        assert np.array_equal(a, b)
        assert np.all(a <= 0.5)

    def test_bursty_deterministic_and_bounded(self):
        a = bursty_arrivals(100.0, n_requests=80, seed=5, burst=8.0)
        b = bursty_arrivals(100.0, n_requests=80, seed=5, burst=8.0)
        assert np.array_equal(a, b)
        assert len(a) == 80
        assert np.all(np.diff(a) >= 0)

    def test_bursty_is_burstier_than_poisson(self):
        # Same offered rate; the on/off process must show heavier
        # inter-arrival dispersion than the memoryless one.
        smooth = np.diff(poisson_arrivals(100.0, n_requests=400, seed=11))
        bursty = np.diff(bursty_arrivals(100.0, n_requests=400, seed=11, burst=16.0))
        cv = lambda gaps: np.std(gaps) / np.mean(gaps)  # noqa: E731
        assert cv(bursty) > cv(smooth)

    def test_schedule_argument_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, n_requests=10)
        with pytest.raises(ValueError):
            poisson_arrivals(100.0)  # neither count nor duration
        with pytest.raises(ValueError):
            poisson_arrivals(100.0, n_requests=10, duration=1.0)  # both
        with pytest.raises(ValueError):
            bursty_arrivals(100.0, n_requests=10, burst=0.5)


class TestProtocolOps:
    def test_hello_query_stats_bye(self):
        async def scenario(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            try:
                await write_frame(writer, {"op": "hello"})
                hello = await read_frame(reader)
                assert hello["ok"] and hello["client_id"] == 0
                assert hello["n_queries"] == 10

                await write_frame(writer, {"op": "query"})
                reply = await read_frame(reader)
                assert reply["ok"]
                assert reply["query_index"] == 0
                assert reply["pages_needed"] > 0
                assert reply["latency_ms"] >= 0

                await write_frame(writer, {"op": "stats"})
                stats = await read_frame(reader)
                assert stats["ok"] and stats["requests_admitted"] == 1
                assert stats["latency"]["count"] == 1

                await write_frame(writer, {"op": "bye"})
                bye = await read_frame(reader)
                assert bye["ok"] and bye["bye"]
            finally:
                writer.close()

        asyncio.run(_with_daemon(daemon_config(), scenario))

    def test_query_before_hello_is_an_error(self):
        async def scenario(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            try:
                await write_frame(writer, {"op": "query"})
                reply = await read_frame(reader)
                assert not reply["ok"]
                assert "hello" in reply["error"]
            finally:
                writer.close()

        asyncio.run(_with_daemon(daemon_config(), scenario))

    def test_unknown_op_is_an_error_not_a_disconnect(self):
        async def scenario(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            try:
                await write_frame(writer, {"op": "frobnicate"})
                reply = await read_frame(reader)
                assert not reply["ok"]
                # The connection survives the bad op.
                await write_frame(writer, {"op": "hello"})
                assert (await read_frame(reader))["ok"]
            finally:
                writer.close()

        asyncio.run(_with_daemon(daemon_config(), scenario))

    def test_session_renews_past_exhaustion(self):
        async def scenario(daemon):
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            try:
                await write_frame(writer, {"op": "hello"})
                await read_frame(reader)
                n_queries = daemon.config.queries_per_session
                replies = []
                for _ in range(2 * n_queries + 3):
                    await write_frame(writer, {"op": "query"})
                    replies.append(await read_frame(reader))
                assert all(r["ok"] for r in replies)
                # Query indexes wrap: 0..n-1, 0..n-1, 0, 1, 2.
                indexes = [r["query_index"] for r in replies]
                assert indexes == (list(range(n_queries)) * 2 + [0, 1, 2])
                assert replies[-1]["sessions_completed"] == 2
                assert daemon.sessions_completed == 2
            finally:
                writer.close()

        asyncio.run(_with_daemon(daemon_config(), scenario))


class TestLoadgenEndToEnd:
    def test_deterministic_request_count_and_latency_report(self):
        async def scenario(daemon):
            return await run_loadgen(
                "127.0.0.1",
                daemon.port,
                connections=3,
                process="poisson",
                rate=2000.0,
                requests=120,
                seed=42,
            )

        first = asyncio.run(_with_daemon(daemon_config(), scenario))
        second = asyncio.run(_with_daemon(daemon_config(), scenario))

        for report in (first, second):
            assert report["requests"] == 120
            assert report["ok"] + report["shed"] + report["errors"] == 120
            assert report["errors"] == 0
            assert report["client_ids"] == [0, 1, 2]
        # The seeded schedule fixes the count; wall-clock latencies vary.
        assert first["requests"] == second["requests"]
        latency = first["latency"]
        assert latency["count"] == first["ok"]
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["p999_ms"]
        assert latency["p999_ms"] <= latency["max_ms"]

    def test_bursty_process_drives_the_same_contract(self):
        async def scenario(daemon):
            return await run_loadgen(
                "127.0.0.1",
                daemon.port,
                connections=2,
                process="bursty",
                rate=500.0,
                requests=60,
                seed=9,
                burst=8.0,
            )

        report = asyncio.run(_with_daemon(daemon_config(), scenario))
        assert report["requests"] == 60
        assert report["ok"] + report["shed"] + report["errors"] == 60
        assert report["process"] == "bursty"
        assert report["burst"] == 8.0

    def test_overload_sheds_instead_of_queueing_without_bound(self):
        async def scenario(daemon):
            report = await run_loadgen(
                "127.0.0.1",
                daemon.port,
                connections=4,
                process="poisson",
                rate=1e6,  # the whole schedule lands at once
                requests=300,
                seed=1,
            )
            return report, daemon.requests_shed, daemon.requests_admitted

        report, daemon_shed, daemon_admitted = asyncio.run(
            _with_daemon(daemon_config(max_queue=1), scenario)
        )
        assert report["shed"] > 0
        assert report["ok"] >= 1
        # Client-observed and daemon-side accounting partition the offered
        # load exactly.
        assert report["shed"] == daemon_shed
        assert report["ok"] == daemon_admitted
        assert daemon_admitted + daemon_shed == 300

    def test_graceful_drain_answers_in_flight_requests(self):
        async def scenario(daemon):
            # Pipeline a burst, then request shutdown on a second
            # connection while the worker is still draining the queue.
            reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)
            await write_frame(writer, {"op": "hello"})
            await read_frame(reader)
            n_inflight = 40
            for _ in range(n_inflight):
                await write_frame(writer, {"op": "query"})

            ctl_reader, ctl_writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port
            )
            await write_frame(ctl_writer, {"op": "shutdown"})
            ack = await read_frame(ctl_reader)
            assert ack["ok"] and ack["draining"]

            replies = []
            for _ in range(n_inflight):
                frame = await read_frame(reader)
                if frame is None:
                    break
                replies.append(frame)
            writer.close()
            ctl_writer.close()
            await asyncio.wait_for(daemon._stopped.wait(), timeout=10)
            return replies, daemon.final_report()

        replies, final = asyncio.run(_with_daemon(daemon_config(), scenario))
        # Every request admitted before the drain got a real answer.
        answered = [r for r in replies if r.get("ok")]
        shed = [r for r in replies if r.get("shed")]
        assert len(answered) == final["requests_admitted"]
        assert len(shed) == final["requests_shed"]
        assert len(answered) >= 1
        assert final["drained"] is True
        assert final["latency"]["count"] == final["requests_admitted"]

    def test_shutdown_via_loadgen_flag(self):
        async def scenario(daemon):
            report = await run_loadgen(
                "127.0.0.1",
                daemon.port,
                connections=2,
                process="poisson",
                rate=2000.0,
                requests=40,
                seed=4,
                shutdown=True,
            )
            await asyncio.wait_for(daemon._stopped.wait(), timeout=10)
            return report, daemon.final_report()

        report, final = asyncio.run(_with_daemon(daemon_config(), scenario))
        assert report["drained"] is True
        assert final["drained"] is True
        assert final["requests_admitted"] == report["ok"] == 40


class TestDaemonConfigValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ServeDaemon(daemon_config(max_queue=0))
        with pytest.raises(ValueError):
            ServeDaemon(daemon_config(session_pool=0))

    def test_unknown_prefetcher_rejected(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            ServeDaemon(daemon_config(prefetcher="oracle"))

    def test_fault_rate_wraps_the_disk(self):
        daemon = ServeDaemon(daemon_config(fault_rate=0.05))
        assert daemon.sim_config.faults is not None
        assert daemon.final_report()["faults_active"] is True
