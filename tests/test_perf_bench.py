"""The perf-tracking harness: report shape, budget gate, CLI, --profile."""

import json
import pstats

import numpy as np
import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchReport,
    bench_fig13a,
    bench_region_query,
    bench_serving,
    check_budget,
    render_report,
)


@pytest.fixture(scope="module")
def small_tissue():
    from repro.datagen import make_neuron_tissue

    return make_neuron_tissue(n_neurons=8, seed=7)


class TestSuites:
    def test_region_query_suite(self, small_tissue):
        result = bench_region_query(small_tissue, fanout=16, n_probes=40, repeats=1)
        assert result["scalar_qps"] > 0
        assert result["vector_batched_qps"] > 0
        assert result["batched_speedup"] == pytest.approx(
            result["vector_batched_qps"] / result["scalar_qps"], rel=1e-9
        )

    def test_fig13a_suite_asserts_bit_identity(self, small_tissue):
        result = bench_fig13a(
            small_tissue, fanout=16, volumes=[20_000.0], n_sequences=1, n_queries=4
        )
        assert result["metrics_bit_identical"] is True
        assert result["scalar_seconds"] > 0 and result["vector_seconds"] > 0
        assert len(result["hit_rates"]) == 1

    def test_serving_suite_asserts_bit_identity(self, small_tissue):
        from repro.index import FlatIndex

        index = FlatIndex(small_tissue, fanout=16)
        result = bench_serving(small_tissue, index, n_clients=8, n_queries=4, repeats=1)
        assert result["reports_bit_identical"] is True
        assert result["n_clients"] == 8
        assert result["lockstep_qps"] > 0 and result["round_robin_qps"] > 0
        assert result["lockstep_speedup"] == pytest.approx(
            result["round_robin_seconds"] / result["lockstep_seconds"], rel=1e-9
        )

    def test_serving_daemon_suite(self):
        from repro.perf.bench import bench_serving_daemon

        result = bench_serving_daemon(n_requests=60, n_neurons=6)
        assert result["n_requests"] == 60
        assert result["drained"] is True
        assert result["achieved_qps"] > 0
        assert result["p50_ms"] <= result["p99_ms"] <= result["p999_ms"]


class TestReportAndBudget:
    def make_report(self, batched_qps, single_qps):
        report = BenchReport(rev="deadbee", quick=True)
        report.results["region_query"] = {
            "scalar_qps": 2_000.0,
            "vector_single_qps": single_qps,
            "vector_batched_qps": batched_qps,
            "single_speedup": single_qps / 2_000.0,
            "batched_speedup": batched_qps / 2_000.0,
        }
        return report

    def test_write_and_schema(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)
        path = report.write(tmp_path)
        assert path.name == "BENCH_deadbee.json"
        record = json.loads(path.read_text())
        assert record["schema"] == BENCH_SCHEMA
        assert record["rev"] == "deadbee"
        assert "region_query" in record["results"]
        assert render_report(report)  # renders without error

    def budget_file(self, tmp_path, batched_floor, single_floor, tolerance=0.3):
        path = tmp_path / "budget.json"
        path.write_text(
            json.dumps(
                {
                    "tolerance": tolerance,
                    "floors": {
                        "region_query_batched_qps": batched_floor,
                        "region_query_single_qps": single_floor,
                    },
                }
            )
        )
        return path

    def test_budget_passes_above_floor(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)
        assert check_budget(report, self.budget_file(tmp_path, 40_000, 8_000)) == []

    def test_budget_tolerates_within_tolerance(self, tmp_path):
        report = self.make_report(30_000.0, 6_000.0)
        # 30k >= 40k * 0.7 and 6k >= 8k * 0.7: inside the 30 % band.
        assert check_budget(report, self.budget_file(tmp_path, 40_000, 8_000)) == []

    def test_budget_fails_past_tolerance(self, tmp_path):
        report = self.make_report(10_000.0, 9_000.0)
        failures = check_budget(report, self.budget_file(tmp_path, 40_000, 8_000))
        assert len(failures) == 1
        assert "region_query_batched_qps" in failures[0]

    def test_budget_flags_unknown_metric(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)
        path = tmp_path / "budget.json"
        path.write_text(json.dumps({"floors": {"no_such_metric": 1}}))
        failures = check_budget(report, path)
        assert failures and "no_such_metric" in failures[0]

    def test_speedup_floor_gates_on_ratio(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)  # 25x / 4.5x vs 2k scalar
        path = tmp_path / "budget.json"
        path.write_text(
            json.dumps(
                {"tolerance": 0.3, "floors": {"region_query_batched_speedup": 10}}
            )
        )
        assert check_budget(report, path) == []
        # A regression to near-scalar throughput fails on the ratio even
        # if absolute q/s would still look healthy on a fast machine.
        slow = self.make_report(4_000.0, 9_000.0)  # 2x batched speedup
        failures = check_budget(slow, path)
        assert failures and "region_query_batched_speedup" in failures[0]

    def test_serving_floor_gates_on_ratio(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)
        report.results["serving"] = {
            "round_robin_qps": 2_000.0,
            "lockstep_qps": 9_000.0,
            "lockstep_speedup": 4.5,
        }
        path = tmp_path / "budget.json"
        path.write_text(
            json.dumps({"tolerance": 0.3, "floors": {"serving_lockstep_speedup": 3.0}})
        )
        assert check_budget(report, path) == []
        report.results["serving"]["lockstep_speedup"] = 1.1
        failures = check_budget(report, path)
        assert failures and "serving_lockstep_speedup" in failures[0]

    def test_serving_daemon_floor_gates_on_achieved_qps(self, tmp_path):
        report = self.make_report(50_000.0, 9_000.0)
        report.results["serving_daemon"] = {"achieved_qps": 1_500.0}
        path = tmp_path / "budget.json"
        path.write_text(
            json.dumps({"tolerance": 0.3, "floors": {"serving_daemon_qps": 300}})
        )
        assert check_budget(report, path) == []
        report.results["serving_daemon"]["achieved_qps"] = 100.0
        failures = check_budget(report, path)
        assert failures and "serving_daemon_qps" in failures[0]

    def test_checked_in_budget_is_loadable(self):
        from pathlib import Path

        budget = json.loads(
            (Path(__file__).resolve().parents[1] / "benchmarks/perf/budget.json").read_text()
        )
        assert set(budget["floors"]) == {
            "region_query_batched_speedup",
            "region_query_single_speedup",
            "region_query_batched_qps",
            "region_query_single_qps",
            "serving_lockstep_speedup",
            "serving_lockstep_qps",
            "fault_layer_overhead",
            "serving_daemon_qps",
            "storage_tiers_overhead",
            "sharded_routing_overhead",
            "sharded_hot_qps",
        }
        assert 0.0 < budget["tolerance"] < 1.0
        for ratio_gate in (
            "fault_layer_overhead",
            "storage_tiers_overhead",
            "sharded_routing_overhead",
        ):
            overhead = budget["floors"][ratio_gate]
            assert 0.9 < overhead["floor"] <= 1.0
            assert 0.0 < overhead["tolerance"] < budget["tolerance"]
        hot = budget["floors"]["sharded_hot_qps"]
        assert hot["floor"] > 0
        assert 0.0 < hot["tolerance"] < budget["tolerance"]


class TestSweepProfileFlag:
    def test_profile_dumps_per_cell_prof_files(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "sweep.jsonl"
        code = main(
            [
                "sweep",
                "--panels",
                "d",
                "--points",
                "1",
                "--neurons",
                "6",
                "--sequences",
                "1",
                "--out",
                str(out),
                "--profile",
            ]
        )
        assert code == 0
        profiles = sorted((tmp_path / "sweep.jsonl.profiles").glob("*.prof"))
        assert profiles, "expected per-cell .prof files next to the store"
        stats = pstats.Stats(str(profiles[0]))
        assert stats.total_calls > 0

    def test_runner_profiled_run_cell(self, tmp_path):
        from repro.sim.runner import (
            CellSpec,
            DatasetSpec,
            IndexSpec,
            PrefetcherSpec,
            WorkloadSpec,
            profiled_run_cell,
            run_cell,
        )

        spec = CellSpec(
            dataset=DatasetSpec("neuron", {"n_neurons": 6, "seed": 3}),
            index=IndexSpec("flat", {"fanout": 16}),
            workload=WorkloadSpec(n_sequences=1, n_queries=3, volume=20_000.0),
            prefetcher=PrefetcherSpec("scout"),
            seed=1,
        )
        result = profiled_run_cell(spec, tmp_path / "profiles")
        assert (tmp_path / "profiles" / f"{spec.key()[:16]}.prof").exists()
        # Profiling must not perturb the simulation itself.
        assert result.metrics.cache_hit_rate == run_cell(spec).metrics.cache_hit_rate
