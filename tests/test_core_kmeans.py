"""k-means: clustering quality and determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kmeans


class TestBasics:
    def test_k_equals_n_identity(self, rng):
        points = rng.uniform(0, 10, size=(4, 3))
        centers, labels = kmeans(points, 4, rng)
        assert np.allclose(centers, points)
        assert list(labels) == [0, 1, 2, 3]

    def test_k_greater_than_n(self, rng):
        points = rng.uniform(0, 10, size=(3, 3))
        centers, labels = kmeans(points, 10, rng)
        assert len(centers) == 3

    def test_separated_clusters_recovered(self, rng):
        a = rng.normal(0, 0.1, size=(20, 3))
        b = rng.normal(0, 0.1, size=(20, 3)) + 100.0
        points = np.vstack([a, b])
        _, labels = kmeans(points, 2, rng)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_every_cluster_nonempty(self, rng):
        points = rng.uniform(0, 1, size=(30, 2))
        _, labels = kmeans(points, 5, rng)
        assert set(labels) == set(range(5))

    def test_identical_points(self, rng):
        points = np.ones((10, 3))
        centers, labels = kmeans(points, 3, rng)
        assert np.allclose(centers, 1.0)

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(0).uniform(0, 1, size=(50, 3))
        c1, l1 = kmeans(points, 4, np.random.default_rng(9))
        c2, l2 = kmeans(points, 4, np.random.default_rng(9))
        assert np.allclose(c1, c2) and np.array_equal(l1, l2)


class TestValidation:
    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2, rng)

    def test_rejects_k_zero(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 3)), 0, rng)

    def test_rejects_1d_input(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.ones(5), 2, rng)


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_labels_point_to_nearest_ish_center(self, seed, k):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 10, size=(30, 3))
        centers, labels = kmeans(points, k, rng)
        assert labels.min() >= 0 and labels.max() < len(centers)
        # Lloyd's converges to a local optimum: each point's assigned
        # center is its nearest (up to re-seeded empty clusters).
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        nearest = distances.min(axis=1)
        assigned = distances[np.arange(len(points)), labels]
        assert np.all(assigned <= nearest + 1e-6) or np.mean(assigned <= nearest + 1e-6) > 0.9
