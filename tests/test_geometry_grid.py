"""Uniform-grid math: conversions, rasterization, neighborhoods."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import AABB, UniformGrid
from repro.geometry.primitives import clip_segment_to_aabb

BOUNDS = AABB([0, 0, 0], [10, 10, 10])
GRID = UniformGrid(BOUNDS, (5, 5, 5))


class TestConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            UniformGrid(BOUNDS, (0, 5, 5))

    def test_with_cell_count_hits_target_roughly(self):
        grid = UniformGrid.with_cell_count(BOUNDS, 4096)
        assert 2048 <= grid.n_cells <= 8192

    def test_with_cell_count_adapts_to_aspect(self):
        flat = AABB([0, 0, 0], [100, 100, 1])
        grid = UniformGrid.with_cell_count(flat, 64)
        nx, ny, nz = grid.shape
        assert nz <= 2
        assert nx > 2 and ny > 2

    def test_with_cell_count_minimum_one(self):
        grid = UniformGrid.with_cell_count(BOUNDS, 1)
        assert grid.n_cells >= 1


class TestConversions:
    def test_cell_of_point_center(self):
        assert GRID.cell_of_point([5, 5, 5]) == (2, 2, 2)

    def test_cell_of_point_clamps_outside(self):
        assert GRID.cell_of_point([-1, 50, 5]) == (0, 4, 2)

    def test_flat_roundtrip(self):
        for coords in [(0, 0, 0), (4, 4, 4), (1, 2, 3)]:
            assert GRID.unflatten(GRID.flat_id(coords)) == coords

    def test_flat_id_rejects_outside(self):
        with pytest.raises(IndexError):
            GRID.flat_id((5, 0, 0))

    def test_unflatten_rejects_outside(self):
        with pytest.raises(IndexError):
            GRID.unflatten(125)

    def test_flat_ids_vectorized_matches_scalar(self, rng):
        coords = rng.integers(0, 5, size=(40, 3))
        flat = GRID.flat_ids(coords)
        for i in range(40):
            assert flat[i] == GRID.flat_id(tuple(coords[i]))

    def test_cells_of_points_matches_scalar(self, rng):
        pts = rng.uniform(0, 10, size=(40, 3))
        cells = GRID.cells_of_points(pts)
        for i in range(40):
            assert tuple(cells[i]) == GRID.cell_of_point(pts[i])

    def test_cell_bounds_tile_the_grid(self):
        total = sum(GRID.cell_bounds((x, y, z)).volume
                    for x in range(5) for y in range(5) for z in range(5))
        assert total == pytest.approx(BOUNDS.volume)


class TestSegmentRasterization:
    def test_single_cell(self):
        cells = GRID.cells_of_segment([0.5, 0.5, 0.5], [1.0, 1.0, 1.0])
        assert cells == [(0, 0, 0)]

    def test_axis_aligned_run(self):
        cells = GRID.cells_of_segment([0.5, 0.5, 0.5], [9.5, 0.5, 0.5])
        assert cells == [(i, 0, 0) for i in range(5)]

    def test_outside_segment_empty(self):
        assert GRID.cells_of_segment([20, 20, 20], [30, 30, 30]) == []

    def test_endpoints_always_included(self, rng):
        for _ in range(25):
            a = rng.uniform(0, 10, size=3)
            b = rng.uniform(0, 10, size=3)
            cells = GRID.cells_of_segment(a, b)
            assert GRID.cell_of_point(a) in cells
            assert GRID.cell_of_point(b) in cells

    def test_cells_actually_touch_segment(self, rng):
        """Every reported cell is within one cell diagonal of the segment."""
        for _ in range(25):
            a = rng.uniform(0, 10, size=3)
            b = rng.uniform(0, 10, size=3)
            for cell in GRID.cells_of_segment(a, b):
                box = GRID.cell_bounds(cell).inflate(1e-6)
                clipped = clip_segment_to_aabb(a, b, box.inflate(2.1))
                assert clipped is not None


class TestAabbRasterization:
    def test_covers_whole_grid(self):
        assert len(GRID.cells_of_aabb(BOUNDS)) == 125

    def test_single_cell_box(self):
        cells = GRID.cells_of_aabb(AABB([0.1, 0.1, 0.1], [0.2, 0.2, 0.2]))
        assert cells == [(0, 0, 0)]

    def test_disjoint_box(self):
        assert GRID.cells_of_aabb(AABB([20, 20, 20], [21, 21, 21])) == []


class TestNeighbors:
    def test_interior_has_26(self):
        assert len(GRID.neighbors((2, 2, 2))) == 26

    def test_corner_has_7(self):
        assert len(GRID.neighbors((0, 0, 0))) == 7

    def test_face_connectivity(self):
        assert len(GRID.neighbors((2, 2, 2), include_diagonal=False)) == 6

    def test_neighbors_exclude_self(self):
        assert (2, 2, 2) not in GRID.neighbors((2, 2, 2))
