"""Property-based tests for the LRU prefetch cache.

`tests/test_storage.py` pins example behaviours; these properties let
hypothesis search the operation space: the capacity bound must hold
after *every* operation, eviction must follow least-recently-used
order against an independent reference model, and bulk insertion must
be idempotent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cache import PrefetchCache

#: Small id universe so sequences collide (re-inserts, touch hits).
page_ids = st.integers(min_value=0, max_value=15)
capacities = st.integers(min_value=0, max_value=8)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), page_ids),
        st.tuples(st.just("touch"), page_ids),
        st.tuples(st.just("insert_many"), st.lists(page_ids, max_size=10)),
    ),
    max_size=40,
)


class ModelLRU:
    """Independent list-based reference model of LRU semantics."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.pages: list[int] = []  # least-recently-used first

    def touch(self, page: int) -> bool:
        if page in self.pages:
            self.pages.remove(page)
            self.pages.append(page)
            return True
        return False

    def insert(self, page: int) -> None:
        if self.capacity == 0:
            return
        if page in self.pages:
            self.pages.remove(page)
            self.pages.append(page)
            return
        while len(self.pages) >= self.capacity:
            self.pages.pop(0)
        self.pages.append(page)


def apply(cache: PrefetchCache, model: ModelLRU, op) -> None:
    kind, arg = op
    if kind == "insert":
        cache.insert(arg)
        model.insert(arg)
    elif kind == "touch":
        cache.touch(arg)
        model.touch(arg)
    else:
        cache.insert_many(arg)
        for page in arg:
            model.insert(page)


@settings(deadline=None)
@given(capacity=capacities, ops=operations)
def test_capacity_invariant_holds_after_every_operation(capacity, ops):
    cache = PrefetchCache(capacity)
    model = ModelLRU(capacity)
    for op in ops:
        apply(cache, model, op)
        assert len(cache) <= cache.capacity_pages


@settings(deadline=None)
@given(capacity=capacities, ops=operations)
def test_lru_eviction_order_matches_reference_model(capacity, ops):
    """cached_pages() (LRU-first) tracks the model after every op."""
    cache = PrefetchCache(capacity)
    model = ModelLRU(capacity)
    for op in ops:
        apply(cache, model, op)
        assert cache.cached_pages() == model.pages


@settings(deadline=None)
@given(capacity=capacities, prefix=operations, pages=st.lists(page_ids, max_size=12))
def test_insert_many_is_idempotent(capacity, prefix, pages):
    """Re-inserting the same batch leaves contents and order unchanged."""
    cache = PrefetchCache(capacity)
    model = ModelLRU(capacity)
    for op in prefix:
        apply(cache, model, op)
    cache.insert_many(pages)
    once = cache.cached_pages()
    cache.insert_many(pages)
    assert cache.cached_pages() == once


@settings(deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), pages=st.lists(page_ids, min_size=1))
def test_distinct_tail_survives_bulk_insert(capacity, pages):
    """After insert_many, the cache holds the last distinct pages inserted."""
    cache = PrefetchCache(capacity)
    cache.insert_many(pages)
    expected: list[int] = []
    for page in reversed(pages):  # last occurrences, newest first
        if page not in expected:
            expected.append(page)
        if len(expected) == capacity:
            break
    assert cache.cached_pages() == list(reversed(expected))
