"""Property-based tests for the LRU prefetch cache backends.

`tests/test_storage.py` pins example behaviours; these properties let
hypothesis search the operation space: the capacity bound must hold
after *every* operation, eviction must follow least-recently-used
order against an independent reference model, and bulk insertion must
be idempotent.

Every model-based property runs against **both** backends (the dict
:class:`PrefetchCache` and the slot-array :class:`ArrayCache`), and the
differential suite drives the two with identical random operation
sequences — owner tags, eviction memory and batch calls included — and
requires identical observable state after every single step.  That
equivalence is what lets the lockstep serving plane swap backends
without changing a bit of any metric.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cache import ArrayCache, PrefetchCache, make_cache

BACKENDS = ["dict", "array"]

#: Small id universe so sequences collide (re-inserts, touch hits).
page_ids = st.integers(min_value=0, max_value=15)
capacities = st.integers(min_value=0, max_value=8)
owners = st.one_of(st.none(), st.integers(min_value=0, max_value=3))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), page_ids),
        st.tuples(st.just("touch"), page_ids),
        st.tuples(st.just("insert_many"), st.lists(page_ids, max_size=10)),
    ),
    max_size=40,
)

#: Richer operation mix for the differential suite: owner tags plus the
#: batch API, so every method of the shared contract gets exercised.
tagged_operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), page_ids, owners),
        st.tuples(st.just("touch"), page_ids, st.none()),
        st.tuples(st.just("insert_many"), st.lists(page_ids, max_size=10), owners),
        st.tuples(st.just("touch_many"), st.lists(page_ids, max_size=10), st.none()),
        st.tuples(st.just("clear"), st.none(), st.none()),
    ),
    max_size=40,
)


class ModelLRU:
    """Independent list-based reference model of LRU semantics."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.pages: list[int] = []  # least-recently-used first

    def touch(self, page: int) -> bool:
        if page in self.pages:
            self.pages.remove(page)
            self.pages.append(page)
            return True
        return False

    def insert(self, page: int) -> None:
        if self.capacity == 0:
            return
        if page in self.pages:
            self.pages.remove(page)
            self.pages.append(page)
            return
        while len(self.pages) >= self.capacity:
            self.pages.pop(0)
        self.pages.append(page)


def apply(cache, model: ModelLRU, op) -> None:
    kind, arg = op
    if kind == "insert":
        cache.insert(arg)
        model.insert(arg)
    elif kind == "touch":
        cache.touch(arg)
        model.touch(arg)
    else:
        cache.insert_many(arg)
        for page in arg:
            model.insert(page)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None)
@given(capacity=capacities, ops=operations)
def test_capacity_invariant_holds_after_every_operation(backend, capacity, ops):
    cache = make_cache(backend, capacity)
    model = ModelLRU(capacity)
    for op in ops:
        apply(cache, model, op)
        assert len(cache) <= cache.capacity_pages


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None)
@given(capacity=capacities, ops=operations)
def test_lru_eviction_order_matches_reference_model(backend, capacity, ops):
    """cached_pages() (LRU-first) tracks the model after every op."""
    cache = make_cache(backend, capacity)
    model = ModelLRU(capacity)
    for op in ops:
        apply(cache, model, op)
        assert cache.cached_pages() == model.pages


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None)
@given(capacity=capacities, prefix=operations, pages=st.lists(page_ids, max_size=12))
def test_insert_many_is_idempotent(backend, capacity, prefix, pages):
    """Re-inserting the same batch leaves contents and order unchanged."""
    cache = make_cache(backend, capacity)
    model = ModelLRU(capacity)
    for op in prefix:
        apply(cache, model, op)
    cache.insert_many(pages)
    once = cache.cached_pages()
    cache.insert_many(pages)
    assert cache.cached_pages() == once


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), pages=st.lists(page_ids, min_size=1))
def test_distinct_tail_survives_bulk_insert(backend, capacity, pages):
    """After insert_many, the cache holds the last distinct pages inserted."""
    cache = make_cache(backend, capacity)
    cache.insert_many(pages)
    expected: list[int] = []
    for page in reversed(pages):  # last occurrences, newest first
        if page not in expected:
            expected.append(page)
        if len(expected) == capacity:
            break
    assert cache.cached_pages() == list(reversed(expected))


# -- differential equivalence: dict backend vs array backend -----------------


def observable_state(cache) -> dict:
    """Everything the serving plane can see about a cache."""
    universe = list(range(16))
    return {
        "len": len(cache),
        "is_full": cache.is_full,
        "cached_pages": cache.cached_pages(),
        "counters": (cache.hits, cache.misses, cache.evictions, cache.insertions),
        "hit_rate": cache.hit_rate,
        "owners": [cache.owner_of(p) for p in universe],
        "evicted": [cache.was_evicted(p) for p in universe],
        "contains": [p in cache for p in universe],
        "owners_many": cache.owners_many(universe).tolist(),
        "evicted_many": cache.evicted_many(universe).tolist(),
        "contains_many": cache.contains_many(universe).tolist(),
        "missing_many": cache.missing_many(universe),
    }


@settings(deadline=None)
@given(capacity=capacities, ops=tagged_operations)
def test_array_cache_is_observably_identical_to_dict_cache(capacity, ops):
    """Same random op sequence -> same observable state after every step.

    This is the bit-identity foundation of the lockstep serving plane:
    any divergence between the backends here would surface as metric
    drift in an equivalence test two layers up, so it is pinned at the
    source with the full op vocabulary (owner tags, batch ops, clear).
    """
    dict_cache = PrefetchCache(capacity)
    array_cache = ArrayCache(capacity)
    for kind, arg, owner in ops:
        if kind == "insert":
            dict_cache.insert(arg, owner)
            array_cache.insert(arg, owner)
        elif kind == "touch":
            assert dict_cache.touch(arg) == array_cache.touch(arg)
        elif kind == "insert_many":
            dict_cache.insert_many(arg, owner)
            array_cache.insert_many(arg, owner)
        elif kind == "touch_many":
            assert (
                dict_cache.touch_many(arg).tolist()
                == array_cache.touch_many(arg).tolist()
            )
        else:
            dict_cache.clear()
            array_cache.clear()
        assert observable_state(dict_cache) == observable_state(array_cache)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None)
@given(capacity=capacities, prefix=operations, probe=st.lists(page_ids, max_size=12))
def test_batch_ops_match_scalar_loops(backend, capacity, prefix, probe):
    """Each batch call equals the scalar loop it replaces, element-wise."""
    cache = make_cache(backend, capacity)
    model = ModelLRU(capacity)
    for op in prefix:
        apply(cache, model, op)

    assert cache.contains_many(probe).tolist() == [p in cache for p in probe]
    assert cache.missing_many(probe) == [p for p in probe if p not in cache]
    assert cache.owners_many(probe).tolist() == [
        -1 if cache.owner_of(p) is None else cache.owner_of(p) for p in probe
    ]
    assert cache.evicted_many(probe).tolist() == [cache.was_evicted(p) for p in probe]

    # touch_many mutates; compare against a fresh replica touched scalar-wise.
    replica = make_cache(backend, capacity)
    replica_model = ModelLRU(capacity)
    for op in prefix:
        apply(replica, replica_model, op)
    batch_mask = cache.touch_many(probe).tolist()
    scalar_mask = [replica.touch(p) for p in probe]
    assert batch_mask == scalar_mask
    assert cache.cached_pages() == replica.cached_pages()
    assert (cache.hits, cache.misses) == (replica.hits, replica.misses)


def test_array_cache_rejects_negative_page_ids():
    cache = ArrayCache(4)
    with pytest.raises(ValueError, match="non-negative"):
        cache.insert(-1)
    with pytest.raises(ValueError, match="non-negative"):
        cache.insert_many([3, -2])
    # Read-side probes of negative ids are harmless (absent, not wrapped).
    assert -1 not in cache
    assert cache.touch(-5) is False
    assert cache.contains_many([-1, -7]).tolist() == [False, False]
    assert cache.evicted_many([-1]).tolist() == [False]


def test_make_cache_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown cache backend"):
        make_cache("mmap", 8)


# -- partition invariant under lockstep serving ------------------------------


@pytest.mark.parametrize("cache_backend", BACKENDS)
@settings(deadline=None, max_examples=10)
@given(
    n_clients=st.integers(min_value=1, max_value=4),
    mode=st.sampled_from(["independent", "hotspot"]),
    cache_pages=st.one_of(st.none(), st.integers(min_value=8, max_value=64)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_lockstep_serving_partitions_cache_totals(
    tissue, tissue_flat, cache_backend, n_clients, mode, cache_pages, seed
):
    """Per-client hits+misses partition the shared cache's counters under
    the lockstep scheduler, for both cache backends (the round-robin
    counterpart lives in test_serving.py)."""
    from repro.baselines import EWMAPrefetcher
    from repro.sim import ServingSimulator, SimulationConfig
    from repro.workload import multiclient_sessions

    clients = multiclient_sessions(
        tissue, n_clients=n_clients, seed=seed, n_queries=3,
        volume=30_000.0, mode=mode,
    )
    config = SimulationConfig(cache_capacity_pages=cache_pages)
    report = ServingSimulator(tissue_flat, config).run(
        clients,
        [EWMAPrefetcher(lam=0.3) for _ in clients],
        lockstep=True,
        cache_backend=cache_backend,
    )
    assert sum(c.shared_hits for c in report.clients) == report.cache_hits
    assert sum(c.shared_misses for c in report.clients) == report.cache_misses
    for client in report.clients:
        records = client.metrics.records
        assert client.shared_hits == sum(r.pages_hit for r in records)
        assert client.shared_misses == sum(r.pages_missed for r in records)
        assert 0 <= client.cross_client_hits <= client.shared_hits
        assert 0 <= client.evicted_misses <= client.shared_misses
