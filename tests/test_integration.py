"""End-to-end shape tests: the paper's headline claims on small data.

These run the full pipeline (datagen -> index -> workload -> simulator)
and assert the *qualitative* results the paper reports, with generous
margins: small fixtures are noisy, but the ordering claims must hold.
"""

import numpy as np
import pytest

from repro.baselines import EWMAPrefetcher, NoPrefetcher, StraightLinePrefetcher
from repro.core import ScoutConfig, ScoutOptPrefetcher, ScoutPrefetcher
from repro.datagen import make_neuron_tissue
from repro.index import FlatIndex
from repro.sim import run_experiment
from repro.workload import generate_sequences, microbenchmark


@pytest.fixture(scope="module")
def bench_tissue():
    return make_neuron_tissue(n_neurons=30, seed=3)


@pytest.fixture(scope="module")
def bench_index(bench_tissue):
    return FlatIndex(bench_tissue, fanout=16)


@pytest.fixture(scope="module")
def bench_sequences(bench_tissue):
    return generate_sequences(
        bench_tissue, 5, seed=3, n_queries=20, volume=80_000.0, window_ratio=1.0
    )


class TestHeadlineClaims:
    def test_scout_beats_position_baselines(self, bench_tissue, bench_index, bench_sequences):
        scout = run_experiment(bench_index, bench_sequences, ScoutPrefetcher(bench_tissue))
        ewma = run_experiment(bench_index, bench_sequences, EWMAPrefetcher(0.3))
        sl = run_experiment(bench_index, bench_sequences, StraightLinePrefetcher())
        assert scout.cache_hit_rate > ewma.cache_hit_rate
        assert scout.cache_hit_rate > sl.cache_hit_rate

    def test_scout_accuracy_in_paper_band(self, bench_tissue, bench_index, bench_sequences):
        scout = run_experiment(bench_index, bench_sequences, ScoutPrefetcher(bench_tissue))
        # Paper: 71%-92% across workloads.
        assert 0.55 <= scout.cache_hit_rate <= 1.0

    def test_scout_speedup_meaningful(self, bench_tissue, bench_index, bench_sequences):
        scout = run_experiment(bench_index, bench_sequences, ScoutPrefetcher(bench_tissue))
        none = run_experiment(bench_index, bench_sequences, NoPrefetcher())
        assert none.speedup == pytest.approx(1.0)
        assert scout.speedup > 2.0

    def test_scout_opt_wins_with_gaps(self, bench_tissue, bench_index):
        seqs = generate_sequences(
            bench_tissue, 5, seed=5, n_queries=20, volume=80_000.0, gap=20.0, window_ratio=1.2
        )
        scout = run_experiment(bench_index, seqs, ScoutPrefetcher(bench_tissue))
        opt = run_experiment(
            bench_index, seqs, ScoutOptPrefetcher(bench_tissue, bench_index)
        )
        assert opt.cache_hit_rate >= scout.cache_hit_rate - 0.02

    def test_longer_window_more_accuracy(self, bench_tissue, bench_index):
        """Fig 13d's trend: accuracy rises with the prefetch window ratio."""
        short = generate_sequences(
            bench_tissue, 4, seed=6, n_queries=15, volume=80_000.0, window_ratio=0.1
        )
        long = generate_sequences(
            bench_tissue, 4, seed=6, n_queries=15, volume=80_000.0, window_ratio=2.5
        )
        r_short = run_experiment(bench_index, short, ScoutPrefetcher(bench_tissue))
        r_long = run_experiment(bench_index, long, ScoutPrefetcher(bench_tissue))
        assert r_long.cache_hit_rate > r_short.cache_hit_rate

    def test_grid_resolution_extremes_stay_functional(
        self, bench_tissue, bench_index, bench_sequences
    ):
        """Fig 13e: the fine-resolution default sits on the accuracy
        plateau.  At laptop scale a query holds only a handful of
        structures, so coarse grids degrade gently rather than
        collapsing (the paper's dense-tissue collapse needs thousands of
        objects per query); both ends must stay within a sane band.
        """
        fine = run_experiment(
            bench_index,
            bench_sequences,
            ScoutPrefetcher(bench_tissue, ScoutConfig(grid_resolution=4096)),
        )
        coarse = run_experiment(
            bench_index,
            bench_sequences,
            ScoutPrefetcher(bench_tissue, ScoutConfig(grid_resolution=8)),
        )
        assert fine.cache_hit_rate > 0.5
        assert abs(fine.cache_hit_rate - coarse.cache_hit_rate) < 0.15

    def test_broad_lower_variance_than_deep(self, bench_tissue, bench_index, bench_sequences):
        """§5.2: broad prefetching trades nothing in mean for variance."""
        broad = run_experiment(
            bench_index,
            bench_sequences,
            ScoutPrefetcher(bench_tissue, ScoutConfig(strategy="broad")),
        )
        deep = run_experiment(
            bench_index,
            bench_sequences,
            ScoutPrefetcher(bench_tissue, ScoutConfig(strategy="deep")),
        )
        # Both deliver; the defensive strategy should not collapse.
        assert broad.cache_hit_rate > 0.4
        assert deep.cache_hit_rate > 0.2


class TestMicrobenchmarkPlumbing:
    def test_all_microbenchmarks_run(self, bench_tissue, bench_index):
        for name in ["adhoc_stat", "vis_gaps_high"]:
            spec = microbenchmark(name)
            seqs = spec.generate(bench_tissue, n_sequences=2, seed=1)
            result = run_experiment(bench_index, seqs, ScoutPrefetcher(bench_tissue))
            assert 0.0 <= result.cache_hit_rate <= 1.0
            assert result.speedup >= 1.0


class TestQuickstart:
    def test_quick_experiment_runs(self):
        from repro import quick_experiment

        result = quick_experiment(
            prefetcher="scout", n_neurons=8, n_sequences=2, seed=3
        )
        assert 0.0 <= result.cache_hit_rate <= 1.0

    def test_quick_experiment_rejects_unknown(self):
        from repro import quick_experiment

        with pytest.raises(ValueError):
            quick_experiment(prefetcher="telepathy")
